// Reproduces Figure 1 / Example 1: independent EA decisions on a 3x3
// fused similarity matrix produce two mismatches; the collective stable
// matching recovers the correct alignment. (Matrix values reconstructed so
// the narrated behaviour matches the paper exactly.)

#include <cstdio>

#include "ceaff/la/matrix.h"
#include "ceaff/matching/matching.h"

using namespace ceaff;

int main() {
  la::Matrix m = la::Matrix::FromRows(
      {{0.9f, 0.6f, 0.1f}, {0.7f, 0.5f, 0.2f}, {0.2f, 0.4f, 0.3f}});
  std::printf("Figure 1 — independent vs collective EA decisions\n\n");
  std::printf("fused similarity matrix (rows u1..u3, cols v1..v3):\n%s\n",
              m.ToString(1).c_str());

  matching::MatchResult indep = matching::GreedyIndependent(m);
  std::printf("independent decisions (state-of-the-art default):\n");
  for (size_t i = 0; i < 3; ++i) {
    bool correct = indep.target_of_source[i] == static_cast<int64_t>(i);
    std::printf("  u%zu -> v%lld  %s\n", i + 1,
                static_cast<long long>(indep.target_of_source[i] + 1),
                correct ? "(correct)" : "(WRONG)");
  }
  std::printf("  u1 and u2 both chose v1 — the conflict Example 1 "
              "describes.\n\n");

  matching::MatchResult collective = matching::DeferredAcceptance(m);
  std::printf("collective decisions (CEAFF, stable matching):\n");
  for (size_t i = 0; i < 3; ++i) {
    bool correct = collective.target_of_source[i] == static_cast<int64_t>(i);
    std::printf("  u%zu -> v%lld  %s\n", i + 1,
                static_cast<long long>(collective.target_of_source[i] + 1),
                correct ? "(correct)" : "(WRONG)");
  }
  std::printf("\nblocking pairs in the collective matching: %zu "
              "(stable by construction)\n",
              matching::CountBlockingPairs(m, collective));
  (void)indep;
  return 0;
}
