// Microbenchmarks for the Sec. VI discussion: deferred acceptance is far
// cheaper than Hungarian (max-weight) matching while staying collective,
// which underpins the paper's "<10 minutes end-to-end" claim (Sec. VII-C).

#include <benchmark/benchmark.h>

#include "ceaff/common/random.h"
#include "ceaff/la/matrix.h"
#include "ceaff/matching/matching.h"

namespace {

using ceaff::Rng;
using ceaff::la::Matrix;

Matrix RandomSimilarity(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextFloat();
  return m;
}

void BM_GreedyIndependent(benchmark::State& state) {
  Matrix m = RandomSimilarity(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ceaff::matching::GreedyIndependent(m));
  }
}
BENCHMARK(BM_GreedyIndependent)->Arg(100)->Arg(400)->Arg(1600);

void BM_DeferredAcceptance(benchmark::State& state) {
  Matrix m = RandomSimilarity(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ceaff::matching::DeferredAcceptance(m));
  }
}
BENCHMARK(BM_DeferredAcceptance)->Arg(100)->Arg(400)->Arg(1600);

void BM_GreedyOneToOne(benchmark::State& state) {
  Matrix m = RandomSimilarity(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ceaff::matching::GreedyOneToOne(m));
  }
}
BENCHMARK(BM_GreedyOneToOne)->Arg(100)->Arg(400)->Arg(1600);

void BM_Hungarian(benchmark::State& state) {
  Matrix m = RandomSimilarity(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ceaff::matching::HungarianMatch(m));
  }
}
// O(n^3): keep the largest size moderate.
BENCHMARK(BM_Hungarian)->Arg(100)->Arg(400)->Arg(800);

void BM_CountBlockingPairs(benchmark::State& state) {
  Matrix m = RandomSimilarity(static_cast<size_t>(state.range(0)), 5);
  ceaff::matching::MatchResult r = ceaff::matching::DeferredAcceptance(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ceaff::matching::CountBlockingPairs(m, r));
  }
}
BENCHMARK(BM_CountBlockingPairs)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
