// Reproduces Table V: ablation and further experiments on SRPRS EN-FR,
// EN-DE, DBP-WD, DBP-YG and DBP15K ZH-EN. Each row toggles one CEAFF
// component: a feature (Ms/Mn/Ml), the adaptive feature fusion (AFF), the
// collective decision stage (C), the θ1/θ2 score clamp, or swaps fusion
// for the learned (logistic regression) baseline.
//
// Features are generated once per dataset and reused across all rows
// (ablation toggles only change fusion/decision), so the whole table runs
// in seconds beyond the one-off feature cost.

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;

namespace {

struct Row {
  const char* label;
  core::CeaffOptions options;
  // Paper-reported values for {EN-FR, EN-DE, DBP-WD, DBP-YG, ZH-EN}.
  std::vector<double> paper;
};

std::vector<Row> AblationRows() {
  core::CeaffOptions base = bench::BenchCeaffOptions();
  std::vector<Row> rows;
  auto add = [&](const char* label, auto mutate, std::vector<double> paper) {
    Row r{label, base, std::move(paper)};
    mutate(&r.options);
    rows.push_back(std::move(r));
  };
  add("CEAFF", [](core::CeaffOptions*) {},
      {0.964, 0.977, 1.000, 1.000, 0.795});
  add("w/o Ms",
      [](core::CeaffOptions* o) { o->use_structural = false; },
      {0.915, 0.971, 1.000, 1.000, 0.622});
  add("w/o Mn", [](core::CeaffOptions* o) { o->use_semantic = false; },
      {0.947, 0.972, 1.000, 1.000, 0.507});
  add("w/o Ml", [](core::CeaffOptions* o) { o->use_string = false; },
      {0.782, 0.863, 0.915, 0.937, 0.778});
  add("w/o AFF",
      [](core::CeaffOptions* o) { o->fusion_mode = core::FusionMode::kFixed; },
      {0.956, 0.968, 0.998, 0.999, 0.785});
  add("w/o C",
      [](core::CeaffOptions* o) {
        o->decision_mode = core::DecisionMode::kIndependent;
      },
      {0.930, 0.939, 1.000, 1.000, 0.719});
  add("w/o C, Ms",
      [](core::CeaffOptions* o) {
        o->decision_mode = core::DecisionMode::kIndependent;
        o->use_structural = false;
      },
      {0.873, 0.886, 1.000, 1.000, 0.586});
  add("w/o C, Mn",
      [](core::CeaffOptions* o) {
        o->decision_mode = core::DecisionMode::kIndependent;
        o->use_semantic = false;
      },
      {0.904, 0.927, 0.999, 1.000, 0.408});
  add("w/o C, Ml",
      [](core::CeaffOptions* o) {
        o->decision_mode = core::DecisionMode::kIndependent;
        o->use_string = false;
      },
      {0.628, 0.769, 0.866, 0.898, 0.711});
  add("w/o C, AFF",
      [](core::CeaffOptions* o) {
        o->decision_mode = core::DecisionMode::kIndependent;
        o->fusion_mode = core::FusionMode::kFixed;
      },
      {0.914, 0.925, 0.986, 0.994, 0.701});
  add("w/o theta1, theta2",
      [](core::CeaffOptions* o) { o->fusion.use_score_clamp = false; },
      {0.940, 0.969, 0.994, 0.996, 0.768});
  add("LR",
      [](core::CeaffOptions* o) {
        o->fusion_mode = core::FusionMode::kLearned;
      },
      {0.957, 0.965, 1.000, 1.000, 0.786});
  return rows;
}

}  // namespace

int main() {
  const std::vector<std::string> datasets = {
      "SRPRS_EN_FR", "SRPRS_EN_DE", "SRPRS_DBP_WD", "SRPRS_DBP_YG",
      "DBP15K_ZH_EN"};
  const std::vector<std::string> columns = {"EN-FR", "EN-DE", "DBP-WD",
                                            "DBP-YG", "ZH-EN"};

  std::printf("Table V — ablation study (synthetic benchmarks, scale "
              "%.2f)\n\n", bench::DatasetScale());

  // Generate the full feature set once per dataset.
  std::vector<core::CeaffFeatures> features;
  for (const std::string& d : datasets) {
    const data::SyntheticBenchmark& bench_data = bench::GetBenchmark(d);
    core::CeaffPipeline pipe(&bench_data.pair, &bench_data.store,
                             bench::BenchCeaffOptions());
    auto f = pipe.GenerateFeatures();
    CEAFF_CHECK(f.ok()) << f.status();
    features.push_back(std::move(f).value());
  }

  std::vector<Row> rows = AblationRows();
  bench::PrintHeader("measured (this reproduction):", columns);
  for (const Row& row : rows) {
    std::vector<std::optional<double>> cells;
    for (size_t d = 0; d < datasets.size(); ++d) {
      const data::SyntheticBenchmark& bench_data =
          bench::GetBenchmark(datasets[d]);
      core::CeaffPipeline pipe(&bench_data.pair, &bench_data.store,
                               row.options);
      auto r = pipe.RunOnFeatures(features[d]);
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bench::PrintRow(row.label, cells);
  }

  std::printf("\n");
  bench::PrintHeader("paper-reported (Zeng et al., Table V):", columns);
  for (const Row& row : rows) {
    std::vector<std::optional<double>> cells;
    for (double v : row.paper) cells.push_back(v);
    bench::PrintRow(row.label, cells);
  }

  std::printf(
      "\nShape checks (paper claims that must replicate):\n"
      " * Every ablation row is <= the full CEAFF row (per dataset).\n"
      " * w/o Ml hurts most on mono-lingual pairs; w/o Mn hurts most on\n"
      "   ZH-EN; w/o Ms matters on ZH-EN but not mono-lingual pairs.\n"
      " * w/o C costs accuracy on cross-lingual pairs; mono-lingual pairs\n"
      "   are already saturated.\n"
      " * LR is close to w/o AFF (fixed weights) but below full CEAFF.\n");
  return 0;
}
