// Extension experiment: iterative (self-training) CEAFF — the direction
// of the paper's future work. Confident matches from each round are
// promoted to pseudo-seeds for the GCN; gains concentrate where the
// structural feature is supervision-starved (few seeds, distant
// languages).

#include <cstdio>

#include "bench_util.h"
#include "ceaff/core/iterative.h"

using namespace ceaff;

int main() {
  std::printf("Iterative CEAFF (self-training rounds, scale %.2f)\n\n",
              bench::DatasetScale());
  std::printf("%-14s %-8s %10s %10s %10s %10s\n", "dataset", "seeds",
              "round 0", "round 1", "round 2", "promoted");

  for (double seed_fraction : {0.1, 0.3}) {
    for (const char* name : {"DBP15K_ZH_EN", "SRPRS_EN_FR"}) {
      auto cfg = data::BenchmarkConfigByName(name, bench::DatasetScale());
      CEAFF_CHECK(cfg.ok()) << cfg.status();
      cfg->seed_fraction = seed_fraction;
      auto b = data::GenerateBenchmark(cfg.value());
      CEAFF_CHECK(b.ok()) << b.status();

      core::IterativeCeaffOptions opt;
      opt.base = bench::BenchCeaffOptions();
      opt.rounds = 2;
      auto r = core::RunIterativeCeaff(b->pair, b->store, opt);
      CEAFF_CHECK(r.ok()) << r.status();

      size_t promoted = 0;
      for (size_t p : r->promoted_per_round) promoted += p;
      std::printf("%-14s %-8.2f", name, seed_fraction);
      for (size_t round = 0; round < 3; ++round) {
        if (round < r->accuracy_per_round.size()) {
          std::printf(" %10.3f", r->accuracy_per_round[round]);
        } else {
          std::printf(" %10s", "-");
        }
      }
      std::printf(" %10zu\n", promoted);
    }
  }
  std::printf(
      "\nExpected shape: with scarce seeds (10%%), self-training lifts\n"
      "accuracy over rounds by feeding the GCN pseudo-seeds; at the\n"
      "paper's 30%% seeds the headroom is smaller.\n");
  return 0;
}
