// Microbenchmark of the la/kernels.h compute layer against the retained
// naive references, emitting BENCH_kernels.json (tracked in-repo as the
// perf baseline). For every (kernel, shape) it times the naive reference
// once and the blocked kernel at several thread counts, reporting GFLOP/s
// (or Mcell/s for the string kernels) and the speedup over naive.
//
//   micro_kernels [--out FILE] [--quick] [--smoke] [--autotune]
//
//   --out FILE   where to write the JSON (default BENCH_kernels.json in
//                the working directory, matching overload_soak's
//                BENCH_overload.json convention)
//   --quick      small shapes only (fast CI sanity run)
//   --smoke      run the kernel-vs-naive parity checks on small shapes
//                plus a perf-regression gate (tuned kernel vs naive, with
//                a 10% tolerance; timing is skipped under sanitizers or
//                CEAFF_SKIP_PERF_GATE=1) and exit non-zero on any failure
//                — this is what the `bench` ctest label runs
//   --autotune   additionally benchmark each GEMM/SpMM shape with a
//                measured per-shape configuration (la/autotune.h),
//                emitting *_tuned rows next to the default-config rows;
//                every tuned output is parity-checked bit-identical to
//                the default-config output
//
// Every timed configuration is also parity-checked (bit-identical or the
// documented O(d·eps) tolerance), so a benchmark run can never report a
// speedup for a kernel that silently diverged.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/la/autotune.h"
#include "ceaff/la/csls.h"
#include "ceaff/la/kernels.h"
#include "ceaff/la/ops.h"
#include "ceaff/la/sparse_matrix.h"
#include "ceaff/text/levenshtein.h"

// Timing gates are meaningless under sanitizer instrumentation (10-50x
// uniform slowdowns with different constants per code path), so the smoke
// perf gate detects it at compile time and degrades to parity-only.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CEAFF_BENCH_SANITIZED 1
#endif
#if !defined(CEAFF_BENCH_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CEAFF_BENCH_SANITIZED 1
#endif
#endif

namespace {

using namespace ceaff;
using la::KernelContext;
using la::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.at(i, j) = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    }
  }
  return m;
}

std::vector<std::string> RandomNames(size_t n, size_t max_len,
                                     uint64_t seed) {
  Rng rng(seed);
  const std::string alphabet = "abcdefghijklmnop ";
  std::vector<std::string> names(n);
  for (std::string& s : names) {
    const size_t len = 3 + rng.NextBounded(max_len - 2);
    for (size_t i = 0; i < len; ++i) {
      s += alphabet[rng.NextBounded(alphabet.size())];
    }
  }
  return names;
}

/// Best-of-`reps` wall seconds of `fn` (min over repetitions rejects
/// scheduler noise better than the mean on a shared box).
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct BenchRow {
  std::string kernel;
  std::string shape;
  int threads = 1;  // 0 = the naive reference row
  double seconds = 0.0;
  double rate = 0.0;  // GFLOP/s or Mcell/s, see `unit`
  std::string unit;
  double speedup = 1.0;  // vs the naive reference at the same shape
};

std::vector<BenchRow> g_rows;
int g_failures = 0;

/// Non-null when --autotune is set: a shared in-memory tuner (no persisted
/// cache — rows must reflect this run's measurements) consulted by the
/// GEMM/SpMM benches for their *_tuned rows.
la::KernelAutotuner* g_tuner = nullptr;

void Fail(const std::string& what) {
  std::fprintf(stderr, "PARITY FAILURE: %s\n", what.c_str());
  ++g_failures;
}

bool NearEqual(const Matrix& a, const Matrix& b, double rel_tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      const double want = b.at(r, c);
      const double tol = rel_tol * std::max(1.0, std::abs(want));
      if (std::abs(a.at(r, c) - want) > tol) return false;
    }
  }
  return true;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Benchmarks naive-vs-kernel for one dense pairwise kernel at the given
/// thread counts; `flops` is the work per full evaluation.
void BenchCosine(size_t n, size_t d, const std::vector<int>& thread_counts,
                 int reps) {
  const Matrix a = RandomMatrix(n, d, 101);
  const Matrix b = RandomMatrix(n, d, 102);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zux d=%zu", n, n, d);
  const double flops = 2.0 * static_cast<double>(n) * n * d;

  Matrix naive_out;
  const double naive_s =
      TimeBest(reps, [&] { naive_out = la::CosineSimilarity(a, b); });
  g_rows.push_back({"cosine_naive", shape, 0, naive_s, flops / naive_s / 1e9,
                    "gflops", 1.0});

  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    KernelContext ctx;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Matrix out;
    const double s =
        TimeBest(reps, [&] { out = la::CosineSimilarityK(ctx, a, b); });
    if (!NearEqual(out, naive_out, 1e-4)) {
      Fail("cosine kernel diverged from naive at " + std::string(shape));
    }
    g_rows.push_back({"cosine_kernel", shape, threads, s, flops / s / 1e9,
                      "gflops", naive_s / s});

    if (g_tuner != nullptr) {
      KernelContext tuned = ctx;
      tuned.tuner = g_tuner;
      // First call pays the measurement; timed reps then use the cached
      // choice, which is what a warmed workload sees.
      (void)la::CosineSimilarityK(tuned, a, b);
      Matrix tout;
      const double ts =
          TimeBest(reps, [&] { tout = la::CosineSimilarityK(tuned, a, b); });
      if (!BitIdentical(tout, out)) {
        Fail("cosine tuned config not bit-identical to default at " +
             std::string(shape));
      }
      g_rows.push_back({"cosine_tuned", shape, threads, ts, flops / ts / 1e9,
                        "gflops", naive_s / ts});
    }
  }
}

/// `m x n` GEMM-transposed (the similarity-matrix primitive) naive vs
/// blocked kernel.
void BenchMatMulBT(size_t m, size_t n, size_t d,
                   const std::vector<int>& thread_counts, int reps) {
  const Matrix a = RandomMatrix(m, d, 108);
  const Matrix b = RandomMatrix(n, d, 109);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zu d=%zu", m, n, d);
  const double flops = 2.0 * static_cast<double>(m) * n * d;

  Matrix naive_out;
  const double naive_s = TimeBest(reps, [&] { naive_out = la::MatMulBT(a, b); });
  g_rows.push_back({"matmul_bt_naive", shape, 0, naive_s,
                    flops / naive_s / 1e9, "gflops", 1.0});

  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    KernelContext ctx;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Matrix out;
    const double s = TimeBest(reps, [&] { out = la::MatMulBTK(ctx, a, b); });
    if (!NearEqual(out, naive_out, 1e-4)) {
      Fail("matmul_bt kernel diverged from naive at " + std::string(shape));
    }
    g_rows.push_back({"matmul_bt_kernel", shape, threads, s, flops / s / 1e9,
                      "gflops", naive_s / s});

    if (g_tuner != nullptr) {
      KernelContext tuned = ctx;
      tuned.tuner = g_tuner;
      (void)la::MatMulBTK(tuned, a, b);
      Matrix tout;
      const double ts =
          TimeBest(reps, [&] { tout = la::MatMulBTK(tuned, a, b); });
      if (!BitIdentical(tout, out)) {
        Fail("matmul_bt tuned config not bit-identical to default at " +
             std::string(shape));
      }
      g_rows.push_back({"matmul_bt_tuned", shape, threads, ts,
                        flops / ts / 1e9, "gflops", naive_s / ts});
    }
  }
}

/// Long multi-word entity-style names, the shape alignment corpora take:
/// each source name is 3–7 vocabulary words, and its target counterpart is
/// a lightly perturbed copy (one word swapped, one character edited). Every
/// row therefore has a near-duplicate maximum, which is what gives the
/// pruned kernel's row-threshold bound its teeth.
std::pair<std::vector<std::string>, std::vector<std::string>>
MultiWordNamePairs(size_t n, uint64_t seed) {
  static const char* const kVocab[] = {
      "international", "university", "department",  "institute",
      "federation",    "association", "observatory", "municipality",
      "conservatory",  "philharmonic", "metropolitan", "headquarters",
      "northern",      "southern",    "central",     "historical",
      "national",      "provincial",  "industrial",  "memorial",
  };
  constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);
  Rng rng(seed);
  std::vector<std::string> src(n);
  std::vector<std::string> tgt(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t words = 3 + rng.NextBounded(5);
    std::vector<size_t> picks(words);
    for (size_t& w : picks) w = rng.NextBounded(kVocabSize);
    std::string a;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) a += ' ';
      a += kVocab[picks[w]];
    }
    picks[rng.NextBounded(words)] = rng.NextBounded(kVocabSize);
    std::string b;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) b += ' ';
      b += kVocab[picks[w]];
    }
    b[rng.NextBounded(b.size())] =
        static_cast<char>('a' + rng.NextBounded(26));
    src[i] = std::move(a);
    tgt[i] = std::move(b);
  }
  return {std::move(src), std::move(tgt)};
}

void BenchStringMatrixNamed(const std::vector<std::string>& src,
                            const std::vector<std::string>& tgt,
                            const char* shape,
                            const std::vector<int>& thread_counts, int reps) {
  const size_t n = src.size();
  const double cells = static_cast<double>(n) * n;

  // text::StringSimilarityMatrix delegates to the kernel these days, so the
  // naive baseline here is the retained full-DP scalar reference applied
  // cell by cell — the pre-kernel implementation.
  Matrix naive_out;
  const double naive_s = TimeBest(reps, [&] {
    Matrix out(src.size(), tgt.size());
    for (size_t i = 0; i < src.size(); ++i) {
      for (size_t j = 0; j < tgt.size(); ++j) {
        out.at(i, j) =
            static_cast<float>(text::LevenshteinRatio(src[i], tgt[j]));
      }
    }
    naive_out = std::move(out);
  });
  g_rows.push_back({"string_naive", shape, 0, naive_s,
                    cells / naive_s / 1e6, "mcells", 1.0});

  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    KernelContext ctx;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Matrix out;
    const double s = TimeBest(
        reps, [&] { out = la::StringSimilarityMatrixK(ctx, src, tgt); });
    if (!BitIdentical(out, naive_out)) {
      Fail("string kernel diverged from naive at " + std::string(shape));
    }
    g_rows.push_back({"string_kernel", shape, threads, s, cells / s / 1e6,
                      "mcells", naive_s / s});

    // The pruned variant is benchmarked at the retrieval-style floor it is
    // designed for; only row maxima above the floor are contractually exact.
    constexpr double kFloor = 0.5;
    Matrix pruned;
    const double ps = TimeBest(reps, [&] {
      pruned = la::StringSimilarityMatrixPruned(ctx, src, tgt, kFloor);
    });
    for (size_t r = 0; r < naive_out.rows(); ++r) {
      float want = 0.0f, got = 0.0f;
      for (size_t c = 0; c < naive_out.cols(); ++c) {
        want = std::max(want, naive_out.at(r, c));
        got = std::max(got, pruned.at(r, c));
      }
      if (want > kFloor && want != got) {
        Fail("pruned string kernel lost a row maximum");
        break;
      }
    }
    g_rows.push_back({"string_pruned", shape, threads, ps, cells / ps / 1e6,
                      "mcells", naive_s / ps});
  }
}

void BenchStringMatrix(size_t n, const std::vector<int>& thread_counts,
                       int reps, size_t max_len = 24) {
  const auto src = RandomNames(n, max_len, 103);
  const auto tgt = RandomNames(n, max_len, 104);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zu names len<=%zu", n, n,
                max_len);
  BenchStringMatrixNamed(src, tgt, shape, thread_counts, reps);
}

/// The workload the pruned kernel (and the pipeline's length-aware
/// dispatch) exists for: long multi-word names with near-duplicate
/// matches, where row maxima are high enough for the length-ratio bound
/// to skip real work on top of the per-row mask amortization.
void BenchStringMatrixMultiWord(size_t n,
                                const std::vector<int>& thread_counts,
                                int reps) {
  const auto names = MultiWordNamePairs(n, 106);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zu multi-word names", n, n);
  BenchStringMatrixNamed(names.first, names.second, shape, thread_counts,
                         reps);
}

void BenchCsls(size_t n, size_t k, const std::vector<int>& thread_counts,
               int reps) {
  const Matrix m = RandomMatrix(n, n, 105);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zu k=%zu", n, n, k);
  const double cells = static_cast<double>(n) * n;

  Matrix naive_out;
  const double naive_s =
      TimeBest(reps, [&] { naive_out = la::CslsRescale(m, k); });
  g_rows.push_back({"csls_naive", shape, 0, naive_s, cells / naive_s / 1e6,
                    "mcells", 1.0});

  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    KernelContext ctx;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Matrix out;
    const double s =
        TimeBest(reps, [&] { out = la::CslsRescaleK(ctx, m, k); });
    if (!BitIdentical(out, naive_out)) {
      Fail("csls kernel diverged from naive at " + std::string(shape));
    }
    g_rows.push_back({"csls_kernel", shape, threads, s, cells / s / 1e6,
                      "mcells", naive_s / s});
  }
}

void BenchSpmm(size_t n, size_t d, size_t nnz_per_row,
               const std::vector<int>& thread_counts, int reps) {
  Rng rng(106);
  std::vector<la::Triplet> triplets;
  triplets.reserve(n * nnz_per_row);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < nnz_per_row; ++i) {
      triplets.push_back({static_cast<uint32_t>(r),
                          static_cast<uint32_t>(rng.NextBounded(n)),
                          static_cast<float>(rng.NextUniform(-1.0, 1.0))});
    }
  }
  const la::SparseMatrix a = la::SparseMatrix::Build(n, n, std::move(triplets));
  const Matrix x = RandomMatrix(n, d, 107);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zu nnz=%zu d=%zu", n, n, a.nnz(),
                d);
  const double flops = 2.0 * static_cast<double>(a.nnz()) * d;

  Matrix naive_out;
  const double naive_s = TimeBest(reps, [&] { naive_out = a.Multiply(x); });
  g_rows.push_back({"spmm_naive", shape, 0, naive_s, flops / naive_s / 1e9,
                    "gflops", 1.0});

  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    KernelContext ctx;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Matrix out;
    const double s = TimeBest(reps, [&] { out = la::SpMMK(ctx, a, x); });
    if (!BitIdentical(out, naive_out)) {
      Fail("spmm kernel diverged from naive at " + std::string(shape));
    }
    g_rows.push_back({"spmm_kernel", shape, threads, s, flops / s / 1e9,
                      "gflops", naive_s / s});

    if (g_tuner != nullptr) {
      KernelContext tuned = ctx;
      tuned.tuner = g_tuner;
      (void)la::SpMMK(tuned, a, x);
      Matrix tout;
      const double ts = TimeBest(reps, [&] { tout = la::SpMMK(tuned, a, x); });
      if (!BitIdentical(tout, out)) {
        Fail("spmm tuned config not bit-identical to default at " +
             std::string(shape));
      }
      g_rows.push_back({"spmm_tuned", shape, threads, ts, flops / ts / 1e9,
                        "gflops", naive_s / ts});
    }
  }
}

/// The --smoke perf-regression gate: times naive vs tuned kernel on modest
/// shapes (min-of-5 wall) and fails when a tuned kernel is more than 10%
/// slower than its naive baseline — the blocked kernels exist to beat
/// naive, so losing to it by a margin is a regression no matter what the
/// absolute numbers are. Skipped under sanitizers and when
/// CEAFF_SKIP_PERF_GATE=1 (debug boxes); the bit-identity parity checks in
/// RunSmoke still run either way.
[[maybe_unused]] void RunSmokePerfGate() {
  constexpr double kTolerance = 1.10;
  constexpr int kReps = 7;
  la::AutotuneOptions tune_options;
  tune_options.mode = la::AutotuneMode::kOn;
  la::KernelAutotuner tuner(tune_options);
  if (!tuner.Init().ok()) {
    Fail("perf gate: tuner init failed");
    return;
  }
  KernelContext ctx;
  ctx.tuner = &tuner;

  const auto gate = [&](const char* name, double naive_s, double tuned_s) {
    if (tuned_s > naive_s * kTolerance) {
      Fail(std::string("perf gate: tuned ") + name + " is " +
           std::to_string(tuned_s / naive_s) + "x the naive baseline " +
           "(tolerance " + std::to_string(kTolerance) + "x)");
    } else {
      std::fprintf(stderr, "perf gate: %-10s tuned/naive = %.2f (<= %.2f)\n",
                   name, tuned_s / naive_s, kTolerance);
    }
  };

  {
    const Matrix a = RandomMatrix(256, 64, 11);
    const Matrix b = RandomMatrix(256, 64, 12);
    Matrix out;
    (void)la::MatMulBTK(ctx, a, b);  // pay the measurement outside the gate
    const double tuned_s =
        TimeBest(kReps, [&] { out = la::MatMulBTK(ctx, a, b); });
    const double naive_s = TimeBest(kReps, [&] { out = la::MatMulBT(a, b); });
    gate("matmul_bt", naive_s, tuned_s);
  }
  {
    const Matrix a = RandomMatrix(256, 48, 13);
    const Matrix b = RandomMatrix(256, 48, 14);
    Matrix out;
    (void)la::CosineSimilarityK(ctx, a, b);
    const double tuned_s =
        TimeBest(kReps, [&] { out = la::CosineSimilarityK(ctx, a, b); });
    const double naive_s =
        TimeBest(kReps, [&] { out = la::CosineSimilarity(a, b); });
    gate("cosine", naive_s, tuned_s);
  }
  {
    Rng rng(15);
    std::vector<la::Triplet> triplets;
    const size_t n = 4000, nnz_per_row = 8, d = 32;
    triplets.reserve(n * nnz_per_row);
    for (size_t r = 0; r < n; ++r) {
      for (size_t i = 0; i < nnz_per_row; ++i) {
        triplets.push_back({static_cast<uint32_t>(r),
                            static_cast<uint32_t>(rng.NextBounded(n)),
                            static_cast<float>(rng.NextUniform(-1.0, 1.0))});
      }
    }
    const la::SparseMatrix a =
        la::SparseMatrix::Build(n, n, std::move(triplets));
    const Matrix x = RandomMatrix(n, d, 16);
    Matrix out;
    (void)la::SpMMK(ctx, a, x);
    const double tuned_s = TimeBest(kReps, [&] { out = la::SpMMK(ctx, a, x); });
    const double naive_s = TimeBest(kReps, [&] { out = a.Multiply(x); });
    gate("spmm", naive_s, tuned_s);
  }
}

/// --smoke: fast parity pass over small shapes plus the perf-regression
/// gate above. Exits non-zero on any divergence or timing regression; this
/// is the `bench`-labelled ctest entry.
int RunSmoke() {
  ThreadPool pool(4);
  KernelContext seq;
  KernelContext par;
  par.pool = &pool;
  par.opts.row_block = 3;
  par.opts.col_block = 5;

  {
    const Matrix a = RandomMatrix(31, 45, 1);
    const Matrix b = RandomMatrix(27, 45, 2);
    const Matrix naive = la::CosineSimilarity(a, b);
    if (!NearEqual(la::CosineSimilarityK(seq, a, b), naive, 1e-4)) {
      Fail("cosine sequential");
    }
    if (!BitIdentical(la::CosineSimilarityK(seq, a, b),
                      la::CosineSimilarityK(par, a, b))) {
      Fail("cosine determinism across thread counts");
    }
  }
  {
    const Matrix a = RandomMatrix(18, 25, 3);
    const Matrix b = RandomMatrix(25, 11, 4);
    if (!BitIdentical(la::MatMulK(par, a, b), MatMul(a, b))) {
      Fail("matmul parity");
    }
  }
  {
    const auto src = RandomNames(15, 20, 5);
    const auto tgt = RandomNames(13, 20, 6);
    if (!BitIdentical(la::StringSimilarityMatrixK(par, src, tgt),
                      text::StringSimilarityMatrix(src, tgt))) {
      Fail("string matrix parity");
    }
  }
  {
    const Matrix m = RandomMatrix(14, 19, 7);
    if (!BitIdentical(la::CslsRescaleK(par, m, 5), la::CslsRescale(m, 5))) {
      Fail("csls parity");
    }
  }
  {
    // Tuned-config bit-identity: whatever blocking the tuner measures for
    // these shapes must reproduce the default-config output exactly.
    la::AutotuneOptions tune_options;
    tune_options.mode = la::AutotuneMode::kOn;
    la::KernelAutotuner tuner(tune_options);
    if (!tuner.Init().ok()) {
      Fail("smoke: tuner init");
    } else {
      KernelContext tuned_par = par;
      tuned_par.tuner = &tuner;
      const Matrix a = RandomMatrix(63, 33, 8);
      const Matrix b = RandomMatrix(49, 33, 9);
      if (!BitIdentical(la::MatMulBTK(tuned_par, a, b),
                        la::MatMulBTK(par, a, b))) {
        Fail("matmul_bt tuned config not bit-identical to default");
      }
      Rng rng(10);
      std::vector<la::Triplet> triplets;
      for (size_t r = 0; r < 61; ++r) {
        for (size_t i = 0; i < 5; ++i) {
          triplets.push_back({static_cast<uint32_t>(r),
                              static_cast<uint32_t>(rng.NextBounded(61)),
                              static_cast<float>(rng.NextUniform(-1.0, 1.0))});
        }
      }
      const la::SparseMatrix sp =
          la::SparseMatrix::Build(61, 61, std::move(triplets));
      const Matrix x = RandomMatrix(61, 17, 11);
      if (!BitIdentical(la::SpMMK(tuned_par, sp, x), la::SpMMK(par, sp, x))) {
        Fail("spmm tuned config not bit-identical to default");
      }
    }
  }

  const char* skip_gate = std::getenv("CEAFF_SKIP_PERF_GATE");
#if defined(CEAFF_BENCH_SANITIZED)
  std::fprintf(stderr, "perf gate: skipped (sanitizer build)\n");
#else
  if (skip_gate != nullptr && skip_gate[0] == '1') {
    std::fprintf(stderr, "perf gate: skipped (CEAFF_SKIP_PERF_GATE=1)\n");
  } else {
    RunSmokePerfGate();
  }
#endif
  (void)skip_gate;

  std::fprintf(stderr, "kernels smoke: %s\n",
               g_failures == 0 ? "all checks passed" : "FAILED");
  return g_failures == 0 ? 0 : 1;
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    ++g_failures;
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"micro_kernels\",\n");
  std::fprintf(f, "  \"parity_failures\": %d,\n", g_failures);
  std::fprintf(f, "  \"entries\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const BenchRow& r = g_rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"shape\": \"%s\", \"threads\": "
                 "%d, \"seconds\": %.6f, \"%s\": %.3f, \"speedup_vs_naive\": "
                 "%.2f}%s\n",
                 r.kernel.c_str(), r.shape.c_str(), r.threads, r.seconds,
                 r.unit.c_str(), r.rate, r.speedup,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu entries)\n", path.c_str(),
               g_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_kernels.json";
  bool quick = false;
  bool smoke = false;
  bool autotune = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--autotune") {
      autotune = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: micro_kernels [--out FILE] [--quick] [--smoke] "
                   "[--autotune]\n");
      return 2;
    }
  }
  if (smoke) return RunSmoke();

  std::unique_ptr<la::KernelAutotuner> tuner;
  if (autotune) {
    la::AutotuneOptions tune_options;
    tune_options.mode = la::AutotuneMode::kOn;
    tuner = std::make_unique<la::KernelAutotuner>(tune_options);
    if (!tuner->Init().ok()) {
      std::fprintf(stderr, "cannot initialise the autotuner\n");
      return 2;
    }
    g_tuner = tuner.get();
  }

  const std::vector<int> threads = {1, 2, 4, 8};
  if (quick) {
    BenchCosine(256, 64, threads, 3);
    BenchMatMulBT(256, 256, 64, threads, 3);
    BenchStringMatrix(120, threads, 3);
    BenchStringMatrixMultiWord(120, threads, 3);
    BenchCsls(256, 10, threads, 3);
    BenchSpmm(2000, 32, 8, threads, 3);
  } else {
    BenchCosine(512, 64, threads, 5);
    // The tracked headline shape: 2k x 2k pairwise cosine at d = 128.
    BenchCosine(2048, 128, threads, 5);
    BenchMatMulBT(1024, 1024, 128, threads, 5);
    BenchStringMatrix(400, threads, 3);
    // Long multi-word near-duplicate names: the shape the pruned kernel
    // (and the pipeline's length-aware dispatch) is for — row maxima are
    // high, so the length-ratio bound skips most of the row.
    BenchStringMatrixMultiWord(400, threads, 3);
    BenchCsls(1024, 10, threads, 5);
    BenchSpmm(20000, 64, 10, threads, 5);
  }
  WriteJson(out);

  for (const BenchRow& r : g_rows) {
    std::fprintf(stderr,
                 "%-14s %-22s threads=%d  %8.4fs  %8.2f %s  x%.2f\n",
                 r.kernel.c_str(), r.shape.c_str(), r.threads, r.seconds,
                 r.rate, r.unit.c_str(), r.speedup);
  }
  return g_failures == 0 ? 0 : 1;
}
