#ifndef CEAFF_BENCH_BENCH_UTIL_H_
#define CEAFF_BENCH_BENCH_UTIL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ceaff/baselines/baselines.h"
#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"

namespace ceaff::bench {

/// Scale of the synthetic datasets relative to the paper's (gold pairs:
/// scale x 1000, or x 2000 for the DBP100K-like configs). Overridable via
/// the CEAFF_SCALE environment variable; default 0.25 keeps a full table
/// run within a few minutes on one core.
double DatasetScale();

/// GCN settings used by every table bench (smaller than the paper's
/// ds = 300 / 300 epochs, matching the reduced dataset scale). Overridable
/// via CEAFF_GCN_DIM / CEAFF_GCN_EPOCHS.
embed::GcnOptions BenchGcnOptions();

/// CEAFF options used by the table benches (paper defaults elsewhere).
core::CeaffOptions BenchCeaffOptions();

/// Generates (and memoises per process) the named standard benchmark at
/// DatasetScale().
const data::SyntheticBenchmark& GetBenchmark(const std::string& name);

/// One measured cell: methods column x dataset row.
struct Measured {
  double accuracy = 0.0;
  double hits_at_10 = 0.0;
  double mrr = 0.0;
  double seconds = 0.0;
};

/// Runs a named method on a benchmark. Methods:
///   MTransE, IPTransE, TransE-shared, BootEA-lite, GCN-Align (baselines);
///   CEAFF, CEAFF w/o C, CEAFF w/o Ml (the paper's own rows).
/// Unknown method names return NotFound.
StatusOr<Measured> RunMethod(const std::string& method,
                             const data::SyntheticBenchmark& bench);

/// Accuracy reported in the paper for (method, dataset), if the paper
/// reports one. Dataset keys match the StandardBenchmarkConfigs names.
std::optional<double> PaperAccuracy(const std::string& method,
                                    const std::string& dataset);

/// Prints one table row: name column then fixed-width numeric cells
/// ("  -  " for absent values).
void PrintRow(const std::string& name,
              const std::vector<std::optional<double>>& cells,
              int name_width = 22);

/// Prints a header row of dataset/metric labels aligned with PrintRow.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns,
                 int name_width = 22);

}  // namespace ceaff::bench

#endif  // CEAFF_BENCH_BENCH_UTIL_H_
