// Reproduces Figure 3: the adaptive weight assignment walkthrough. Three
// feature matrices produce six candidate confident correspondences; the
// conflicting ones (entity u2) are filtered; correspondence weights are
// 1/n with the θ1/θ2 clamp; feature weights are their normalised sums.

#include <cstdio>

#include "ceaff/fusion/adaptive_fusion.h"
#include "ceaff/la/matrix.h"

using namespace ceaff;

namespace {
void PrintCandidates(const char* name,
                     const std::vector<fusion::Correspondence>& cs) {
  std::printf("  %s:", name);
  if (cs.empty()) std::printf("  (none)");
  for (const fusion::Correspondence& c : cs) {
    std::printf("  (u%u, v%u) %.1f", c.source + 1, c.target + 1, c.score);
  }
  std::printf("\n");
}
}  // namespace

int main() {
  la::Matrix ms = la::Matrix::FromRows(
      {{0.6f, 0.8f, 0.2f}, {0.2f, 1.0f, 0.3f}, {0.1f, 0.2f, 0.4f}});
  la::Matrix mn = la::Matrix::FromRows(
      {{1.0f, 0.5f, 0.1f}, {0.2f, 1.0f, 0.5f}, {0.2f, 0.2f, 0.3f}});
  la::Matrix ml = la::Matrix::FromRows(
      {{0.6f, 0.5f, 0.4f}, {0.1f, 0.3f, 0.6f}, {0.4f, 0.4f, 0.3f}});

  std::printf("Figure 3 — adaptive weight assignment walkthrough "
              "(theta1 = 0.98, theta2 = 0.1)\n\n");
  fusion::FeatureWeightReport rep;
  auto fused = fusion::AdaptiveFuse({&ms, &mn, &ml}, {}, &rep);
  CEAFF_CHECK(fused.ok()) << fused.status();

  const char* names[] = {"Ms", "Mn", "Ml"};
  std::printf("candidate confident correspondences (row & column "
              "maxima):\n");
  for (int f = 0; f < 3; ++f) PrintCandidates(names[f], rep.candidates[f]);

  std::printf("\nretained after filtering (u2's candidates conflict across "
              "features -> all pruned):\n");
  for (int f = 0; f < 3; ++f) PrintCandidates(names[f], rep.retained[f]);

  std::printf("\nweighting scores and feature weights:\n");
  for (int f = 0; f < 3; ++f) {
    std::printf("  %s: score %.3f  ->  weight %.3f\n", names[f],
                rep.scores[f], rep.weights[f]);
  }
  std::printf(
      "\npaper's expected outcome: Ms keeps (u3,v3) alone -> score 1;\n"
      "(u1,v1) is shared by Mn and Ml -> 1/2 each, but Mn's instance "
      "scores\n1.0 > theta1 and is clamped to theta2 = 0.1; weights are\n"
      "1/1.6, 0.1/1.6, 0.5/1.6 = 0.625, 0.0625, 0.3125.\n");

  std::printf("\nfused matrix:\n%s", fused.value().ToString(3).c_str());
  return 0;
}
