#!/usr/bin/env python3
"""Compare two BENCH_kernels.json files and flag perf regressions.

Usage:
  tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.5]

Rows are matched on (kernel, shape, threads) and compared on
`speedup_vs_naive` — a machine-relative metric, so a committed baseline
from one box is still meaningful on another (absolute seconds are not).
Naive rows (threads == 0) are the 1.0 reference by construction and are
skipped.

Exit status is 1 when:
  * the candidate reports parity_failures > 0 (wrong answers trump any
    timing), or
  * any matched row's speedup dropped by more than --threshold relative
    to the baseline, i.e. candidate < baseline * (1 - threshold).

The default threshold (0.5) is deliberately loose: micro-benchmarks on a
shared/virtualised box jitter by tens of percent, and this gate exists to
catch "the kernel fell off a cliff" (a lost fast path, a serialized
parallel path), not 10% scheduler noise. Rows present in only one file
are reported but never fail the gate — benchmarks grow over time.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for entry in doc.get("entries", []):
        threads = entry.get("threads", 0)
        if threads == 0:
            continue  # naive reference row: speedup 1.0 by definition
        key = (entry.get("kernel", "?"), entry.get("shape", "?"), threads)
        rows[key] = float(entry.get("speedup_vs_naive", 0.0))
    return doc, rows


def main():
    parser = argparse.ArgumentParser(
        description="Diff two micro_kernels JSON reports for regressions.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=0.5,
        help="max allowed relative drop in speedup_vs_naive (default 0.5 "
             "= candidate may not be slower than half the baseline ratio)")
    args = parser.parse_args()

    base_doc, base = load_rows(args.baseline)
    cand_doc, cand = load_rows(args.candidate)

    failures = []
    parity = int(cand_doc.get("parity_failures", 0))
    if parity > 0:
        failures.append(f"candidate reports {parity} parity failure(s)")

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    print(f"bench_diff: {len(shared)} shared rows, "
          f"{len(only_base)} baseline-only, {len(only_cand)} candidate-only "
          f"(threshold: drop > {args.threshold:.0%} fails)")
    worst = None
    for key in shared:
        b, c = base[key], cand[key]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if b > 0 and c < b * (1.0 - args.threshold):
            flag = "  << REGRESSION"
            failures.append(
                f"{key[0]} {key[1]} @{key[2]}t: speedup {b:.2f} -> {c:.2f} "
                f"({ratio:.0%} of baseline)")
        if worst is None or ratio < worst[0]:
            worst = (ratio, key, b, c)
        print(f"  {key[0]:<20} {key[1]:<24} {key[2]:>2}t  "
              f"base {b:6.2f}x  cand {c:6.2f}x  ({ratio:6.1%}){flag}")
    for key in only_base:
        print(f"  {key[0]:<20} {key[1]:<24} {key[2]:>2}t  "
              f"base {base[key]:6.2f}x  cand      -  (row gone)")
    for key in only_cand:
        print(f"  {key[0]:<20} {key[1]:<24} {key[2]:>2}t  "
              f"base      -  cand {cand[key]:6.2f}x  (new row)")

    if worst is not None:
        _, key, b, c = worst
        print(f"bench_diff: worst shared row {key[0]} {key[1]} @{key[2]}t "
              f"({b:.2f}x -> {c:.2f}x)")
    if failures:
        print("bench_diff: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
