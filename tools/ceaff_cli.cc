// ceaff — command-line front end to the CEAFF entity-alignment library.
//
// Subcommands:
//   generate  Create a synthetic benchmark dataset on disk (TSV layout).
//   stats     Print statistics of a dataset directory.
//   align     Run CEAFF (or a configured variant) on a dataset and write
//             predicted correspondences.
//   eval      Score a prediction file against the dataset's test links.
//
// Examples:
//   ceaff generate --config DBP15K_ZH_EN --scale 0.25 --out /tmp/zh_en
//   ceaff align --data /tmp/zh_en --out /tmp/zh_en/pred.tsv
//   ceaff align --data /tmp/zh_en --decision independent --fusion fixed
//   ceaff eval --data /tmp/zh_en --pred /tmp/zh_en/pred.tsv

#include <csignal>
#include <cstdio>
#include <numeric>
#include <string>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/flags.h"
#include "ceaff/common/timer.h"
#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/kg/io.h"
#include "ceaff/text/embedding_io.h"

using namespace ceaff;

namespace {

/// Process-wide run control: SIGINT requests cooperative cancellation
/// (RequestCancel is async-signal-safe), --deadline_ms arms the deadline.
/// A second SIGINT falls back to the default handler (hard kill) in case a
/// kernel is stuck.
CancellationToken g_cancel;

void HandleSigint(int signum) {
  g_cancel.RequestCancel();
  std::signal(signum, SIG_DFL);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Reads the shared ingestion flags: strict by default, `--lenient_io`
/// skips malformed lines up to `--io_error_budget` (default 100).
ParseOptions IoOptionsFromFlags(const FlagParser& flags) {
  ParseOptions options;
  options.lenient = flags.GetBool("lenient_io", false);
  options.max_errors = static_cast<size_t>(
      flags.GetInt("io_error_budget", 100));
  return options;
}

/// Prints per-file skip summaries of a lenient load to stderr.
void ReportParseIssues(const std::vector<ParseReport>& reports) {
  for (const ParseReport& report : reports) {
    if (report.clean()) continue;
    std::fprintf(stderr, "warning: %s\n", report.ToString().c_str());
    for (const ParseIssue& issue : report.issues) {
      std::fprintf(stderr, "  %s:%zu: %s\n", report.path.c_str(), issue.line,
                   issue.reason.c_str());
    }
  }
}

/// Loads a dataset honouring --lenient_io / --io_error_budget.
Status LoadDataset(const FlagParser& flags, const std::string& dir,
                   kg::KgPair* pair) {
  std::vector<ParseReport> reports;
  Status st = kg::LoadKgPair(dir, pair, IoOptionsFromFlags(flags), &reports);
  ReportParseIssues(reports);
  return st;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ceaff <generate|stats|align|eval> [--flags]\n"
               "  generate --config NAME --scale S --out DIR [--seed N]\n"
               "  stats    --data DIR\n"
               "  align    --data DIR [--out FILE] [--fusion adaptive|fixed|"
               "learned]\n"
               "           [--decision collective|independent|hungarian]\n"
               "           [--no-structural] [--no-semantic] [--no-string] "
               "[--attributes]\n"
               "           [--gcn-dim N] [--gcn-epochs N] [--theta1 X] "
               "[--embeddings FILE] "
               "[--theta2 X]\n"
               "           [--checkpoint_dir DIR] [--resume] "
               "[--deadline_ms N]\n"
               "           [--export_index FILE] [--export_ann BOOL] "
               "[--ann_centroids N]\n"
               "           [--threads N] [--block_size N]\n"
               "  eval     --data DIR --pred FILE\n"
               "common:    [--lenient_io] [--io_error_budget N]  skip up to N "
               "malformed\n"
               "           input lines instead of failing on the first one\n");
  return 2;
}

/// Default store when no --embeddings file is given: deterministic
/// hash-fallback vectors (identical spellings align — right for
/// mono-lingual and closely-related pairs). Pass --embeddings with
/// pretrained multilingual vectors (word2vec/GloVe/fastText text format)
/// for distant language pairs.
text::WordEmbeddingStore MakeStore(const kg::KgPair& pair, size_t dim) {
  (void)pair;
  return text::WordEmbeddingStore(dim, /*seed=*/17);
}

int CmdGenerate(const FlagParser& flags) {
  std::string config = flags.GetString("config", "DBP15K_FR_EN");
  double scale = flags.GetDouble("scale", 0.25);
  std::string out = flags.GetString("out", "");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out DIR is required\n");
    return 2;
  }
  auto cfg = data::BenchmarkConfigByName(config, scale, seed);
  if (!cfg.ok()) return Fail(cfg.status());
  auto bench = data::GenerateBenchmark(cfg.value());
  if (!bench.ok()) return Fail(bench.status());
  Status st = kg::SaveKgPair(bench->pair, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%zu + %zu entities, %zu + %zu triples, %zu seed / "
              "%zu test links) to %s\n",
              config.c_str(), bench->pair.kg1.num_entities(),
              bench->pair.kg2.num_entities(), bench->pair.kg1.num_triples(),
              bench->pair.kg2.num_triples(),
              bench->pair.seed_alignment.size(),
              bench->pair.test_alignment.size(), out.c_str());
  return 0;
}

int CmdStats(const FlagParser& flags) {
  std::string dir = flags.GetString("data", "");
  if (dir.empty()) {
    std::fprintf(stderr, "stats: --data DIR is required\n");
    return 2;
  }
  kg::KgPair pair;
  Status st = LoadDataset(flags, dir, &pair);
  if (!st.ok()) return Fail(st);
  auto print_kg = [](const char* name, const kg::KnowledgeGraph& g) {
    std::vector<uint32_t> deg = g.Degrees();
    double avg = 0;
    for (uint32_t d : deg) avg += d;
    if (!deg.empty()) avg /= static_cast<double>(deg.size());
    std::printf("%s: %zu entities, %zu relations, %zu triples, "
                "%zu attributes, %zu attribute triples, avg degree %.2f\n",
                name, g.num_entities(), g.num_relations(), g.num_triples(),
                g.num_attributes(), g.num_attribute_triples(), avg);
  };
  print_kg("KG1", pair.kg1);
  print_kg("KG2", pair.kg2);
  std::printf("seed links: %zu, test links: %zu\n",
              pair.seed_alignment.size(), pair.test_alignment.size());
  std::printf("degree-distribution KS statistic: %.3f\n",
              data::KsStatistic(pair.kg1.Degrees(), pair.kg2.Degrees()));
  return 0;
}

int CmdAlign(const FlagParser& flags) {
  std::string dir = flags.GetString("data", "");
  if (dir.empty()) {
    std::fprintf(stderr, "align: --data DIR is required\n");
    return 2;
  }
  kg::KgPair pair;
  Status st = LoadDataset(flags, dir, &pair);
  if (!st.ok()) return Fail(st);

  core::CeaffOptions options;
  options.checkpoint_dir = flags.GetString("checkpoint_dir", "");
  options.resume = flags.GetBool("resume", false);
  options.cancel = &g_cancel;
  int64_t deadline_ms = flags.GetInt("deadline_ms", 0);
  if (deadline_ms > 0) g_cancel.SetDeadlineAfterMillis(deadline_ms);
  std::signal(SIGINT, HandleSigint);
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "align: --resume requires --checkpoint_dir\n");
    return 2;
  }
  if (!options.checkpoint_dir.empty()) {
    options.stage_callback = [](const std::string& stage,
                                bool from_checkpoint) {
      std::fprintf(stderr, "stage %s: %s\n", stage.c_str(),
                   from_checkpoint ? "restored from checkpoint" : "computed");
    };
  }
  options.export_index_path = flags.GetString("export_index", "");
  options.export_dataset = flags.GetString("export_dataset", "ceaff");
  options.export_ann = flags.GetBool("export_ann", true);
  int64_t ann_centroids = flags.GetInt("ann_centroids", 0);
  if (ann_centroids < 0) {
    std::fprintf(stderr, "align: --ann_centroids must be >= 0 (0 = auto)\n");
    return 2;
  }
  options.ann_centroids = static_cast<size_t>(ann_centroids);
  int64_t threads = flags.GetInt("threads", 1);
  if (threads < 1) {
    std::fprintf(stderr, "align: --threads must be >= 1\n");
    return 2;
  }
  options.num_threads = static_cast<size_t>(threads);
  int64_t block_size = flags.GetInt("block_size", 0);
  if (block_size < 0) {
    std::fprintf(stderr, "align: --block_size must be >= 0 (0 = default)\n");
    return 2;
  }
  options.block_size = static_cast<size_t>(block_size);
  options.use_structural = !flags.GetBool("no-structural", false);
  options.use_semantic = !flags.GetBool("no-semantic", false);
  options.use_string = !flags.GetBool("no-string", false);
  options.use_attribute = flags.GetBool("attributes", false);
  options.gcn.dim = static_cast<size_t>(flags.GetInt("gcn-dim", 128));
  options.gcn.epochs = static_cast<size_t>(flags.GetInt("gcn-epochs", 200));
  options.gcn.learning_rate =
      static_cast<float>(flags.GetDouble("gcn-lr", 1.0));
  options.fusion.theta1 = flags.GetDouble("theta1", 0.98);
  options.fusion.theta2 = flags.GetDouble("theta2", 0.1);

  std::string fusion = flags.GetString("fusion", "adaptive");
  if (fusion == "fixed") {
    options.fusion_mode = core::FusionMode::kFixed;
  } else if (fusion == "learned") {
    options.fusion_mode = core::FusionMode::kLearned;
  } else if (fusion != "adaptive") {
    std::fprintf(stderr, "align: unknown --fusion %s\n", fusion.c_str());
    return 2;
  }
  std::string decision = flags.GetString("decision", "collective");
  if (decision == "independent") {
    options.decision_mode = core::DecisionMode::kIndependent;
  } else if (decision == "hungarian") {
    options.decision_mode = core::DecisionMode::kHungarian;
  } else if (decision == "greedy") {
    options.decision_mode = core::DecisionMode::kGreedyOneToOne;
  } else if (decision != "collective") {
    std::fprintf(stderr, "align: unknown --decision %s\n", decision.c_str());
    return 2;
  }

  text::WordEmbeddingStore store =
      MakeStore(pair, static_cast<size_t>(flags.GetInt("embed-dim", 64)));
  std::string embeddings_path = flags.GetString("embeddings", "");
  if (!embeddings_path.empty()) {
    // Pretrained text-format vectors (word2vec/GloVe/fastText). Dimension
    // must match --embed-dim.
    text::EmbeddingIoOptions embedding_options;
    embedding_options.parse = IoOptionsFromFlags(flags);
    ParseReport embedding_report;
    st = text::LoadTextEmbeddings(embeddings_path, &store, embedding_options,
                                  &embedding_report);
    ReportParseIssues({embedding_report});
    if (!st.ok()) return Fail(st);
    std::printf("loaded %zu pretrained vectors from %s\n",
                store.explicit_tokens().size(), embeddings_path.c_str());
  }
  core::CeaffPipeline pipe(&pair, &store, options);
  WallTimer timer;
  auto result = pipe.Run();
  if (!result.ok()) return Fail(result.status());

  std::printf("accuracy: %.4f  (hits@10 %.4f, mrr %.4f)  in %.2fs\n",
              result->accuracy, result->ranking.hits_at_10,
              result->ranking.mrr, timer.ElapsedSeconds());
  if (!options.export_index_path.empty()) {
    std::printf("exported alignment index to %s\n",
                options.export_index_path.c_str());
  }
  if (!result->final_weights.empty()) {
    std::printf("final fusion weights:");
    for (double w : result->final_weights) std::printf(" %.3f", w);
    std::printf("\n");
  }

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    std::vector<kg::AlignmentPair> predicted;
    for (size_t i = 0; i < result->match.target_of_source.size(); ++i) {
      int64_t t = result->match.target_of_source[i];
      if (t < 0) continue;
      predicted.push_back(
          {pair.test_alignment[i].source,
           pair.test_alignment[static_cast<size_t>(t)].target});
    }
    st = kg::SaveAlignmentTsv(predicted, pair.kg1, pair.kg2, out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu predictions to %s\n", predicted.size(),
                out.c_str());
  }
  return 0;
}

int CmdEval(const FlagParser& flags) {
  std::string dir = flags.GetString("data", "");
  std::string pred = flags.GetString("pred", "");
  if (dir.empty() || pred.empty()) {
    std::fprintf(stderr, "eval: --data DIR and --pred FILE are required\n");
    return 2;
  }
  kg::KgPair pair;
  Status st = LoadDataset(flags, dir, &pair);
  if (!st.ok()) return Fail(st);
  std::vector<kg::AlignmentPair> predicted;
  st = kg::LoadAlignmentTsv(pred, pair.kg1, pair.kg2, &predicted);
  if (!st.ok()) return Fail(st);

  std::map<uint32_t, uint32_t> gold;
  for (const kg::AlignmentPair& p : pair.test_alignment) {
    gold[p.source] = p.target;
  }
  size_t correct = 0;
  for (const kg::AlignmentPair& p : predicted) {
    auto it = gold.find(p.source);
    if (it != gold.end() && it->second == p.target) ++correct;
  }
  std::printf("predictions: %zu, test links: %zu, correct: %zu, "
              "accuracy: %.4f\n",
              predicted.size(), gold.size(), correct,
              gold.empty() ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(gold.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagParser& flags = flags_or.value();
  std::string cmd = argv[1];

  int rc;
  if (cmd == "generate") {
    rc = CmdGenerate(flags);
  } else if (cmd == "stats") {
    rc = CmdStats(flags);
  } else if (cmd == "align") {
    rc = CmdAlign(flags);
  } else if (cmd == "eval") {
    rc = CmdEval(flags);
  } else {
    return Usage();
  }
  for (const std::string& f : flags.UnreadFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", f.c_str());
  }
  return rc;
}
