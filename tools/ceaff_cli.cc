// ceaff — command-line front end to the CEAFF entity-alignment library.
//
// Subcommands:
//   generate  Create a synthetic benchmark dataset on disk (TSV layout).
//   stats     Print statistics of a dataset directory.
//   align     Run CEAFF (or a configured variant) on a dataset and write
//             predicted correspondences.
//   eval      Score a prediction file against the dataset's test links.
//
// Examples:
//   ceaff generate --config DBP15K_ZH_EN --scale 0.25 --out /tmp/zh_en
//   ceaff align --data /tmp/zh_en --out /tmp/zh_en/pred.tsv
//   ceaff align --data /tmp/zh_en --decision independent --fusion fixed
//   ceaff eval --data /tmp/zh_en --pred /tmp/zh_en/pred.tsv

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/durable_io.h"
#include "ceaff/common/flags.h"
#include "ceaff/common/string_util.h"
#include "ceaff/common/timer.h"
#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/delta/delta_apply.h"
#include "ceaff/delta/delta_journal.h"
#include "ceaff/kg/io.h"
#include "ceaff/text/embedding_io.h"

using namespace ceaff;

namespace {

/// Process-wide run control: SIGINT requests cooperative cancellation
/// (RequestCancel is async-signal-safe), --deadline_ms arms the deadline.
/// A second SIGINT falls back to the default handler (hard kill) in case a
/// kernel is stuck.
CancellationToken g_cancel;

void HandleSigint(int signum) {
  g_cancel.RequestCancel();
  std::signal(signum, SIG_DFL);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Reads the shared ingestion flags: strict by default, `--lenient_io`
/// skips malformed lines up to `--io_error_budget` (default 100).
ParseOptions IoOptionsFromFlags(const FlagParser& flags) {
  ParseOptions options;
  options.lenient = flags.GetBool("lenient_io", false);
  options.max_errors = static_cast<size_t>(
      flags.GetInt("io_error_budget", 100));
  return options;
}

/// Reads the shared --autotune / --tune_cache flags. False (after printing
/// a usage error) on a bad mode spelling.
bool AutotuneFromFlags(const FlagParser& flags, const char* cmd,
                       la::AutotuneMode* mode, std::string* cache_dir) {
  const std::string text = flags.GetString("autotune", "off");
  auto mode_or = la::ParseAutotuneMode(text);
  if (!mode_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", cmd, mode_or.status().message().c_str());
    return false;
  }
  *mode = *mode_or;
  *cache_dir = flags.GetString("tune_cache", "");
  return true;
}

/// Every ParseReport produced by this process's loads, accumulated so the
/// end-of-run ingestion summary (and the --lenient_drop_threshold exit
/// verdict) covers all of them.
std::vector<ParseReport> g_parse_reports;

/// Prints per-file skip summaries of a lenient load to stderr and records
/// the reports for the end-of-run summary.
void ReportParseIssues(const std::vector<ParseReport>& reports) {
  for (const ParseReport& report : reports) {
    g_parse_reports.push_back(report);
    if (report.clean()) continue;
    std::fprintf(stderr, "warning: %s\n", report.ToString().c_str());
    for (const ParseIssue& issue : report.issues) {
      std::fprintf(stderr, "  %s:%zu: %s\n", report.path.c_str(), issue.line,
                   issue.reason.c_str());
    }
  }
}

/// End-of-run ingestion summary: per-file totals plus the overall drop
/// fraction. When --lenient_io skipped more than --lenient_drop_threshold
/// of all records, an otherwise-successful run exits 3 — so automation
/// notices a silently decaying input feed even though the run "worked".
int FinishWithIngestSummary(const FlagParser& flags, int rc) {
  const double threshold = flags.GetDouble("lenient_drop_threshold", 0.01);
  size_t loaded = 0, skipped = 0, dirty_files = 0;
  for (const ParseReport& report : g_parse_reports) {
    loaded += report.records_loaded;
    skipped += report.issues.size();
    if (!report.clean()) ++dirty_files;
  }
  if (skipped == 0) return rc;
  std::fprintf(stderr,
               "ingestion summary: %zu files (%zu with skips), %zu records "
               "loaded, %zu lines skipped\n",
               g_parse_reports.size(), dirty_files, loaded, skipped);
  for (const ParseReport& report : g_parse_reports) {
    if (report.clean()) continue;
    std::fprintf(stderr, "  %s\n", report.ToString().c_str());
  }
  const double dropped =
      static_cast<double>(skipped) / static_cast<double>(loaded + skipped);
  if (rc == 0 && dropped > threshold) {
    std::fprintf(stderr,
                 "error: lenient ingestion dropped %.2f%% of input lines "
                 "(threshold %.2f%%, --lenient_drop_threshold)\n",
                 dropped * 100.0, threshold * 100.0);
    return 3;
  }
  return rc;
}

/// Loads a dataset honouring --lenient_io / --io_error_budget.
Status LoadDataset(const FlagParser& flags, const std::string& dir,
                   kg::KgPair* pair) {
  std::vector<ParseReport> reports;
  Status st = kg::LoadKgPair(dir, pair, IoOptionsFromFlags(flags), &reports);
  ReportParseIssues(reports);
  return st;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ceaff <generate|stats|align|eval|delta|tune> "
               "[--flags]\n"
               "  generate --config NAME --scale S --out DIR [--seed N]\n"
               "  stats    --data DIR\n"
               "  align    --data DIR [--out FILE] [--fusion adaptive|fixed|"
               "learned]\n"
               "           [--decision collective|independent|hungarian]\n"
               "           [--no-structural] [--no-semantic] [--no-string] "
               "[--attributes]\n"
               "           [--gcn-dim N] [--gcn-epochs N] [--theta1 X] "
               "[--embeddings FILE] "
               "[--theta2 X]\n"
               "           [--checkpoint_dir DIR] [--resume] "
               "[--deadline_ms N]\n"
               "           [--export_index FILE] [--export_ann BOOL] "
               "[--ann_centroids N]\n"
               "           [--threads N] [--block_size N]\n"
               "           [--autotune on|off|cache-only] [--tune_cache DIR]\n"
               "           [--export_delta_state DIR]  also publish a delta "
               "ingestion state\n"
               "  eval     --data DIR --pred FILE\n"
               "  delta    <append|apply|rebuild|status> --journal DIR "
               "--state DIR\n"
               "           [--index DIR] [--patch FILE] [--audit_rows N] "
               "[--audit_tolerance X]\n"
               "           [--export_ann BOOL] [--ann_centroids N] "
               "[--threads N]\n"
               "           [--autotune on|off|cache-only] [--tune_cache DIR]\n"
               "  tune     [--tune_cache DIR] [--threads N] "
               "[--shapes kernel:MxNxD,...]\n"
               "           measure kernel blocking for a shape grid and "
               "persist the table\n"
               "common:    [--lenient_io] [--io_error_budget N]  skip up to N "
               "malformed\n"
               "           input lines instead of failing on the first one\n"
               "           [--lenient_drop_threshold F]  exit 3 when lenient "
               "ingestion\n"
               "           drops more than this fraction (default 0.01)\n");
  return 2;
}

/// Default store when no --embeddings file is given: deterministic
/// hash-fallback vectors (identical spellings align — right for
/// mono-lingual and closely-related pairs). Pass --embeddings with
/// pretrained multilingual vectors (word2vec/GloVe/fastText text format)
/// for distant language pairs.
text::WordEmbeddingStore MakeStore(const kg::KgPair& pair, size_t dim) {
  (void)pair;
  return text::WordEmbeddingStore(dim, /*seed=*/17);
}

int CmdGenerate(const FlagParser& flags) {
  std::string config = flags.GetString("config", "DBP15K_FR_EN");
  double scale = flags.GetDouble("scale", 0.25);
  std::string out = flags.GetString("out", "");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out DIR is required\n");
    return 2;
  }
  auto cfg = data::BenchmarkConfigByName(config, scale, seed);
  if (!cfg.ok()) return Fail(cfg.status());
  auto bench = data::GenerateBenchmark(cfg.value());
  if (!bench.ok()) return Fail(bench.status());
  Status st = kg::SaveKgPair(bench->pair, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%zu + %zu entities, %zu + %zu triples, %zu seed / "
              "%zu test links) to %s\n",
              config.c_str(), bench->pair.kg1.num_entities(),
              bench->pair.kg2.num_entities(), bench->pair.kg1.num_triples(),
              bench->pair.kg2.num_triples(),
              bench->pair.seed_alignment.size(),
              bench->pair.test_alignment.size(), out.c_str());
  return 0;
}

int CmdStats(const FlagParser& flags) {
  std::string dir = flags.GetString("data", "");
  if (dir.empty()) {
    std::fprintf(stderr, "stats: --data DIR is required\n");
    return 2;
  }
  kg::KgPair pair;
  Status st = LoadDataset(flags, dir, &pair);
  if (!st.ok()) return Fail(st);
  auto print_kg = [](const char* name, const kg::KnowledgeGraph& g) {
    std::vector<uint32_t> deg = g.Degrees();
    double avg = 0;
    for (uint32_t d : deg) avg += d;
    if (!deg.empty()) avg /= static_cast<double>(deg.size());
    std::printf("%s: %zu entities, %zu relations, %zu triples, "
                "%zu attributes, %zu attribute triples, avg degree %.2f\n",
                name, g.num_entities(), g.num_relations(), g.num_triples(),
                g.num_attributes(), g.num_attribute_triples(), avg);
  };
  print_kg("KG1", pair.kg1);
  print_kg("KG2", pair.kg2);
  std::printf("seed links: %zu, test links: %zu\n",
              pair.seed_alignment.size(), pair.test_alignment.size());
  std::printf("degree-distribution KS statistic: %.3f\n",
              data::KsStatistic(pair.kg1.Degrees(), pair.kg2.Degrees()));
  return 0;
}

int CmdAlign(const FlagParser& flags) {
  std::string dir = flags.GetString("data", "");
  if (dir.empty()) {
    std::fprintf(stderr, "align: --data DIR is required\n");
    return 2;
  }
  kg::KgPair pair;
  Status st = LoadDataset(flags, dir, &pair);
  if (!st.ok()) return Fail(st);

  core::CeaffOptions options;
  options.checkpoint_dir = flags.GetString("checkpoint_dir", "");
  options.resume = flags.GetBool("resume", false);
  options.cancel = &g_cancel;
  int64_t deadline_ms = flags.GetInt("deadline_ms", 0);
  if (deadline_ms > 0) g_cancel.SetDeadlineAfterMillis(deadline_ms);
  std::signal(SIGINT, HandleSigint);
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "align: --resume requires --checkpoint_dir\n");
    return 2;
  }
  if (!options.checkpoint_dir.empty()) {
    options.stage_callback = [](const std::string& stage,
                                bool from_checkpoint) {
      std::fprintf(stderr, "stage %s: %s\n", stage.c_str(),
                   from_checkpoint ? "restored from checkpoint" : "computed");
    };
  }
  options.export_index_path = flags.GetString("export_index", "");
  options.export_dataset = flags.GetString("export_dataset", "ceaff");
  options.export_ann = flags.GetBool("export_ann", true);
  int64_t ann_centroids = flags.GetInt("ann_centroids", 0);
  if (ann_centroids < 0) {
    std::fprintf(stderr, "align: --ann_centroids must be >= 0 (0 = auto)\n");
    return 2;
  }
  options.ann_centroids = static_cast<size_t>(ann_centroids);
  int64_t threads = flags.GetInt("threads", 1);
  if (threads < 1) {
    std::fprintf(stderr, "align: --threads must be >= 1\n");
    return 2;
  }
  options.num_threads = static_cast<size_t>(threads);
  int64_t block_size = flags.GetInt("block_size", 0);
  if (block_size < 0) {
    std::fprintf(stderr, "align: --block_size must be >= 0 (0 = default)\n");
    return 2;
  }
  options.block_size = static_cast<size_t>(block_size);
  if (!AutotuneFromFlags(flags, "align", &options.autotune,
                         &options.tune_cache_dir)) {
    return 2;
  }
  options.use_structural = !flags.GetBool("no-structural", false);
  options.use_semantic = !flags.GetBool("no-semantic", false);
  options.use_string = !flags.GetBool("no-string", false);
  options.use_attribute = flags.GetBool("attributes", false);
  options.gcn.dim = static_cast<size_t>(flags.GetInt("gcn-dim", 128));
  options.gcn.epochs = static_cast<size_t>(flags.GetInt("gcn-epochs", 200));
  options.gcn.learning_rate =
      static_cast<float>(flags.GetDouble("gcn-lr", 1.0));
  options.fusion.theta1 = flags.GetDouble("theta1", 0.98);
  options.fusion.theta2 = flags.GetDouble("theta2", 0.1);

  std::string fusion = flags.GetString("fusion", "adaptive");
  if (fusion == "fixed") {
    options.fusion_mode = core::FusionMode::kFixed;
  } else if (fusion == "learned") {
    options.fusion_mode = core::FusionMode::kLearned;
  } else if (fusion != "adaptive") {
    std::fprintf(stderr, "align: unknown --fusion %s\n", fusion.c_str());
    return 2;
  }
  std::string decision = flags.GetString("decision", "collective");
  if (decision == "independent") {
    options.decision_mode = core::DecisionMode::kIndependent;
  } else if (decision == "hungarian") {
    options.decision_mode = core::DecisionMode::kHungarian;
  } else if (decision == "greedy") {
    options.decision_mode = core::DecisionMode::kGreedyOneToOne;
  } else if (decision != "collective") {
    std::fprintf(stderr, "align: unknown --decision %s\n", decision.c_str());
    return 2;
  }

  text::WordEmbeddingStore store =
      MakeStore(pair, static_cast<size_t>(flags.GetInt("embed-dim", 64)));
  std::string embeddings_path = flags.GetString("embeddings", "");
  if (!embeddings_path.empty()) {
    // Pretrained text-format vectors (word2vec/GloVe/fastText). Dimension
    // must match --embed-dim.
    text::EmbeddingIoOptions embedding_options;
    embedding_options.parse = IoOptionsFromFlags(flags);
    ParseReport embedding_report;
    st = text::LoadTextEmbeddings(embeddings_path, &store, embedding_options,
                                  &embedding_report);
    ReportParseIssues({embedding_report});
    if (!st.ok()) return Fail(st);
    std::printf("loaded %zu pretrained vectors from %s\n",
                store.explicit_tokens().size(), embeddings_path.c_str());
  }
  const std::string delta_state_dir = flags.GetString("export_delta_state", "");
  if (!delta_state_dir.empty()) {
    // The delta repair path recomputes individual matrix rows and demands
    // bit-exact agreement, which the pruned Levenshtein kernel cannot give.
    options.force_exact_string_kernel = true;
  }

  core::CeaffPipeline pipe(&pair, &store, options);
  WallTimer timer;
  core::CeaffResult result;
  if (delta_state_dir.empty()) {
    auto result_or = pipe.Run();
    if (!result_or.ok()) return Fail(result_or.status());
    result = std::move(*result_or);
  } else {
    // Delta export needs the intermediate features (frozen GCN inputs,
    // embeddings), so drive the stages by hand instead of Run().
    auto features_or = pipe.GenerateFeatures();
    if (!features_or.ok()) return Fail(features_or.status());
    auto result_or = pipe.RunOnFeatures(*features_or);
    if (!result_or.ok()) return Fail(result_or.status());
    result = std::move(*result_or);
    if (!options.export_index_path.empty()) {
      st = pipe.ExportIndex(*features_or, result);
      if (!st.ok()) return Fail(st);
    }
    auto state_or = delta::BuildDeltaState(pair, store, options, *features_or,
                                           result, options.export_dataset);
    if (!state_or.ok()) return Fail(state_or.status());
    auto dstore_or = delta::OpenDeltaStateStore(delta_state_dir);
    if (!dstore_or.ok()) return Fail(dstore_or.status());
    st = delta::SaveDeltaState(*state_or, dstore_or->get());
    if (!st.ok()) return Fail(st);
    std::printf("exported delta state (%zu x %zu serving split) to %s\n",
                state_or->source_ids.size(), state_or->target_ids.size(),
                delta_state_dir.c_str());
  }

  std::printf("accuracy: %.4f  (hits@10 %.4f, mrr %.4f)  in %.2fs\n",
              result.accuracy, result.ranking.hits_at_10,
              result.ranking.mrr, timer.ElapsedSeconds());
  if (!options.export_index_path.empty()) {
    std::printf("exported alignment index to %s\n",
                options.export_index_path.c_str());
  }
  if (!result.final_weights.empty()) {
    std::printf("final fusion weights:");
    for (double w : result.final_weights) std::printf(" %.3f", w);
    std::printf("\n");
  }

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    std::vector<kg::AlignmentPair> predicted;
    for (size_t i = 0; i < result.match.target_of_source.size(); ++i) {
      int64_t t = result.match.target_of_source[i];
      if (t < 0) continue;
      predicted.push_back(
          {pair.test_alignment[i].source,
           pair.test_alignment[static_cast<size_t>(t)].target});
    }
    st = kg::SaveAlignmentTsv(predicted, pair.kg1, pair.kg2, out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu predictions to %s\n", predicted.size(),
                out.c_str());
  }
  return 0;
}

void PrintDeltaReport(const delta::DeltaApplyReport& report) {
  if (report.no_op) {
    std::printf("delta: no records past watermark %llu — nothing published\n",
                static_cast<unsigned long long>(report.watermark_before));
    return;
  }
  std::printf("delta %s: watermark %llu -> %llu, %zu records "
              "(+%zu entities, +%zu/-%zu triples, %zu renames, %zu served)\n",
              report.rebuilt ? "rebuild" : "apply",
              static_cast<unsigned long long>(report.watermark_before),
              static_cast<unsigned long long>(report.watermark_after),
              report.stats.records_applied, report.stats.entities_added,
              report.stats.triples_added, report.stats.triples_removed,
              report.stats.entities_renamed, report.stats.serve_added);
  std::printf("delta timing: repair %.3fs, verify %.3fs, publish %.3fs"
              "  dirty rows/cols %zu/%zu, re-sorted pref rows %zu\n",
              report.seconds_repair, report.seconds_verify,
              report.seconds_publish, report.stats.dirty_rows,
              report.stats.dirty_cols, report.stats.resorted_pref_rows);
  if (report.published_index_generation != 0) {
    std::printf("delta: serving index now at generation %llu\n",
                static_cast<unsigned long long>(
                    report.published_index_generation));
  }
}

int CmdDelta(const FlagParser& flags) {
  // main() hands FlagParser argv+1, and Parse itself skips its argv[0]
  // ("delta"), so the action is the first positional.
  const std::vector<std::string>& pos = flags.positional();
  const std::string action = pos.empty() ? "" : pos[0];
  delta::DeltaApplyOptions options;
  options.journal_dir = flags.GetString("journal", "");
  options.state_dir = flags.GetString("state", "");
  options.index_dir = flags.GetString("index", "");
  options.verify.audit_rows =
      static_cast<size_t>(flags.GetInt("audit_rows", 8));
  options.verify.audit_tolerance = flags.GetDouble("audit_tolerance", 0.0);
  options.export_ann = flags.GetBool("export_ann", true);
  options.ann_centroids =
      static_cast<size_t>(flags.GetInt("ann_centroids", 0));
  options.num_threads = static_cast<size_t>(flags.GetInt("threads", 1));
  options.block_size = static_cast<size_t>(flags.GetInt("block_size", 0));
  if (!AutotuneFromFlags(flags, "delta", &options.autotune,
                         &options.tune_cache_dir)) {
    return 2;
  }
  options.cancel = &g_cancel;
  std::signal(SIGINT, HandleSigint);
  if (options.journal_dir.empty()) {
    std::fprintf(stderr, "delta: --journal DIR is required\n");
    return 2;
  }

  if (action == "append") {
    const std::string patch_path = flags.GetString("patch", "");
    if (patch_path.empty()) {
      std::fprintf(stderr, "delta append: --patch FILE is required\n");
      return 2;
    }
    auto text_or = ReadFileToString(patch_path);
    if (!text_or.ok()) return Fail(text_or.status());
    auto records_or = delta::ParsePatchText(*text_or);
    if (!records_or.ok()) return Fail(records_or.status());
    auto journal_or = delta::DeltaJournal::Open(options.journal_dir);
    if (!journal_or.ok()) return Fail(journal_or.status());
    uint64_t first = 0, last = 0;
    for (const delta::PatchRecord& record : *records_or) {
      auto id_or = (*journal_or)->Append(record);
      if (!id_or.ok()) return Fail(id_or.status());
      if (first == 0) first = *id_or;
      last = *id_or;
    }
    std::printf("delta append: journaled %zu records (ids %llu..%llu) to "
                "%s\n",
                records_or->size(), static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(last),
                options.journal_dir.c_str());
    return 0;
  }
  if (action == "apply" || action == "rebuild") {
    if (options.state_dir.empty()) {
      std::fprintf(stderr, "delta %s: --state DIR is required\n",
                   action.c_str());
      return 2;
    }
    auto report_or = action == "apply" ? delta::ApplyDelta(options)
                                       : delta::RebuildDelta(options);
    if (!report_or.ok()) {
      const int rc = Fail(report_or.status());
      // A quarantined batch is a distinct, scriptable condition: the last
      // good generation still serves, and `delta rebuild` recovers.
      return delta::IsQuarantined(options.journal_dir) ? 4 : rc;
    }
    PrintDeltaReport(*report_or);
    return 0;
  }
  if (action == "status") {
    auto journal_or = delta::DeltaJournal::Open(options.journal_dir);
    if (!journal_or.ok()) return Fail(journal_or.status());
    std::printf("journal %s: last record id %llu, %zu segment(s)%s\n",
                options.journal_dir.c_str(),
                static_cast<unsigned long long>(
                    (*journal_or)->last_record_id()),
                (*journal_or)->SegmentSeqs().size(),
                delta::IsQuarantined(options.journal_dir)
                    ? ", QUARANTINED (run `ceaff delta rebuild`)"
                    : "");
    if (!options.state_dir.empty()) {
      auto store_or = delta::OpenDeltaStateStore(options.state_dir);
      if (!store_or.ok()) return Fail(store_or.status());
      auto state_or = delta::LoadDeltaState(store_or->get());
      if (!state_or.ok()) return Fail(state_or.status());
      auto pending_or = (*journal_or)->ReadAfter(state_or->watermark);
      if (!pending_or.ok()) return Fail(pending_or.status());
      std::printf("state %s: watermark %llu, %zu x %zu serving split, %zu "
                  "pending record(s)\n",
                  options.state_dir.c_str(),
                  static_cast<unsigned long long>(state_or->watermark),
                  state_or->source_ids.size(), state_or->target_ids.size(),
                  pending_or->size());
    }
    return 0;
  }
  std::fprintf(stderr,
               "delta: unknown action '%s' (append|apply|rebuild|status)\n",
               action.c_str());
  return 2;
}

/// Parses one --shapes element like "matmul_bt:1024x1024x128".
bool ParseTuneShape(const std::string& text, la::TuneShape* shape) {
  const std::vector<std::string> halves = Split(text, ':');
  if (halves.size() != 2) return false;
  shape->kernel = halves[0];
  if (shape->kernel != "matmul_bt" && shape->kernel != "matmul" &&
      shape->kernel != "spmm") {
    return false;
  }
  const std::vector<std::string> dims = Split(halves[1], 'x');
  if (dims.size() != 3) return false;
  char* end = nullptr;
  shape->m = std::strtoull(dims[0].c_str(), &end, 10);
  if (*end != '\0') return false;
  shape->n = std::strtoull(dims[1].c_str(), &end, 10);
  if (*end != '\0') return false;
  shape->d = std::strtoull(dims[2].c_str(), &end, 10);
  if (*end != '\0') return false;
  return shape->m > 0 && shape->n > 0 && shape->d > 0;
}

/// `ceaff tune`: pre-warms the persistent tune cache by measuring a shape
/// grid, then dumps the chosen table. Align/serve/delta runs pointed at
/// the same --tune_cache (typically with --autotune cache-only) reuse the
/// measurements instead of paying them at work time.
int CmdTune(const FlagParser& flags) {
  const std::string cache_dir = flags.GetString("tune_cache", "");
  const int64_t threads = flags.GetInt("threads", 4);
  if (threads < 1) {
    std::fprintf(stderr, "tune: --threads must be >= 1\n");
    return 2;
  }
  std::vector<la::TuneShape> shapes;
  const std::string shapes_flag = flags.GetString("shapes", "");
  if (shapes_flag.empty()) {
    // The default grid covers the shapes the align pipeline and bench
    // suite actually hit: similarity GEMMs at DBP15K-ish sizes plus the
    // GCN SpMM (d = avg nnz/row there).
    shapes = {{"matmul_bt", 512, 512, 64},   {"matmul_bt", 1024, 1024, 128},
              {"matmul_bt", 2048, 2048, 128}, {"matmul", 512, 512, 128},
              {"spmm", 20000, 64, 10}};
  } else {
    for (const std::string& item : Split(shapes_flag, ',')) {
      la::TuneShape shape;
      if (!ParseTuneShape(item, &shape)) {
        std::fprintf(stderr,
                     "tune: bad --shapes element '%s' (want "
                     "kernel:MxNxD with kernel in "
                     "matmul_bt|matmul|spmm)\n",
                     item.c_str());
        return 2;
      }
      shapes.push_back(shape);
    }
  }

  la::AutotuneOptions options;
  options.mode = la::AutotuneMode::kOn;
  options.cache_dir = cache_dir;
  la::KernelAutotuner tuner(options);
  Status st = tuner.Init();
  if (!st.ok()) return Fail(st);
  const la::CpuCacheInfo& caches = tuner.options().caches;
  std::fprintf(stderr, "tune: L1d %zu KiB, L2 %zu KiB (%s)\n",
               caches.l1d_bytes / 1024, caches.l2_bytes / 1024,
               caches.detected ? "detected" : "fallback defaults");

  std::vector<size_t> thread_counts{1};
  if (threads > 1) thread_counts.push_back(static_cast<size_t>(threads));
  WallTimer timer;
  st = tuner.Warm(shapes, thread_counts);
  if (!st.ok()) return Fail(st);
  std::printf("%s", tuner.TableText().c_str());
  std::printf("tune: %zu shape classes (%zu measured now) in %.2fs%s%s\n",
              tuner.entries(), tuner.measured_count(), timer.ElapsedSeconds(),
              cache_dir.empty() ? "; not persisted (pass --tune_cache DIR)"
                                : ", persisted to ",
              cache_dir.c_str());
  return 0;
}

int CmdEval(const FlagParser& flags) {
  std::string dir = flags.GetString("data", "");
  std::string pred = flags.GetString("pred", "");
  if (dir.empty() || pred.empty()) {
    std::fprintf(stderr, "eval: --data DIR and --pred FILE are required\n");
    return 2;
  }
  kg::KgPair pair;
  Status st = LoadDataset(flags, dir, &pair);
  if (!st.ok()) return Fail(st);
  std::vector<kg::AlignmentPair> predicted;
  st = kg::LoadAlignmentTsv(pred, pair.kg1, pair.kg2, &predicted);
  if (!st.ok()) return Fail(st);

  std::map<uint32_t, uint32_t> gold;
  for (const kg::AlignmentPair& p : pair.test_alignment) {
    gold[p.source] = p.target;
  }
  size_t correct = 0;
  for (const kg::AlignmentPair& p : predicted) {
    auto it = gold.find(p.source);
    if (it != gold.end() && it->second == p.target) ++correct;
  }
  std::printf("predictions: %zu, test links: %zu, correct: %zu, "
              "accuracy: %.4f\n",
              predicted.size(), gold.size(), correct,
              gold.empty() ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(gold.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagParser& flags = flags_or.value();
  std::string cmd = argv[1];

  int rc;
  if (cmd == "generate") {
    rc = CmdGenerate(flags);
  } else if (cmd == "stats") {
    rc = CmdStats(flags);
  } else if (cmd == "align") {
    rc = CmdAlign(flags);
  } else if (cmd == "eval") {
    rc = CmdEval(flags);
  } else if (cmd == "delta") {
    rc = CmdDelta(flags);
  } else if (cmd == "tune") {
    rc = CmdTune(flags);
  } else {
    return Usage();
  }
  for (const std::string& f : flags.UnreadFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", f.c_str());
  }
  return FinishWithIngestSummary(flags, rc);
}
