// ceaff_serve: line-delimited query frontend over an AlignmentIndex
// artifact (see src/ceaff/serve/protocol.h for the request/response
// grammar). Reads requests from --requests FILE or stdin, writes responses
// to stdout and serving statistics to stderr on exit.
//
//   ceaff_serve --index run.idx [--threads N] [--requests FILE]
//               [--deadline_ms N] [--cache N] [--scrub_ms N] [--shards N]
//
// --shards=N with N >= 2 (or --replicas=R with R >= 2) switches to
// crash-isolated sharded serving: this process becomes the
// supervisor/router and forks N×R shard workers — N contiguous target
// row-ranges, each owned by R replicas (see serve/router.h). With R == 1 a
// worker dying mid-query degrades that answer (marked `degraded=partial`)
// until its breaker respawns it; with R >= 2 the scatter fails over to the
// range's next replica, so losing any single worker keeps answers
// bit-identical and non-degraded, RELOAD becomes a rolling restart that
// never stops serving, and a post-reload canary auto-rolls-back a
// regressed generation. --shards=1 --replicas=1 (the defaults) is the
// unchanged single-process fast path.
//
// Lifecycle: SIGTERM (and SIGINT) triggers a graceful drain — intake stops
// after the current line, requests already in flight finish, the final
// stats are dumped to stderr, and the process exits 0. READY answers
// "ERR Unavailable draining" once a drain has begun, so a supervisor can
// take the instance out of rotation before it disappears.
//
// Exit codes: 0 clean (QUIT, EOF, or drained on signal), 2 usage error,
// 3 initial index load failed (distinct so supervisors can tell a bad
// artifact from a bad invocation and skip pointless restarts).

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/flags.h"
#include "ceaff/la/autotune.h"
#include "ceaff/serve/degradation.h"
#include "ceaff/serve/protocol.h"
#include "ceaff/serve/router.h"
#include "ceaff/serve/service.h"

namespace ceaff {
namespace {

/// Set by the SIGTERM/SIGINT handler; the request loop re-checks it before
/// every line. Installed WITHOUT SA_RESTART so a signal interrupts the
/// blocking getline on stdin (EINTR) instead of waiting for the next
/// request to arrive before the drain can begin.
volatile std::sig_atomic_t g_drain = 0;

void HandleDrainSignal(int) { g_drain = 1; }

void InstallDrainHandler() {
  struct sigaction action = {};
  action.sa_handler = HandleDrainSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: getline must see EINTR
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// ANN knobs shared by the single-process and sharded modes. --ann=off (the
/// default) keeps every scan on the exhaustive path even for v3 artifacts;
/// --ann=on is still safe against v1/v2 artifacts — the scan falls back per
/// query when the index carries no ANN sections.
///
/// Nonsensical values are rejected with an error naming the flag (a
/// `--nprobe 0` that silently served the default would hide a typo'd
/// deployment config until someone noticed recall was off). False return =
/// the caller exits with the usage code.
bool ParseAnnFlags(const FlagParser& flags, serve::AnnOptions* ann) {
  ann->enabled = flags.GetBool("ann", false);
  const int64_t nprobe = flags.GetInt("nprobe", 8);
  if (nprobe < 1) {
    std::fprintf(stderr, "ceaff_serve: --nprobe must be >= 1 (got %lld)\n",
                 static_cast<long long>(nprobe));
    return false;
  }
  ann->nprobe = static_cast<size_t>(nprobe);
  const int64_t shortlist = flags.GetInt("shortlist", 256);
  if (shortlist < 1) {
    std::fprintf(stderr,
                 "ceaff_serve: --shortlist must be >= 1 (got %lld)\n",
                 static_cast<long long>(shortlist));
    return false;
  }
  ann->shortlist = static_cast<size_t>(shortlist);
  return true;
}

/// Sane ceiling on the worker-process count: each worker costs the router
/// a socketpair fd plus a forked process; past this the fleet is a fork
/// bomb with extra steps, not a serving topology.
constexpr int64_t kMaxWorkers = 64;

int Usage() {
  std::fprintf(stderr,
               "usage: ceaff_serve --index FILE [--threads N] "
               "[--requests FILE]\n"
               "                   [--deadline_ms N] [--cache N] "
               "[--scrub_ms N] [--shards N]\n"
               "                   [--replicas N] [--respawn_flap_ms N] "
               "[--respawn_cooldown_ms N]\n"
               "                   [--ann on|off] [--nprobe N] "
               "[--shortlist N]\n"
               "                   [--autotune on|off|cache-only] "
               "[--tune_cache DIR]\n"
               "Reads protocol requests (PAIR/TOPK/BATCH/RELOAD/STATS/"
               "HEALTH/READY/QUIT)\n"
               "line by line from --requests or stdin; responses go to "
               "stdout.\n"
               "SIGTERM drains gracefully (finish in-flight, dump stats, "
               "exit 0).\n"
               "Exit codes: 0 ok, 2 usage, 3 initial index load failed.\n");
  return 2;
}

void PrintTopK(const serve::TopKResult& topk) {
  if (topk.degraded) {
    std::printf("OK TOPK %zu degraded=%s\n", topk.candidates.size(),
                serve::ServiceTierName(topk.tier));
  } else {
    std::printf("OK TOPK %zu\n", topk.candidates.size());
  }
  for (size_t r = 0; r < topk.candidates.size(); ++r) {
    const serve::Candidate& c = topk.candidates[r];
    std::printf("CAND %zu\t%s\t%.6f\t%.6f\t%.6f\t%.6f\n", r + 1,
                c.target_name.c_str(), c.combined, c.string_score,
                c.semantic_score, c.structural_score);
  }
}

/// Request loop for sharded mode: the same line protocol, answered by the
/// router's scatter/gather instead of an in-process AlignmentService.
/// Degraded TOPK answers (a shard's range missing from the merge) print
/// `degraded=partial`; HEALTH/READY report live-shard counts so a
/// supervisor can see a shard die and come back.
int RunSharded(const FlagParser& flags, size_t num_shards,
               size_t num_replicas) {
  const std::string index_path = flags.GetString("index", "");
  serve::ShardRouterOptions options;
  options.num_shards = num_shards;
  options.num_replicas = num_replicas;
  serve::AnnOptions ann;
  if (!ParseAnnFlags(flags, &ann)) return 2;
  options.ann = ann;
  const int64_t deadline_ms = flags.GetInt("deadline_ms", 0);
  if (deadline_ms > 0) options.default_shard_deadline_ms = deadline_ms;
  // Respawn-breaker tuning, surfaced as flags: the flap window (a death
  // within it feeds the breaker) and the open-state cooldown before a
  // half-open probe respawn.
  const int64_t flap_ms = flags.GetInt("respawn_flap_ms", 10'000);
  if (flap_ms < 1) {
    std::fprintf(stderr,
                 "ceaff_serve: --respawn_flap_ms must be >= 1 (got %lld)\n",
                 static_cast<long long>(flap_ms));
    return 2;
  }
  options.flap_window_ns = static_cast<uint64_t>(flap_ms) * 1'000'000ull;
  const int64_t cooldown_ms = flags.GetInt("respawn_cooldown_ms", 2'000);
  if (cooldown_ms < 1) {
    std::fprintf(
        stderr,
        "ceaff_serve: --respawn_cooldown_ms must be >= 1 (got %lld)\n",
        static_cast<long long>(cooldown_ms));
    return 2;
  }
  options.respawn_breaker.cooldown_ns =
      static_cast<uint64_t>(cooldown_ms) * 1'000'000ull;

  auto router_or = serve::ShardRouter::Start(index_path, options);
  if (!router_or.ok()) {
    std::fprintf(stderr, "ceaff_serve: cannot start sharded router: %s\n",
                 router_or.status().ToString().c_str());
    return 3;
  }
  std::unique_ptr<serve::ShardRouter> router = std::move(router_or).value();
  if (router->num_replicas() > 1) {
    std::fprintf(stderr, "sharded serving '%s': %zu ranges x %zu replicas\n",
                 index_path.c_str(), router->num_ranges(),
                 router->num_replicas());
  } else {
    std::fprintf(stderr, "sharded serving '%s': %zu shards\n",
                 index_path.c_str(), router->num_shards());
  }
  for (size_t i = 0; i < router->num_shards(); ++i) {
    const auto range = router->shard_range(i);
    // The replica tag is appended only for replicated fleets so the R == 1
    // stderr lines stay byte-compatible with the pre-replication drills.
    std::string suffix;
    if (router->num_replicas() > 1) {
      suffix = " replica " + std::to_string(i % router->num_replicas());
    }
    std::fprintf(stderr, "shard %zu pid %d range [%zu, %zu)%s%s\n", i,
                 static_cast<int>(router->shard_pid(i)), range.first,
                 range.second, suffix.c_str(),
                 router->shard_alive(i) ? "" : " (down)");
  }

  std::ifstream file;
  const std::string requests_path = flags.GetString("requests", "");
  if (!requests_path.empty()) {
    file.open(requests_path);
    if (!file) {
      std::fprintf(stderr, "ceaff_serve: cannot open requests file %s\n",
                   requests_path.c_str());
      return 2;
    }
  }
  std::istream& in = requests_path.empty() ? std::cin : file;

  InstallDrainHandler();

  auto print_topk = [](const serve::TopKResult& topk) {
    if (topk.degraded) {
      std::printf("OK TOPK %zu degraded=partial\n", topk.candidates.size());
    } else {
      std::printf("OK TOPK %zu\n", topk.candidates.size());
    }
    for (size_t r = 0; r < topk.candidates.size(); ++r) {
      const serve::Candidate& c = topk.candidates[r];
      std::printf("CAND %zu\t%s\t%.6f\t%.6f\t%.6f\t%.6f\n", r + 1,
                  c.target_name.c_str(), c.combined, c.string_score,
                  c.semantic_score, c.structural_score);
    }
  };

  std::string line;
  while (g_drain == 0 && std::getline(in, line)) {
    auto request_or = serve::ParseRequest(line);
    if (!request_or.ok()) {
      if (request_or.status().code() == StatusCode::kNotFound) continue;
      std::printf("%s\n",
                  serve::FormatErrorResponse(request_or.status()).c_str());
      std::fflush(stdout);
      continue;
    }
    const serve::Request& request = request_or.value();

    CancellationToken token;
    const CancellationToken* cancel = nullptr;
    if (deadline_ms > 0) {
      token.SetDeadlineAfterMillis(deadline_ms);
      cancel = &token;
    }

    switch (request.type) {
      case serve::RequestType::kPair: {
        auto answer = router->LookupPair(request.names[0], cancel);
        if (answer.ok()) {
          std::printf("OK PAIR %s\t%s\t%.6f\n",
                      answer->source_name.c_str(),
                      answer->target_name.c_str(), answer->score);
        } else if (answer.status().code() == StatusCode::kNotFound) {
          std::printf("NONE PAIR %s\n", request.names[0].c_str());
        } else {
          std::printf("%s\n",
                      serve::FormatErrorResponse(answer.status()).c_str());
        }
        break;
      }
      case serve::RequestType::kTopK: {
        auto topk = router->TopK(request.names[0], request.k, cancel);
        if (topk.ok()) {
          print_topk(topk.value());
        } else {
          std::printf("%s\n",
                      serve::FormatErrorResponse(topk.status()).c_str());
        }
        break;
      }
      case serve::RequestType::kBatch: {
        std::printf("OK BATCH %zu\n", request.names.size());
        for (const std::string& name : request.names) {
          auto topk = router->TopK(name, request.k, cancel);
          if (topk.ok()) {
            print_topk(topk.value());
          } else {
            std::printf("%s\n",
                        serve::FormatErrorResponse(topk.status()).c_str());
          }
        }
        break;
      }
      case serve::RequestType::kReload: {
        Status st = router->Reload(request.path);
        if (st.ok()) {
          std::printf("OK RELOAD %s\n", request.path.c_str());
        } else {
          std::printf("%s\n", serve::FormatErrorResponse(st).c_str());
        }
        break;
      }
      case serve::RequestType::kStats:
        std::printf("OK STATS {\"router\": %s}\n",
                    router->StatsJson().c_str());
        break;
      case serve::RequestType::kHealth: {
        const auto health = router->CheckHealth();
        if (router->num_replicas() > 1) {
          // Replicated fleets report range coverage too: dead workers with
          // every range still covered means answers are still exact.
          std::printf("OK HEALTH shards=%zu/%zu ranges=%zu/%zu%s\n",
                      health.alive, health.total, health.ranges_covered,
                      health.ranges_total,
                      health.degraded ? " degraded" : "");
        } else {
          std::printf("OK HEALTH shards=%zu/%zu%s\n", health.alive,
                      health.total, health.degraded ? " degraded" : "");
        }
        break;
      }
      case serve::RequestType::kReady: {
        if (g_drain != 0) {
          std::printf("ERR Unavailable draining\n");
          break;
        }
        const auto health = router->CheckHealth();
        if (health.alive == 0) {
          std::printf("ERR Unavailable no live shards\n");
        } else {
          std::printf("OK READY shards=%zu/%zu\n", health.alive,
                      health.total);
        }
        break;
      }
      case serve::RequestType::kQuit:
        std::fflush(stdout);
        std::fprintf(stderr, "final stats: {\"router\": %s}\n",
                     router->StatsJson().c_str());
        return 0;
    }
    std::fflush(stdout);
  }

  if (g_drain != 0) {
    std::fprintf(stderr, "draining: intake stopped, flushing in-flight "
                         "requests\n");
  }
  std::fflush(stdout);
  std::fprintf(stderr, "final stats: {\"router\": %s}\n",
               router->StatsJson().c_str());
  return 0;
}

int Run(const FlagParser& flags) {
  const std::string index_path = flags.GetString("index", "");
  if (index_path.empty()) {
    std::fprintf(stderr, "ceaff_serve: --index FILE is required\n");
    return Usage();
  }
  const int64_t shards = flags.GetInt("shards", 1);
  if (shards < 1) {
    std::fprintf(stderr, "ceaff_serve: --shards must be >= 1 (got %lld)\n",
                 static_cast<long long>(shards));
    return 2;
  }
  const int64_t replicas = flags.GetInt("replicas", 1);
  if (replicas < 1) {
    std::fprintf(stderr,
                 "ceaff_serve: --replicas must be >= 1 (got %lld)\n",
                 static_cast<long long>(replicas));
    return 2;
  }
  if (shards * replicas > kMaxWorkers) {
    std::fprintf(stderr,
                 "ceaff_serve: --shards x --replicas is %lld workers, over "
                 "the fd/process budget of %lld\n",
                 static_cast<long long>(shards * replicas),
                 static_cast<long long>(kMaxWorkers));
    return 2;
  }
  if (shards > 1 || replicas > 1) {
    // Touch the single-process-only flags so they do not warn as unknown.
    (void)flags.GetInt("threads", 4);
    (void)flags.GetInt("cache", 1024);
    (void)flags.GetInt("scrub_ms", 0);
    (void)flags.GetString("autotune", "off");
    (void)flags.GetString("tune_cache", "");
    return RunSharded(flags, static_cast<size_t>(shards),
                      static_cast<size_t>(replicas));
  }
  // Touch the sharded-only flags for the same reason.
  (void)flags.GetInt("respawn_flap_ms", 10'000);
  (void)flags.GetInt("respawn_cooldown_ms", 2'000);
  serve::ServiceOptions options;
  serve::AnnOptions ann;
  if (!ParseAnnFlags(flags, &ann)) return 2;
  options.ann = ann;
  const int64_t threads = flags.GetInt("threads", 4);
  if (threads < 1) {
    std::fprintf(stderr, "ceaff_serve: --threads must be >= 1\n");
    return 2;
  }
  options.num_threads = static_cast<size_t>(threads);
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 1024));
  // Background integrity scrub of the in-memory snapshot (0 = off). On
  // corruption the service degrades to pair-only and re-reads --index;
  // progress is visible under "scrub" in STATS.
  const int64_t scrub_ms = flags.GetInt("scrub_ms", 0);
  if (scrub_ms < 0) {
    std::fprintf(stderr, "ceaff_serve: --scrub_ms must be >= 0\n");
    return 2;
  }
  options.scrub_interval_ms = static_cast<uint64_t>(scrub_ms);
  const int64_t deadline_ms = flags.GetInt("deadline_ms", 0);

  auto service_or = serve::AlignmentService::Open(index_path, options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "ceaff_serve: cannot open index: %s\n",
                 service_or.status().ToString().c_str());
    return 3;
  }
  std::unique_ptr<serve::AlignmentService> service =
      std::move(service_or).value();
  {
    auto index = service->snapshot();
    std::fprintf(stderr,
                 "serving '%s' (%zu sources, %zu targets, %zu pairs) on %zu "
                 "threads\n",
                 index->dataset.c_str(), index->num_sources(),
                 index->num_targets(), index->pairs.size(),
                 service->num_threads());

    // Tune at index load, before the first request: warm the kernel tuner
    // for the loaded index's similarity shapes and persist the table.
    // Serving itself uses fixed scans, so this is cache pre-population for
    // co-located batch/delta workloads sharing --tune_cache; a failure
    // warns and serving proceeds untouched.
    const std::string autotune_text = flags.GetString("autotune", "off");
    auto autotune_or = la::ParseAutotuneMode(autotune_text);
    if (!autotune_or.ok()) {
      std::fprintf(stderr, "ceaff_serve: %s\n",
                   autotune_or.status().message().c_str());
      return 2;
    }
    if (*autotune_or != la::AutotuneMode::kOff) {
      la::AutotuneOptions tune_options;
      tune_options.mode = *autotune_or;
      tune_options.cache_dir = flags.GetString("tune_cache", "");
      la::KernelAutotuner tuner(tune_options);
      Status st = tuner.Init();
      if (st.ok() && *autotune_or == la::AutotuneMode::kOn) {
        std::vector<la::TuneShape> shapes;
        const size_t m = index->num_sources();
        const size_t n = index->num_targets();
        if (!index->source_name_emb.empty()) {
          shapes.push_back({"matmul_bt", m, n, index->source_name_emb.cols()});
        }
        if (!index->source_struct_emb.empty()) {
          shapes.push_back(
              {"matmul_bt", m, n, index->source_struct_emb.cols()});
        }
        st = tuner.Warm(shapes, {1, service->num_threads()});
      }
      if (st.ok()) {
        std::fprintf(stderr, "autotune %s: %zu shape classes (%zu measured "
                     "at load)\n",
                     la::AutotuneModeName(*autotune_or), tuner.entries(),
                     tuner.measured_count());
      } else {
        std::fprintf(stderr, "autotune disabled: %s\n",
                     st.ToString().c_str());
      }
    } else {
      (void)flags.GetString("tune_cache", "");
    }
  }

  std::ifstream file;
  const std::string requests_path = flags.GetString("requests", "");
  if (!requests_path.empty()) {
    file.open(requests_path);
    if (!file) {
      std::fprintf(stderr, "ceaff_serve: cannot open requests file %s\n",
                   requests_path.c_str());
      return 2;
    }
  }
  std::istream& in = requests_path.empty() ? std::cin : file;

  InstallDrainHandler();

  std::string line;
  // The drain flag is checked before every read AND getline is interrupted
  // by the signal (no SA_RESTART), so a SIGTERM arriving while blocked on
  // an idle stdin still begins the drain immediately.
  while (g_drain == 0 && std::getline(in, line)) {
    auto request_or = serve::ParseRequest(line);
    if (!request_or.ok()) {
      if (request_or.status().code() == StatusCode::kNotFound) continue;
      std::printf("%s\n",
                  serve::FormatErrorResponse(request_or.status()).c_str());
      std::fflush(stdout);
      continue;
    }
    const serve::Request& request = request_or.value();

    // Each request gets its own deadline window.
    CancellationToken token;
    const CancellationToken* cancel = nullptr;
    if (deadline_ms > 0) {
      token.SetDeadlineAfterMillis(deadline_ms);
      cancel = &token;
    }

    switch (request.type) {
      case serve::RequestType::kPair: {
        auto answer = service->LookupPair(request.names[0], cancel);
        if (answer.ok()) {
          std::printf("OK PAIR %s\t%s\t%.6f\n",
                      answer->source_name.c_str(),
                      answer->target_name.c_str(), answer->score);
        } else if (answer.status().code() == StatusCode::kNotFound) {
          std::printf("NONE PAIR %s\n", request.names[0].c_str());
        } else {
          std::printf("%s\n",
                      serve::FormatErrorResponse(answer.status()).c_str());
        }
        break;
      }
      case serve::RequestType::kTopK: {
        auto topk = service->TopK(request.names[0], request.k, cancel);
        if (topk.ok()) {
          PrintTopK(topk.value());
        } else {
          std::printf("%s\n",
                      serve::FormatErrorResponse(topk.status()).c_str());
        }
        break;
      }
      case serve::RequestType::kBatch: {
        auto results = service->BatchTopK(request.names, request.k, cancel);
        std::printf("OK BATCH %zu\n", results.size());
        for (const auto& r : results) {
          if (r.ok()) {
            PrintTopK(r.value());
          } else {
            std::printf("%s\n",
                        serve::FormatErrorResponse(r.status()).c_str());
          }
        }
        break;
      }
      case serve::RequestType::kReload: {
        Status st = service->Reload(request.path);
        if (st.ok()) {
          std::printf("OK RELOAD %s\n", request.path.c_str());
        } else {
          std::printf("%s\n", serve::FormatErrorResponse(st).c_str());
        }
        break;
      }
      case serve::RequestType::kStats:
        std::printf("OK STATS %s\n", service->Stats().ToJson().c_str());
        break;
      case serve::RequestType::kHealth:
        std::printf("OK HEALTH\n");
        break;
      case serve::RequestType::kReady:
        if (g_drain != 0) {
          std::printf("ERR Unavailable draining\n");
        } else {
          std::printf("OK READY tier=%s\n",
                      serve::ServiceTierName(service->tier()));
        }
        break;
      case serve::RequestType::kQuit:
        std::fflush(stdout);
        std::fprintf(stderr, "final stats: %s\n",
                     service->Stats().ToJson().c_str());
        return 0;
    }
    std::fflush(stdout);
  }

  // Drain: intake has stopped (signal or EOF). Destroying the service
  // flushes everything still queued on its pool before workers join, so
  // in-flight batch work completes; then the final stats go to stderr.
  if (g_drain != 0) {
    std::fprintf(stderr, "draining: intake stopped, flushing in-flight "
                         "requests\n");
  }
  std::fflush(stdout);
  std::fprintf(stderr, "final stats: %s\n",
               service->Stats().ToJson().c_str());
  service.reset();
  return 0;
}

}  // namespace
}  // namespace ceaff

int main(int argc, char** argv) {
  auto flags = ceaff::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "ceaff_serve: %s\n",
                 flags.status().ToString().c_str());
    return ceaff::Usage();
  }
  if (flags->GetBool("help", false)) return ceaff::Usage();
  const int rc = ceaff::Run(flags.value());
  for (const std::string& f : flags->UnreadFlags()) {
    std::fprintf(stderr, "ceaff_serve: warning: unknown flag --%s\n",
                 f.c_str());
  }
  return rc;
}
