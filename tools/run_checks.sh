#!/usr/bin/env bash
# Full verification sweep: plain Release build + test run, an ASan+UBSan
# build + test run (-DCEAFF_SANITIZE=ON), a TSan build of the concurrency
# and chaos tests (-DCEAFF_TSAN=ON), a crash-recovery soak (the fork-based
# kill-the-process drills with the per-site iteration count raised, once
# plain and once under ASan), a failpoint smoke (arm an injected error on
# every registered durability site and assert the binaries fail cleanly),
# a kernels smoke (the `bench`-labelled parity ctest plus a quick
# micro_kernels run asserting a clean parity bill), an end-to-end serving
# smoke (export an index from a tiny synthetic run, then drive ceaff_serve
# against it), an ANN smoke (the exported artifact must be format v3,
# ANN answers must overlap >= 95% with exhaustive top-10 over 20 queries,
# and STATS must show the ANN path engaged with zero fallbacks; the
# `ann`-labelled suites also rerun under ASan), an overload smoke (soak the service past capacity, assert
# it sheds, that the failpoint chaos phases stay clean, and that SIGTERM
# during the soak drains cleanly), and a sharded smoke (router + 3 shard
# workers, SIGKILL one mid-session, assert degraded answers, HEALTH
# degrade/recover, and healthy byte-identity with single-process mode), a
# replication drill (3 ranges x 2 replicas, SIGKILL one replica per range
# in turn: every answer must stay byte-identical to single-process serving
# and the degraded counter must stay 0), and a rolling-reload hammer
# (RELOAD mid-session on a replicated fleet: zero failed queries, also
# rerun under ASan), and a delta smoke (journal a patch batch, apply it
# beside a live server and assert RELOAD serves the patch, then SIGKILL
# mid-publish and assert the journal replay converges on the next apply);
# the `shard`-labelled drills — including the
# replication/rolling-reload/rollback suite — also rerun under ASan, the
# `delta`-labelled suites (WAL units, repair-vs-rebuild equivalence,
# kill-at-every-site crash drills) also rerun under ASan, and the
# RELOAD-vs-HEALTH-reap race test runs under TSan.
#
# Usage: tools/run_checks.sh [--skip-sanitize] [--skip-tsan] [--skip-smoke]
#                            [--skip-crash]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
skip_tsan=0
skip_smoke=0
skip_crash=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) skip_sanitize=1 ;;
    --skip-tsan) skip_tsan=1 ;;
    --skip-smoke) skip_smoke=1 ;;
    --skip-crash) skip_crash=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "==> Release build + tests"
run_suite "$repo/build"

if [[ "$skip_sanitize" == 0 ]]; then
  echo "==> ASan+UBSan build + tests (includes the serve hammer test)"
  run_suite "$repo/build-asan" -DCEAFF_SANITIZE=ON
  echo "==> ANN suite under ASan"
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" -L ann
  echo "==> Delta-ingestion suite under ASan"
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" -L delta
  echo "==> Autotuner suite under ASan"
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" -L tune
fi

if [[ "$skip_tsan" == 0 ]]; then
  echo "==> TSan build + concurrency & chaos tests"
  cmake -B "$repo/build-tsan" -S "$repo" -DCEAFF_TSAN=ON
  cmake --build "$repo/build-tsan" -j "$jobs" \
    --target common_test la_test serve_test serve_hammer_test \
      serve_chaos_test serve_shard_replication_test
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" \
    -R 'ThreadPool|ParallelFor|ThreadLocalRng|Logging|Serve|AlignmentService|AlignmentIndex|IndexMmap|ParseRequest|Admission|RetryPolicy|CircuitBreaker|Degradation|OverloadChaos|Kernel|ShardReplicationTest.WorkerDeathMidReload'
fi

if [[ "$skip_crash" == 0 ]]; then
  echo "==> Crash-recovery soak: kill-the-process drills, 50 rounds per site"
  CEAFF_CRASH_ITERS=50 ctest --test-dir "$repo/build" --output-on-failure \
    -j "$jobs" -L chaos
  if [[ "$skip_sanitize" == 0 ]]; then
    echo "==> Crash-recovery drill under ASan"
    ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" \
      -L chaos -R 'CrashRecoveryTest|IndexCrashTest'
    echo "==> Shard-kill drill under ASan"
    ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" \
      -L shard
  fi
fi

if [[ "$skip_smoke" == 0 ]]; then
  echo "==> Kernels smoke: parity checks + a quick tracked-benchmark run"
  ctest --test-dir "$repo/build" --output-on-failure -L bench
  kbench="$(mktemp -d)"
  trap 'rm -rf "$kbench"' EXIT
  # Full (tracked) shapes with --autotune so the rows line up with the
  # committed BENCH_kernels.json; the run itself exits non-zero on any
  # kernel-vs-naive divergence (the --smoke perf gate ran as part of
  # `-L bench` above). The JSON must also record a clean parity bill, at
  # least one kernel row, and at least one autotuned row.
  "$repo/build/bench/micro_kernels" --autotune \
    --out "$kbench/BENCH_kernels.json"
  grep -q '"parity_failures": 0' "$kbench/BENCH_kernels.json"
  grep -q '"kernel": "cosine_kernel"' "$kbench/BENCH_kernels.json"
  grep -q '_tuned"' "$kbench/BENCH_kernels.json"

  echo "==> Perf-regression gate: fresh run vs committed BENCH_kernels.json"
  # speedup_vs_naive is machine-relative, so the committed baseline still
  # gates a different box; the loose threshold tolerates benchmark jitter
  # while catching a kernel that fell off a cliff.
  python3 "$repo/tools/bench_diff.py" "$repo/BENCH_kernels.json" \
    "$kbench/BENCH_kernels.json" --threshold 0.5

  echo "==> Failpoint smoke: injected faults fail the real binaries cleanly"
  fpsmoke="$(mktemp -d)"
  trap 'rm -rf "$fpsmoke" "$kbench"' EXIT
  "$repo/build/tools/ceaff" generate --config DBP15K_FR_EN \
    --scale 0.02 --out "$fpsmoke/data"
  align_args=(align --data "$fpsmoke/data" --gcn-epochs 3 --gcn-dim 16
              --threads 2 --checkpoint_dir "$fpsmoke/ckpt" --resume
              --out "$fpsmoke/pred.tsv")
  # A malformed spec must abort loudly (exit 2), not silently test nothing.
  if CEAFF_FAILPOINTS='not-a-spec' "$repo/build/tools/ceaff" "${align_args[@]}" \
      2>/dev/null; then
    echo "malformed CEAFF_FAILPOINTS was not rejected" >&2; exit 1
  fi
  # An injected write error on every checkpoint durability step must fail
  # the run with a controlled error — no crash, no torn store.
  fp='checkpoint.before_tmp_write=error'
  fp="$fp;checkpoint.manifest.before_rename=error"
  if CEAFF_FAILPOINTS="$fp" "$repo/build/tools/ceaff" "${align_args[@]}" \
      > "$fpsmoke/fp_out.txt" 2> "$fpsmoke/fp_err.txt"; then
    echo "align succeeded despite injected checkpoint write errors" >&2
    exit 1
  fi
  # The injected crash action must die with the drill exit code (77) ...
  rc=0
  CEAFF_FAILPOINTS='checkpoint.before_rename=crash' \
    "$repo/build/tools/ceaff" "${align_args[@]}" >/dev/null 2>&1 || rc=$?
  if [[ "$rc" != 77 ]]; then
    echo "crash action exited $rc, expected 77" >&2; exit 1
  fi
  # ... and a plain rerun resumes from whatever the crash left behind.
  "$repo/build/tools/ceaff" "${align_args[@]}" > /dev/null

  echo "==> Serving smoke: generate -> align --export_index -> ceaff_serve"
  smoke="$(mktemp -d)"
  trap 'rm -rf "$smoke" "$fpsmoke" "$kbench"' EXIT
  "$repo/build/tools/ceaff" generate --config DBP15K_FR_EN \
    --scale 0.02 --out "$smoke/data"
  "$repo/build/tools/ceaff" align --data "$smoke/data" \
    --gcn-epochs 3 --gcn-dim 16 --threads 2 \
    --export_index "$smoke/run.idx" --out "$smoke/pred.tsv"
  # One known source name from the exported index drives a PAIR + TOPK.
  name="$(head -n 1 "$smoke/data/entities1.tsv" | cut -f2)"
  printf 'PAIR %s\nTOPK 5 %s\nSTATS\nQUIT\n' "$name" "$name" \
    | "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" --threads 2 \
    | tee "$smoke/replies.txt"
  grep -q 'OK TOPK' "$smoke/replies.txt"
  grep -q 'OK STATS' "$smoke/replies.txt"

  # An injected reload fault answers ERR but never takes the service down;
  # the scrubber thread runs alongside and reports its counters in STATS.
  printf 'RELOAD %s\nPAIR %s\nSTATS\nQUIT\n' "$smoke/run.idx" "$name" \
    | CEAFF_FAILPOINTS='serve.reload=error' \
      "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" \
        --threads 2 --scrub_ms 20 \
    | tee "$smoke/fp_replies.txt"
  grep -q 'ERR' "$smoke/fp_replies.txt"
  grep -q 'OK PAIR' "$smoke/fp_replies.txt"
  grep -q '"scrub"' "$smoke/fp_replies.txt"

  echo "==> ANN smoke: v3 artifact, recall@10 vs exhaustive, ANN serving path"
  # The serving smoke's corpus is too small for ANN to engage (the range
  # must exceed the shortlist), so export a full-scale synthetic run.
  # align --export_index trains ANN sections by default; the artifact must
  # come out as format v3 (version u32 at byte 8).
  "$repo/build/tools/ceaff" generate --config DBP15K_FR_EN \
    --scale 1.0 --out "$smoke/data_ann"
  "$repo/build/tools/ceaff" align --data "$smoke/data_ann" \
    --gcn-epochs 3 --gcn-dim 16 --threads 2 \
    --export_index "$smoke/ann.idx" --out "$smoke/pred_ann.tsv"
  ver="$(od -An -t u4 -j 8 -N 4 "$smoke/ann.idx" | tr -d ' ')"
  if [[ "$ver" != 3 ]]; then
    echo "exported index is v$ver, expected v3 (ANN sections)" >&2; exit 1
  fi
  # recall@10 over 20 known sources: tag every CAND line with its query
  # ordinal, then count how many (query, candidate) pairs the ANN answers
  # share with the exhaustive ones. 20 queries x k=10 -> >= 190 of 200.
  cand_set='/^OK TOPK/{q++} /^CAND/{print q "\t" $2}'
  head -n 20 "$smoke/data_ann/entities1.tsv" | cut -f2 > "$smoke/ann_names.txt"
  { while read -r n; do printf 'TOPK 10 %s\n' "$n"; done \
      < "$smoke/ann_names.txt"; printf 'STATS\nQUIT\n'; } > "$smoke/ann_req.txt"
  "$repo/build/tools/ceaff_serve" --index "$smoke/ann.idx" --threads 2 \
    < "$smoke/ann_req.txt" > "$smoke/ann_exact.txt"
  "$repo/build/tools/ceaff_serve" --index "$smoke/ann.idx" --threads 2 \
    --ann on --nprobe 8 --shortlist 128 \
    < "$smoke/ann_req.txt" > "$smoke/ann_approx.txt"
  hits="$(comm -12 \
    <(awk -F'\t' "$cand_set" "$smoke/ann_exact.txt" | sort) \
    <(awk -F'\t' "$cand_set" "$smoke/ann_approx.txt" | sort) | wc -l)"
  if [[ "$hits" -lt 190 ]]; then
    echo "ANN recall@10 too low: $hits/200 overlap with exhaustive" >&2
    exit 1
  fi
  # The ANN path actually answered (not the exhaustive fallback): STATS
  # must report a nonzero ann query count and zero fallbacks.
  grep -Eq '"ann":\{"queries":[1-9][0-9]*,"fallbacks":0,' "$smoke/ann_approx.txt"

  echo "==> Overload smoke: soak past capacity, assert the service sheds"
  (cd "$smoke" && \
    CEAFF_SOAK_ENTITIES=2000 CEAFF_SOAK_CAL_QUERIES=100 \
    CEAFF_SOAK_PHASE_MS=500 CEAFF_SOAK_MULTIPLIERS=1,4 \
    "$repo/build/bench/overload_soak" > soak.out)
  # The 4x phase must have shed at least one request (goodput over queueing).
  grep -Eq '"shed": *[1-9]' "$smoke/BENCH_overload.json"
  grep -Eq '"other_errors": *0' "$smoke/BENCH_overload.json"
  # The failpoint chaos phases ran, injected faults, and saw nothing else:
  # the scan-error phase must record injected errors and every chaos phase
  # must record zero unexpected ones.
  grep -Eq '"name": "scan_error_1in20".*"injected_errors": [1-9]' \
    "$smoke/BENCH_overload.json"
  if grep -Eq '"unexpected_errors": [1-9]' "$smoke/BENCH_overload.json"; then
    echo "chaos phase saw unexpected (non-injected) errors" >&2; exit 1
  fi

  echo "==> Sharded smoke: router + 3 shards, SIGKILL one, degrade + recover"
  shard_fifo="$smoke/shard_req.fifo"
  mkfifo "$shard_fifo"
  "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" --shards 3 \
    < "$shard_fifo" > "$smoke/shard_out.txt" 2> "$smoke/shard_err.txt" &
  shard_pid=$!
  exec 9> "$shard_fifo"
  # Healthy baseline TOPK, then wait for the reply before pulling a shard.
  printf 'TOPK 5 %s\n' "$name" >&9
  for _ in $(seq 100); do
    grep -q 'OK TOPK' "$smoke/shard_out.txt" 2>/dev/null && break
    sleep 0.2
  done
  grep -q 'OK TOPK 5$' "$smoke/shard_out.txt"
  # SIGKILL shard 1 (pid from the router's startup log), mid-session.
  victim="$(grep -oE 'shard 1 pid [0-9]+' "$smoke/shard_err.txt" \
    | grep -oE '[0-9]+$')"
  kill -9 "$victim"
  # Degraded TOPK from the survivors, HEALTH observes the death, the next
  # HEALTH reports the breaker-gated respawn, and the final TOPK is back
  # to full fidelity.
  printf 'TOPK 5 %s\nHEALTH\nHEALTH\nTOPK 5 %s\nQUIT\n' "$name" "$name" >&9
  exec 9>&-
  wait "$shard_pid"  # set -e: a router crash fails the sweep here
  grep -q 'OK TOPK 5 degraded=partial' "$smoke/shard_out.txt"
  grep -q 'OK HEALTH shards=2/3 degraded' "$smoke/shard_out.txt"
  grep -q 'OK HEALTH shards=3/3' "$smoke/shard_out.txt"
  # Healthy sharded replies are byte-identical to single-process serving:
  # first and last TOPK blocks (reply line + 5 candidates) must equal the
  # single-process answer for the same request.
  printf 'TOPK 5 %s\nQUIT\n' "$name" \
    | "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" --threads 2 \
    > "$smoke/single_out.txt"
  head -n 6 "$smoke/shard_out.txt" | diff - <(head -n 6 "$smoke/single_out.txt")
  tail -n 6 "$smoke/shard_out.txt" | diff - <(head -n 6 "$smoke/single_out.txt")

  echo "==> Replication drill: 3 ranges x 2 replicas, SIGKILL one per range"
  repl_fifo="$smoke/repl_req.fifo"
  mkfifo "$repl_fifo"
  "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" \
    --shards 3 --replicas 2 \
    < "$repl_fifo" > "$smoke/repl_out.txt" 2> "$smoke/repl_err.txt" &
  repl_pid=$!
  exec 8> "$repl_fifo"
  repl_topk=0
  wait_repl_topk() {
    repl_topk=$((repl_topk + 1))
    for _ in $(seq 100); do
      if [[ "$(grep -c '^OK TOPK' "$smoke/repl_out.txt" 2>/dev/null)" \
            -ge "$repl_topk" ]]; then return 0; fi
      sleep 0.2
    done
    echo "timed out waiting for replicated TOPK reply $repl_topk" >&2
    return 1
  }
  printf 'TOPK 5 %s\n' "$name" >&8; wait_repl_topk
  # Kill replica 0 of each range in turn. Every answer while a worker is
  # down must come from the failover path: full fidelity, never degraded.
  for range in 0 1 2; do
    victim="$(grep -oE "shard $((range * 2)) pid [0-9]+" \
      "$smoke/repl_err.txt" | grep -oE '[0-9]+$')"
    kill -9 "$victim"
    printf 'TOPK 5 %s\n' "$name" >&8; wait_repl_topk
    # Reap + breaker respawn before the next round's kill.
    printf 'HEALTH\n' >&8
  done
  printf 'STATS\nQUIT\n' >&8
  exec 8>&-
  wait "$repl_pid"  # set -e: a router crash fails the sweep here
  if grep -q 'degraded=partial' "$smoke/repl_out.txt"; then
    echo "replicated fleet served a degraded answer" >&2; exit 1
  fi
  grep -q '"degraded": 0' "$smoke/repl_out.txt"
  # Every TOPK block is byte-identical to single-process serving.
  grep -v '^OK HEALTH' "$smoke/repl_out.txt" > "$smoke/repl_topk.txt"
  for i in 0 1 2 3; do
    sed -n "$((i * 6 + 1)),$((i * 6 + 6))p" "$smoke/repl_topk.txt" \
      | diff - <(head -n 6 "$smoke/single_out.txt")
  done

  echo "==> Rolling-reload hammer: RELOAD under load, zero failed queries"
  { for _ in $(seq 10); do printf 'TOPK 5 %s\n' "$name"; done
    printf 'RELOAD %s\n' "$smoke/run.idx"
    for _ in $(seq 10); do printf 'TOPK 5 %s\n' "$name"; done
    printf 'STATS\nQUIT\n'; } > "$smoke/roll_req.txt"
  run_roll_hammer() {
    local serve_bin="$1" out="$2"
    "$serve_bin" --index "$smoke/run.idx" --shards 2 --replicas 2 \
      < "$smoke/roll_req.txt" > "$out" 2> /dev/null
    if grep -q '^ERR' "$out"; then
      echo "rolling reload failed a query" >&2; exit 1
    fi
    grep -q 'OK RELOAD' "$out"
    [[ "$(grep -c '^OK TOPK 5$' "$out")" -eq 20 ]]
    grep -q '"reloads": 1' "$out"
  }
  run_roll_hammer "$repo/build/tools/ceaff_serve" "$smoke/roll_out.txt"
  if [[ "$skip_sanitize" == 0 ]]; then
    echo "==> Rolling-reload hammer under ASan"
    run_roll_hammer "$repo/build-asan/tools/ceaff_serve" \
      "$smoke/roll_asan_out.txt"
  fi

  echo "==> Delta smoke: journal -> apply -> RELOAD, kill mid-apply -> replay"
  # The delta workflow needs the generational (directory) index form: the
  # pre-created directory routes --export_index through the keep-N store
  # that `delta apply` republishes into and RELOAD hot-swaps from.
  delta="$smoke/delta"
  mkdir -p "$delta/index"
  "$repo/build/tools/ceaff" align --data "$smoke/data" \
    --gcn-epochs 3 --gcn-dim 16 --threads 2 \
    --export_delta_state "$delta/state" --export_index "$delta/index" \
    --out "$delta/pred.tsv"
  # Patch: rename a known matched source entity (the PAIR probe — its new
  # name only answers once the publish is served) plus a brand-new served
  # entity for add/serve coverage.
  uri="$(head -n 1 "$smoke/data/entities1.tsv" | cut -f1)"
  printf 'rename_entity\t1\t%s\tdelta renamed smoke entity\n' "$uri" \
    > "$delta/patch.tsv"
  printf 'add_entity\t1\thttp://smoke/brand_new\tbrand new smoke entity\n' \
    >> "$delta/patch.tsv"
  printf 'serve_entity\t1\thttp://smoke/brand_new\n' >> "$delta/patch.tsv"
  "$repo/build/tools/ceaff" delta append \
    --journal "$delta/wal" --patch "$delta/patch.tsv"
  # Serve the pre-apply generation: the renamed name must NOT answer yet.
  delta_fifo="$delta/req.fifo"
  mkfifo "$delta_fifo"
  "$repo/build/tools/ceaff_serve" --index "$delta/index" --threads 2 \
    < "$delta_fifo" > "$delta/serve_out.txt" 2> /dev/null &
  delta_pid=$!
  exec 7> "$delta_fifo"
  printf 'PAIR delta renamed smoke entity\n' >&7
  for _ in $(seq 100); do
    grep -q '^NONE PAIR' "$delta/serve_out.txt" 2>/dev/null && break
    sleep 0.2
  done
  grep -q '^NONE PAIR' "$delta/serve_out.txt"
  # Apply the journaled batch while the service keeps running, then RELOAD
  # the same directory: the renamed entity must now answer its PAIR.
  "$repo/build/tools/ceaff" delta apply --journal "$delta/wal" \
    --state "$delta/state" --index "$delta/index" | tee "$delta/apply.txt"
  grep -q 'watermark 0 -> 3' "$delta/apply.txt"
  printf 'RELOAD %s\nPAIR delta renamed smoke entity\nQUIT\n' \
    "$delta/index" >&7
  exec 7>&-
  wait "$delta_pid"  # set -e: a serve crash fails the sweep here
  grep -q 'OK RELOAD' "$delta/serve_out.txt"
  grep -q 'OK PAIR' "$delta/serve_out.txt"
  # Kill mid-apply at the state-publish site: the journal and the last
  # good generations must survive, and a plain replay must converge.
  printf 'add_entity\t1\thttp://smoke/later\tlater smoke entity\n' \
    > "$delta/patch2.tsv"
  printf 'serve_entity\t1\thttp://smoke/later\n' >> "$delta/patch2.tsv"
  "$repo/build/tools/ceaff" delta append \
    --journal "$delta/wal" --patch "$delta/patch2.tsv"
  rc=0
  CEAFF_FAILPOINTS='delta.publish.state=crash' \
    "$repo/build/tools/ceaff" delta apply --journal "$delta/wal" \
      --state "$delta/state" --index "$delta/index" >/dev/null 2>&1 || rc=$?
  if [[ "$rc" != 77 ]]; then
    echo "delta apply crash action exited $rc, expected 77" >&2; exit 1
  fi
  # Old-or-new: the store still serves the pre-crash state (watermark 3,
  # pending records), never a torn one, and a crash never quarantines.
  "$repo/build/tools/ceaff" delta status \
    --journal "$delta/wal" --state "$delta/state" | tee "$delta/status.txt"
  grep -q 'watermark 3' "$delta/status.txt"
  grep -q '2 pending' "$delta/status.txt"
  # The replay folds the survivors in and drains the journal.
  "$repo/build/tools/ceaff" delta apply --journal "$delta/wal" \
    --state "$delta/state" --index "$delta/index" | tee "$delta/replay.txt"
  grep -q 'watermark 3 -> 5' "$delta/replay.txt"
  "$repo/build/tools/ceaff" delta status \
    --journal "$delta/wal" --state "$delta/state" | tee "$delta/status2.txt"
  grep -q 'watermark 5' "$delta/status2.txt"
  grep -q '0 pending' "$delta/status2.txt"

  echo "==> SIGTERM drill: drain mid-stream, exit 0, stats on stderr"
  "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" --threads 2 \
    < <(printf 'READY\nHEALTH\n'; sleep 5) \
    > "$smoke/drain_out.txt" 2> "$smoke/drain_err.txt" &
  serve_pid=$!
  sleep 1
  kill -TERM "$serve_pid"
  wait "$serve_pid"  # set -e: a non-zero drain exit fails the sweep here
  grep -q 'OK READY tier=' "$smoke/drain_out.txt"
  grep -q 'draining: intake stopped' "$smoke/drain_err.txt"
  grep -q 'final stats:' "$smoke/drain_err.txt"
fi

echo "==> all checks passed"
