#!/usr/bin/env bash
# Full verification sweep: plain Release build + test run, then an
# ASan+UBSan build + test run (-DCEAFF_SANITIZE=ON) in a separate tree.
#
# Usage: tools/run_checks.sh [--skip-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
[[ "${1:-}" == "--skip-sanitize" ]] && skip_sanitize=1

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "==> Release build + tests"
run_suite "$repo/build"

if [[ "$skip_sanitize" == 0 ]]; then
  echo "==> ASan+UBSan build + tests"
  run_suite "$repo/build-asan" -DCEAFF_SANITIZE=ON
fi

echo "==> all checks passed"
