#!/usr/bin/env bash
# Full verification sweep: plain Release build + test run, an ASan+UBSan
# build + test run (-DCEAFF_SANITIZE=ON), a TSan build of the concurrency
# and chaos tests (-DCEAFF_TSAN=ON), an end-to-end serving smoke (export
# an index from a tiny synthetic run, then drive ceaff_serve against it),
# and an overload smoke (soak the service past capacity, assert it sheds
# and that SIGTERM during the soak drains cleanly).
#
# Usage: tools/run_checks.sh [--skip-sanitize] [--skip-tsan] [--skip-smoke]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
skip_tsan=0
skip_smoke=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) skip_sanitize=1 ;;
    --skip-tsan) skip_tsan=1 ;;
    --skip-smoke) skip_smoke=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "==> Release build + tests"
run_suite "$repo/build"

if [[ "$skip_sanitize" == 0 ]]; then
  echo "==> ASan+UBSan build + tests (includes the serve hammer test)"
  run_suite "$repo/build-asan" -DCEAFF_SANITIZE=ON
fi

if [[ "$skip_tsan" == 0 ]]; then
  echo "==> TSan build + concurrency & chaos tests"
  cmake -B "$repo/build-tsan" -S "$repo" -DCEAFF_TSAN=ON
  cmake --build "$repo/build-tsan" -j "$jobs" \
    --target common_test serve_test serve_hammer_test serve_chaos_test
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" \
    -R 'ThreadPool|ParallelFor|ThreadLocalRng|Logging|Serve|AlignmentService|AlignmentIndex|ParseRequest|Admission|RetryPolicy|CircuitBreaker|Degradation|OverloadChaos'
fi

if [[ "$skip_smoke" == 0 ]]; then
  echo "==> Serving smoke: generate -> align --export_index -> ceaff_serve"
  smoke="$(mktemp -d)"
  trap 'rm -rf "$smoke"' EXIT
  "$repo/build/tools/ceaff" generate --config DBP15K_FR_EN \
    --scale 0.02 --out "$smoke/data"
  "$repo/build/tools/ceaff" align --data "$smoke/data" \
    --gcn-epochs 3 --gcn-dim 16 --threads 2 \
    --export_index "$smoke/run.idx" --out "$smoke/pred.tsv"
  # One known source name from the exported index drives a PAIR + TOPK.
  name="$(head -n 1 "$smoke/data/entities1.tsv" | cut -f2)"
  printf 'PAIR %s\nTOPK 5 %s\nSTATS\nQUIT\n' "$name" "$name" \
    | "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" --threads 2 \
    | tee "$smoke/replies.txt"
  grep -q 'OK TOPK' "$smoke/replies.txt"
  grep -q 'OK STATS' "$smoke/replies.txt"

  echo "==> Overload smoke: soak past capacity, assert the service sheds"
  (cd "$smoke" && \
    CEAFF_SOAK_ENTITIES=2000 CEAFF_SOAK_CAL_QUERIES=100 \
    CEAFF_SOAK_PHASE_MS=500 CEAFF_SOAK_MULTIPLIERS=1,4 \
    "$repo/build/bench/overload_soak" > soak.out)
  # The 4x phase must have shed at least one request (goodput over queueing).
  grep -Eq '"shed": *[1-9]' "$smoke/BENCH_overload.json"
  grep -Eq '"other_errors": *0' "$smoke/BENCH_overload.json"

  echo "==> SIGTERM drill: drain mid-stream, exit 0, stats on stderr"
  "$repo/build/tools/ceaff_serve" --index "$smoke/run.idx" --threads 2 \
    < <(printf 'READY\nHEALTH\n'; sleep 5) \
    > "$smoke/drain_out.txt" 2> "$smoke/drain_err.txt" &
  serve_pid=$!
  sleep 1
  kill -TERM "$serve_pid"
  wait "$serve_pid"  # set -e: a non-zero drain exit fails the sweep here
  grep -q 'OK READY tier=' "$smoke/drain_out.txt"
  grep -q 'draining: intake stopped' "$smoke/drain_err.txt"
  grep -q 'final stats:' "$smoke/drain_err.txt"
fi

echo "==> all checks passed"
