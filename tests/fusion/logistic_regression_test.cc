#include "ceaff/fusion/logistic_regression.h"

#include <gtest/gtest.h>

#include "ceaff/common/random.h"

namespace ceaff::fusion {
namespace {

/// Builds a diagonal-dominant similarity matrix: gold pairs (i, i) score
/// high, everything else low, with optional per-cell noise.
la::Matrix DiagonalFeature(size_t n, float diag, float off, Rng* rng,
                           float noise = 0.0f) {
  la::Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float base = i == j ? diag : off;
      m.at(i, j) = base + noise * (rng->NextFloat() - 0.5f);
    }
  }
  return m;
}

TEST(LrFusionTest, LearnsToPreferInformativeFeature) {
  Rng rng(3);
  const size_t n = 40;
  la::Matrix good = DiagonalFeature(n, 0.9f, 0.1f, &rng, 0.05f);
  // Pure noise feature: no correlation with the gold diagonal.
  la::Matrix noise(n, n);
  for (size_t i = 0; i < noise.size(); ++i) noise.data()[i] = rng.NextFloat();

  std::vector<kg::AlignmentPair> seeds;
  for (uint32_t i = 0; i < n; ++i) seeds.push_back({i, i});

  LogisticRegressionFusion lr;
  ASSERT_TRUE(lr.Train({&good, &noise}, seeds).ok());
  std::vector<double> w = lr.FusionWeights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_GT(w[0], 0.8);
  EXPECT_LT(w[1], 0.2);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-9);
}

TEST(LrFusionTest, FuseAppliesLearnedWeights) {
  Rng rng(5);
  const size_t n = 20;
  la::Matrix good = DiagonalFeature(n, 0.9f, 0.1f, &rng);
  la::Matrix bad = DiagonalFeature(n, 0.1f, 0.5f, &rng);
  std::vector<kg::AlignmentPair> seeds;
  for (uint32_t i = 0; i < n; ++i) seeds.push_back({i, i});
  LogisticRegressionFusion lr;
  ASSERT_TRUE(lr.Train({&good, &bad}, seeds).ok());
  la::Matrix fused = lr.Fuse({&good, &bad}).value();
  // Fused matrix must remain diagonal-dominant if the good feature won.
  EXPECT_GT(fused.at(3, 3), fused.at(3, 7));
}

TEST(LrFusionTest, ErrorsOnBadInput) {
  la::Matrix a(2, 2);
  std::vector<kg::AlignmentPair> seeds{{0, 0}};
  LogisticRegressionFusion lr;
  EXPECT_TRUE(lr.Train({}, seeds).IsInvalidArgument());
  EXPECT_TRUE(lr.Train({&a}, {}).IsInvalidArgument());
  la::Matrix b(3, 2);
  EXPECT_TRUE(lr.Train({&a, &b}, seeds).IsInvalidArgument());
}

TEST(LrFusionTest, FuseBeforeTrainOrArityMismatchFails) {
  la::Matrix a(2, 2);
  LogisticRegressionFusion lr;
  EXPECT_TRUE(lr.Fuse({&a}).status().code() == ceaff::StatusCode::kFailedPrecondition);
  std::vector<kg::AlignmentPair> seeds{{0, 0}, {1, 1}};
  ASSERT_TRUE(lr.Train({&a}, seeds).ok());
  la::Matrix b(2, 2);
  EXPECT_TRUE(lr.Fuse({&a, &b}).status().code() == ceaff::StatusCode::kFailedPrecondition);
}

TEST(LrFusionTest, DegenerateFitFallsBackToUniform) {
  // All-constant features provide no signal; weights must still be a valid
  // distribution rather than zero.
  la::Matrix a(4, 4), b(4, 4);
  a.Fill(0.5f);
  b.Fill(0.5f);
  std::vector<kg::AlignmentPair> seeds{{0, 0}, {1, 1}};
  LrOptions opt;
  opt.epochs = 5;
  LogisticRegressionFusion lr(opt);
  ASSERT_TRUE(lr.Train({&a, &b}, seeds).ok());
  std::vector<double> w = lr.FusionWeights();
  double sum = 0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LrFusionTest, DeterministicGivenSeed) {
  Rng rng(7);
  la::Matrix good = DiagonalFeature(10, 0.8f, 0.2f, &rng);
  la::Matrix other = DiagonalFeature(10, 0.5f, 0.4f, &rng);
  std::vector<kg::AlignmentPair> seeds;
  for (uint32_t i = 0; i < 10; ++i) seeds.push_back({i, i});
  LogisticRegressionFusion a, b;
  ASSERT_TRUE(a.Train({&good, &other}, seeds).ok());
  ASSERT_TRUE(b.Train({&good, &other}, seeds).ok());
  EXPECT_EQ(a.coefficients(), b.coefficients());
  EXPECT_EQ(a.intercept(), b.intercept());
}

}  // namespace
}  // namespace ceaff::fusion
