#include "ceaff/fusion/adaptive_fusion.h"

#include <gtest/gtest.h>

#include "ceaff/common/random.h"
#include "ceaff/la/ops.h"

namespace ceaff::fusion {
namespace {

// The three feature matrices of the paper's Figure 3, reconstructed so the
// candidate sets match the figure exactly:
//   Ms candidates: (u2,v2,1.0), (u3,v3,0.4)
//   Mn candidates: (u1,v1,1.0), (u2,v2,1.0)
//   Ml candidates: (u1,v1,0.6), (u2,v3,0.6)
la::Matrix FigureMs() {
  return la::Matrix::FromRows(
      {{0.6f, 0.8f, 0.2f}, {0.2f, 1.0f, 0.3f}, {0.1f, 0.2f, 0.4f}});
}
la::Matrix FigureMn() {
  return la::Matrix::FromRows(
      {{1.0f, 0.5f, 0.1f}, {0.2f, 1.0f, 0.5f}, {0.2f, 0.2f, 0.3f}});
}
la::Matrix FigureMl() {
  return la::Matrix::FromRows(
      {{0.6f, 0.5f, 0.4f}, {0.1f, 0.3f, 0.6f}, {0.4f, 0.4f, 0.3f}});
}

TEST(ConfidentCorrespondenceTest, FindsRowAndColumnMaxima) {
  std::vector<Correspondence> c = FindConfidentCorrespondences(FigureMs());
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].source, 1u);
  EXPECT_EQ(c[0].target, 1u);
  EXPECT_FLOAT_EQ(c[0].score, 1.0f);
  EXPECT_EQ(c[1].source, 2u);
  EXPECT_EQ(c[1].target, 2u);
  EXPECT_FLOAT_EQ(c[1].score, 0.4f);
}

TEST(ConfidentCorrespondenceTest, EmptyAndDegenerateMatrices) {
  EXPECT_TRUE(FindConfidentCorrespondences(la::Matrix()).empty());
  // A constant matrix: ties resolve to the first cell only.
  la::Matrix flat(2, 2);
  flat.Fill(0.5f);
  std::vector<Correspondence> c = FindConfidentCorrespondences(flat);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].source, 0u);
  EXPECT_EQ(c[0].target, 0u);
}

TEST(ConfidentCorrespondenceTest, SingleRow) {
  la::Matrix m = la::Matrix::FromRows({{0.2f, 0.7f, 0.3f}});
  std::vector<Correspondence> c = FindConfidentCorrespondences(m);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].target, 1u);
}

TEST(AdaptiveWeightsTest, ReproducesFigure3) {
  la::Matrix ms = FigureMs(), mn = FigureMn(), ml = FigureMl();
  FusionOptions opt;  // θ1 = 0.98, θ2 = 0.1
  auto report_or = ComputeAdaptiveWeights({&ms, &mn, &ml}, opt);
  ASSERT_TRUE(report_or.ok());
  const FeatureWeightReport& rep = report_or.value();

  // u2's candidates conflict across features ((u2,v2) vs (u2,v3)) and are
  // all pruned; the retained sets are exactly the figure's.
  ASSERT_EQ(rep.retained[0].size(), 1u);  // Ms keeps (u3, v3)
  EXPECT_EQ(rep.retained[0][0].source, 2u);
  ASSERT_EQ(rep.retained[1].size(), 1u);  // Mn keeps (u1, v1)
  EXPECT_EQ(rep.retained[1][0].source, 0u);
  ASSERT_EQ(rep.retained[2].size(), 1u);  // Ml keeps (u1, v1)
  EXPECT_EQ(rep.retained[2][0].source, 0u);

  // Weighting scores: Ms = 1 (unique candidate), Mn = θ2 (score 1.0 > θ1),
  // Ml = 1/2 (shared by two features).
  EXPECT_NEAR(rep.scores[0], 1.0, 1e-9);
  EXPECT_NEAR(rep.scores[1], 0.1, 1e-9);
  EXPECT_NEAR(rep.scores[2], 0.5, 1e-9);

  const double total = 1.0 + 0.1 + 0.5;
  EXPECT_NEAR(rep.weights[0], 1.0 / total, 1e-9);
  EXPECT_NEAR(rep.weights[1], 0.1 / total, 1e-9);
  EXPECT_NEAR(rep.weights[2], 0.5 / total, 1e-9);
}

TEST(AdaptiveWeightsTest, WithoutClampHighScoreKeepsFullWeight) {
  la::Matrix ms = FigureMs(), mn = FigureMn(), ml = FigureMl();
  FusionOptions opt;
  opt.use_score_clamp = false;  // the Table V "w/o θ1, θ2" row
  auto rep = ComputeAdaptiveWeights({&ms, &mn, &ml}, opt).value();
  EXPECT_NEAR(rep.scores[1], 0.5, 1e-9);  // 1/2, no θ2 clamp
  EXPECT_NEAR(rep.weights[0], 1.0 / 2.0, 1e-9);
}

TEST(AdaptiveWeightsTest, CandidateSharedByAllFeaturesIsDropped) {
  // Identical matrices: the single candidate is shared by every feature
  // and filtered, so weights fall back to uniform.
  la::Matrix m = la::Matrix::FromRows({{0.9f, 0.1f}, {0.1f, 0.8f}});
  la::Matrix m2 = m, m3 = m;
  auto rep = ComputeAdaptiveWeights({&m, &m2, &m3}).value();
  for (const auto& retained : rep.retained) EXPECT_TRUE(retained.empty());
  for (double w : rep.weights) EXPECT_NEAR(w, 1.0 / 3.0, 1e-9);
}

TEST(AdaptiveWeightsTest, SingleFeatureKeepsItsCandidates) {
  la::Matrix m = la::Matrix::FromRows({{0.9f, 0.1f}, {0.1f, 0.8f}});
  auto rep = ComputeAdaptiveWeights({&m}).value();
  // k = 1: the shared-by-all rule must not fire.
  EXPECT_EQ(rep.retained[0].size(), 2u);
  EXPECT_NEAR(rep.weights[0], 1.0, 1e-9);
}

TEST(AdaptiveWeightsTest, RejectsEmptyAndMismatchedInputs) {
  EXPECT_TRUE(ComputeAdaptiveWeights({}).status().IsInvalidArgument());
  la::Matrix a(2, 2), b(3, 2);
  EXPECT_TRUE(
      ComputeAdaptiveWeights({&a, &b}).status().IsInvalidArgument());
}

TEST(AdaptiveFuseTest, FusedIsWeightedSum) {
  la::Matrix ms = FigureMs(), mn = FigureMn(), ml = FigureMl();
  FeatureWeightReport rep;
  la::Matrix fused = AdaptiveFuse({&ms, &mn, &ml}, {}, &rep).value();
  la::Matrix expected = la::WeightedSum({&ms, &mn, &ml}, rep.weights);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.data()[i], expected.data()[i], 1e-6);
  }
}

TEST(FixedFuseTest, EqualWeights) {
  la::Matrix a = la::Matrix::FromRows({{0.0f, 1.0f}});
  la::Matrix b = la::Matrix::FromRows({{1.0f, 0.0f}});
  la::Matrix f = FixedFuse({&a, &b}).value();
  EXPECT_NEAR(f.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(f.at(0, 1), 0.5f, 1e-6);
  EXPECT_TRUE(FixedFuse({}).status().IsInvalidArgument());
}

TEST(TwoStageFuseTest, RunsBothStages) {
  la::Matrix ms = FigureMs(), mn = FigureMn(), ml = FigureMl();
  auto result = TwoStageFuse(ms, mn, ml).value();
  ASSERT_EQ(result.textual_weights.size(), 2u);
  ASSERT_EQ(result.final_weights.size(), 2u);
  EXPECT_NEAR(result.textual_weights[0] + result.textual_weights[1], 1.0,
              1e-9);
  EXPECT_NEAR(result.final_weights[0] + result.final_weights[1], 1.0, 1e-9);
  EXPECT_TRUE(result.fused.SameShape(ms));
  EXPECT_TRUE(result.textual.SameShape(ms));
}

// Property: adaptive weights always form a distribution, and fusing
// identical matrices returns the matrix itself.
class FusionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusionPropertyTest, WeightsFormDistribution) {
  Rng rng(GetParam());
  size_t n1 = 2 + rng.NextBounded(8);
  size_t n2 = 2 + rng.NextBounded(8);
  size_t k = 2 + rng.NextBounded(3);
  std::vector<la::Matrix> mats;
  std::vector<const la::Matrix*> ptrs;
  for (size_t i = 0; i < k; ++i) {
    la::Matrix m(n1, n2);
    for (size_t j = 0; j < m.size(); ++j) m.data()[j] = rng.NextFloat();
    mats.push_back(std::move(m));
  }
  for (const la::Matrix& m : mats) ptrs.push_back(&m);
  auto rep = ComputeAdaptiveWeights(ptrs).value();
  double sum = 0.0;
  for (double w : rep.weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0 + 1e-9);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(FusionPropertyTest, FusingIdenticalMatricesIsIdentity) {
  Rng rng(GetParam() ^ 0xf00d);
  la::Matrix m(4, 5);
  for (size_t j = 0; j < m.size(); ++j) m.data()[j] = rng.NextFloat();
  la::Matrix m2 = m;
  la::Matrix fused = AdaptiveFuse({&m, &m2}).value();
  for (size_t j = 0; j < m.size(); ++j) {
    EXPECT_NEAR(fused.data()[j], m.data()[j], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace ceaff::fusion
