#include "ceaff/kg/io.h"

#include <gtest/gtest.h>

#include "ceaff/common/logging.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ceaff::kg {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ceaff_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TriplesRoundTrip) {
  KnowledgeGraph g;
  g.AddTriple("e/a", "r/p", "e/b");
  g.AddTriple("e/b", "r/q", "e/c");
  ASSERT_TRUE(SaveTriplesTsv(g, Path("t.tsv")).ok());

  KnowledgeGraph loaded;
  ASSERT_TRUE(LoadTriplesTsv(Path("t.tsv"), &loaded).ok());
  EXPECT_EQ(loaded.num_entities(), 3u);
  EXPECT_EQ(loaded.num_relations(), 2u);
  EXPECT_EQ(loaded.num_triples(), 2u);
  EXPECT_TRUE(loaded.FindEntity("e/c").ok());
}

TEST_F(IoTest, LoadSkipsCommentsAndBlankLines) {
  WriteFile("t.tsv", "# header\n\na\tr\tb\n   \na\tr\tc\n");
  KnowledgeGraph g;
  ASSERT_TRUE(LoadTriplesTsv(Path("t.tsv"), &g).ok());
  EXPECT_EQ(g.num_triples(), 2u);
}

TEST_F(IoTest, LoadRejectsMalformedLine) {
  WriteFile("bad.tsv", "a\tb\n");
  KnowledgeGraph g;
  Status s = LoadTriplesTsv(Path("bad.tsv"), &g);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find(":1:"), std::string::npos);
}

TEST_F(IoTest, LoadMissingFileIsIOError) {
  KnowledgeGraph g;
  EXPECT_TRUE(LoadTriplesTsv(Path("nope.tsv"), &g).IsIOError());
}

TEST_F(IoTest, AlignmentRoundTrip) {
  KnowledgeGraph g1, g2;
  g1.AddTriple("a1", "r", "b1");
  g2.AddTriple("a2", "r", "b2");
  std::vector<AlignmentPair> pairs{
      {g1.FindEntity("a1").value(), g2.FindEntity("a2").value()},
      {g1.FindEntity("b1").value(), g2.FindEntity("b2").value()}};
  ASSERT_TRUE(SaveAlignmentTsv(pairs, g1, g2, Path("links.tsv")).ok());
  std::vector<AlignmentPair> loaded;
  ASSERT_TRUE(LoadAlignmentTsv(Path("links.tsv"), g1, g2, &loaded).ok());
  EXPECT_EQ(loaded, pairs);
}

TEST_F(IoTest, AlignmentUnknownUriIsNotFound) {
  WriteFile("links.tsv", "ghost\tb2\n");
  KnowledgeGraph g1, g2;
  g1.AddEntity("a1");
  g2.AddEntity("b2");
  std::vector<AlignmentPair> loaded;
  EXPECT_TRUE(
      LoadAlignmentTsv(Path("links.tsv"), g1, g2, &loaded).IsNotFound());
}

TEST_F(IoTest, KgPairRoundTrip) {
  KgPair pair;
  pair.name = "toy";
  pair.kg1.AddTriple("u1", "r", "u2");
  pair.kg2.AddTriple("v1", "r", "v2");
  pair.seed_alignment.push_back({0, 0});
  pair.test_alignment.push_back({1, 1});
  ASSERT_TRUE(SaveKgPair(pair, Path("pair")).ok());

  KgPair loaded;
  ASSERT_TRUE(LoadKgPair(Path("pair"), &loaded).ok());
  EXPECT_EQ(loaded.kg1.num_triples(), 1u);
  EXPECT_EQ(loaded.kg2.num_triples(), 1u);
  EXPECT_EQ(loaded.seed_alignment, pair.seed_alignment);
  EXPECT_EQ(loaded.test_alignment, pair.test_alignment);
}


TEST_F(IoTest, EntitiesRoundTripPreservesNamesAndIsolatedEntities) {
  KnowledgeGraph g;
  g.AddEntity("e/a", "Alpha Prime");
  g.AddEntity("e/b", "Beta");
  g.AddEntity("e/isolated", "Lonely One");
  ASSERT_TRUE(SaveEntitiesTsv(g, Path("e.tsv")).ok());
  KnowledgeGraph loaded;
  ASSERT_TRUE(LoadEntitiesTsv(Path("e.tsv"), &loaded).ok());
  ASSERT_EQ(loaded.num_entities(), 3u);
  EXPECT_EQ(loaded.entity_name(0), "Alpha Prime");
  EXPECT_EQ(loaded.entity_name(2), "Lonely One");
  EXPECT_EQ(loaded.FindEntity("e/isolated").value(), 2u);
}

TEST_F(IoTest, KgPairRoundTripKeepsIsolatedEntitiesAndNames) {
  KgPair pair;
  pair.name = "toy";
  pair.kg1.AddTriple("u1", "r", "u2");
  pair.kg1.AddEntity("u_isolated", "Island");
  pair.kg2.AddTriple("v1", "r", "v2");
  pair.kg2.AddEntity("v_isolated", "Insel");
  pair.seed_alignment.push_back({0, 0});
  pair.test_alignment.push_back(
      {pair.kg1.FindEntity("u_isolated").value(),
       pair.kg2.FindEntity("v_isolated").value()});
  ASSERT_TRUE(SaveKgPair(pair, Path("pair2")).ok());
  KgPair loaded;
  ASSERT_TRUE(LoadKgPair(Path("pair2"), &loaded).ok());
  EXPECT_EQ(loaded.kg1.num_entities(), 3u);
  EXPECT_EQ(loaded.kg1.entity_name(loaded.test_alignment[0].source),
            "Island");
  EXPECT_EQ(loaded.kg2.entity_name(loaded.test_alignment[0].target),
            "Insel");
}


TEST_F(IoTest, AttributeTriplesRoundTrip) {
  KnowledgeGraph g;
  g.AddEntity("e1");
  g.AddEntity("e2");
  AttributeId by = g.AddAttribute("birthYear");
  AttributeId mo = g.AddAttribute("motto");
  CEAFF_CHECK(g.AddAttributeTriple(0, by, "1969").ok());
  CEAFF_CHECK(g.AddAttributeTriple(1, mo, "semper fidelis").ok());
  ASSERT_TRUE(SaveAttributeTriplesTsv(g, Path("attrs.tsv")).ok());

  KnowledgeGraph loaded;
  loaded.AddEntity("e1");
  loaded.AddEntity("e2");
  ASSERT_TRUE(LoadAttributeTriplesTsv(Path("attrs.tsv"), &loaded).ok());
  ASSERT_EQ(loaded.num_attribute_triples(), 2u);
  EXPECT_EQ(loaded.attribute_triples()[0].value, "1969");
  EXPECT_EQ(loaded.attribute_triples()[1].value, "semper fidelis");
  EXPECT_TRUE(loaded.FindAttribute("motto").ok());
}

TEST_F(IoTest, AttributeTriplesUnknownEntityFails) {
  WriteFile("attrs.tsv", "ghost\tbirthYear\t1969\n");
  KnowledgeGraph g;
  g.AddEntity("e1");
  EXPECT_TRUE(
      LoadAttributeTriplesTsv(Path("attrs.tsv"), &g).IsNotFound());
}

TEST_F(IoTest, KgPairRoundTripCarriesAttributes) {
  KgPair pair;
  pair.kg1.AddTriple("u1", "r", "u2");
  pair.kg2.AddTriple("v1", "r", "v2");
  AttributeId a = pair.kg1.AddAttribute("pop");
  CEAFF_CHECK(pair.kg1.AddAttributeTriple(0, a, "42").ok());
  pair.seed_alignment.push_back({0, 0});
  pair.test_alignment.push_back({1, 1});
  ASSERT_TRUE(SaveKgPair(pair, Path("pair3")).ok());
  KgPair loaded;
  ASSERT_TRUE(LoadKgPair(Path("pair3"), &loaded).ok());
  ASSERT_EQ(loaded.kg1.num_attribute_triples(), 1u);
  EXPECT_EQ(loaded.kg1.attribute_triples()[0].value, "42");
  EXPECT_EQ(loaded.kg2.num_attribute_triples(), 0u);
}


TEST_F(IoTest, WritersSanitizeEmbeddedSeparators) {
  KnowledgeGraph g;
  g.AddEntity("e1", "name\twith\ttabs\nand newline");
  ASSERT_TRUE(SaveEntitiesTsv(g, Path("e.tsv")).ok());
  KnowledgeGraph loaded;
  ASSERT_TRUE(LoadEntitiesTsv(Path("e.tsv"), &loaded).ok());
  ASSERT_EQ(loaded.num_entities(), 1u);
  EXPECT_EQ(loaded.entity_name(0), "name with tabs and newline");

  AttributeId a = g.AddAttribute("motto");
  CEAFF_CHECK(g.AddAttributeTriple(0, a, "multi\tfield\tvalue").ok());
  ASSERT_TRUE(SaveAttributeTriplesTsv(g, Path("a.tsv")).ok());
  KnowledgeGraph loaded2;
  loaded2.AddEntity("e1");
  ASSERT_TRUE(LoadAttributeTriplesTsv(Path("a.tsv"), &loaded2).ok());
  ASSERT_EQ(loaded2.num_attribute_triples(), 1u);
  EXPECT_EQ(loaded2.attribute_triples()[0].value, "multi field value");
}

}  // namespace
}  // namespace ceaff::kg
