#include "ceaff/kg/knowledge_graph.h"

#include <gtest/gtest.h>

#include <set>

namespace ceaff::kg {
namespace {

TEST(KnowledgeGraphTest, AddEntityInternsByUri) {
  KnowledgeGraph g;
  EntityId a = g.AddEntity("http://x/Paris");
  EntityId b = g.AddEntity("http://x/Paris");
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_entities(), 1u);
  EntityId c = g.AddEntity("http://x/Lyon");
  EXPECT_NE(a, c);
  EXPECT_EQ(g.num_entities(), 2u);
}

TEST(KnowledgeGraphTest, DefaultNameIsNormalizedLocalName) {
  KnowledgeGraph g;
  EntityId a = g.AddEntity("http://dbpedia.org/resource/Los_Angeles");
  EXPECT_EQ(g.entity_name(a), "Los Angeles");
  EntityId b = g.AddEntity("NoSlashes_Here");
  EXPECT_EQ(g.entity_name(b), "NoSlashes Here");
}

TEST(KnowledgeGraphTest, ExplicitNameWinsOnFirstInsert) {
  KnowledgeGraph g;
  EntityId a = g.AddEntity("http://x/e1", "custom name");
  EXPECT_EQ(g.entity_name(a), "custom name");
  // Re-adding does not overwrite.
  g.AddEntity("http://x/e1", "other");
  EXPECT_EQ(g.entity_name(a), "custom name");
  g.SetEntityName(a, "third");
  EXPECT_EQ(g.entity_name(a), "third");
}

TEST(KnowledgeGraphTest, AddTripleByIdValidates) {
  KnowledgeGraph g;
  EntityId a = g.AddEntity("a");
  EntityId b = g.AddEntity("b");
  RelationId r = g.AddRelation("r");
  EXPECT_TRUE(g.AddTriple(a, r, b).ok());
  EXPECT_EQ(g.num_triples(), 1u);
  EXPECT_TRUE(g.AddTriple(a, r, 99).IsInvalidArgument());
  EXPECT_TRUE(g.AddTriple(99, r, b).IsInvalidArgument());
  EXPECT_TRUE(g.AddTriple(a, 99, b).IsInvalidArgument());
  EXPECT_EQ(g.num_triples(), 1u);
}

TEST(KnowledgeGraphTest, AddTripleByUriInterns) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddTriple("b", "r", "c");
  EXPECT_EQ(g.num_entities(), 3u);
  EXPECT_EQ(g.num_relations(), 1u);
  EXPECT_EQ(g.num_triples(), 2u);
}

TEST(KnowledgeGraphTest, FindEntityAndRelation) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  ASSERT_TRUE(g.FindEntity("a").ok());
  EXPECT_EQ(g.FindEntity("a").value(), 0u);
  EXPECT_TRUE(g.FindEntity("zz").status().IsNotFound());
  ASSERT_TRUE(g.FindRelation("r").ok());
  EXPECT_TRUE(g.FindRelation("qq").status().IsNotFound());
}

TEST(KnowledgeGraphTest, DegreesCountBothDirections) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddTriple("a", "r", "c");
  g.AddTriple("c", "r", "a");
  std::vector<uint32_t> deg = g.Degrees();
  EXPECT_EQ(deg[g.FindEntity("a").value()], 3u);
  EXPECT_EQ(deg[g.FindEntity("b").value()], 1u);
  EXPECT_EQ(deg[g.FindEntity("c").value()], 2u);
}

TEST(KnowledgeGraphTest, OutAdjacencyListsOutgoingEdges) {
  KnowledgeGraph g;
  g.AddTriple("a", "r1", "b");
  g.AddTriple("a", "r2", "c");
  auto adj = g.OutAdjacency();
  EntityId a = g.FindEntity("a").value();
  ASSERT_EQ(adj[a].size(), 2u);
  EXPECT_TRUE(adj[g.FindEntity("b").value()].empty());
}

TEST(SplitAlignmentTest, RespectsFractionAndPartitions) {
  std::vector<AlignmentPair> gold;
  for (uint32_t i = 0; i < 100; ++i) gold.push_back({i, i});
  std::vector<AlignmentPair> seed, test;
  ASSERT_TRUE(SplitAlignment(gold, 0.3, 99, &seed, &test).ok());
  EXPECT_EQ(seed.size(), 30u);
  EXPECT_EQ(test.size(), 70u);
  // Disjoint and jointly exhaustive.
  std::set<uint32_t> seen;
  for (const auto& p : seed) seen.insert(p.source);
  for (const auto& p : test) EXPECT_TRUE(seen.insert(p.source).second);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SplitAlignmentTest, DeterministicGivenSeed) {
  std::vector<AlignmentPair> gold;
  for (uint32_t i = 0; i < 50; ++i) gold.push_back({i, i});
  std::vector<AlignmentPair> s1, t1, s2, t2;
  ASSERT_TRUE(SplitAlignment(gold, 0.4, 7, &s1, &t1).ok());
  ASSERT_TRUE(SplitAlignment(gold, 0.4, 7, &s2, &t2).ok());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(t1, t2);
  std::vector<AlignmentPair> s3, t3;
  ASSERT_TRUE(SplitAlignment(gold, 0.4, 8, &s3, &t3).ok());
  EXPECT_NE(s1, s3);
}

TEST(SplitAlignmentTest, RejectsBadFraction) {
  std::vector<AlignmentPair> gold{{0, 0}};
  std::vector<AlignmentPair> s, t;
  EXPECT_TRUE(SplitAlignment(gold, -0.1, 1, &s, &t).IsInvalidArgument());
  EXPECT_TRUE(SplitAlignment(gold, 1.5, 1, &s, &t).IsInvalidArgument());
}

TEST(SplitAlignmentTest, ExtremeFractions) {
  std::vector<AlignmentPair> gold;
  for (uint32_t i = 0; i < 10; ++i) gold.push_back({i, i});
  std::vector<AlignmentPair> s, t;
  ASSERT_TRUE(SplitAlignment(gold, 0.0, 1, &s, &t).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(t.size(), 10u);
  ASSERT_TRUE(SplitAlignment(gold, 1.0, 1, &s, &t).ok());
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace ceaff::kg
