// Kill-the-process recovery drills for the KG dataset writers (failpoint
// scope "kg"): crash a child at every step of the atomic write protocol
// while it replaces an entity vocabulary / triple file, and assert the
// file on disk is always a complete, loadable generation — the old one
// before the rename publishes, the new one after — never a torn TSV.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "ceaff/kg/io.h"
#include "ceaff/kg/knowledge_graph.h"
#include "testing/crash_harness.h"
#include "testing/fault_injection.h"

namespace ceaff::kg {
namespace {

namespace ft = ceaff::testing;

KnowledgeGraph SmallKg(size_t num_entities) {
  KnowledgeGraph kg;
  for (size_t i = 0; i < num_entities; ++i) {
    kg.AddEntity("http://ex/e" + std::to_string(i),
                 "entity " + std::to_string(i));
  }
  for (size_t i = 0; i + 1 < num_entities; ++i) {
    kg.AddTriple("http://ex/e" + std::to_string(i), "http://ex/rel",
                 "http://ex/e" + std::to_string(i + 1));
  }
  return kg;
}

TEST(KgCrashTest, EntityVocabularyExportLeavesACompleteGeneration) {
  ft::ScratchDir scratch("crash_kg_entities");
  const std::string path = scratch.File("entities.tsv");
  const KnowledgeGraph old_gen = SmallKg(2);
  const KnowledgeGraph new_gen = SmallKg(3);

  auto prepare = [&] {
    std::filesystem::remove(path);
    CEAFF_CHECK(SaveEntitiesTsv(old_gen, path).ok());
  };
  auto operation = [&]() -> Status { return SaveEntitiesTsv(new_gen, path); };
  auto verify = [&](const std::string& site, bool crashed) {
    KnowledgeGraph loaded;
    Status st = LoadEntitiesTsv(path, &loaded);
    ASSERT_TRUE(st.ok()) << "after crash at " << site << ": " << st.ToString();
    const bool past_rename = site == "kg.before_dir_fsync";
    const size_t expected = (!crashed || past_rename) ? 3u : 2u;
    EXPECT_EQ(loaded.num_entities(), expected) << "crash at " << site;
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "kg.";
  options.iterations = ft::CrashIterationsFromEnv(3);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

TEST(KgCrashTest, TripleExportLeavesACompleteGeneration) {
  ft::ScratchDir scratch("crash_kg_triples");
  const std::string path = scratch.File("triples.tsv");
  const KnowledgeGraph old_gen = SmallKg(3);   // 2 triples
  const KnowledgeGraph new_gen = SmallKg(5);   // 4 triples

  auto prepare = [&] {
    std::filesystem::remove(path);
    CEAFF_CHECK(SaveTriplesTsv(old_gen, path).ok());
  };
  auto operation = [&]() -> Status { return SaveTriplesTsv(new_gen, path); };
  auto verify = [&](const std::string& site, bool crashed) {
    KnowledgeGraph loaded;
    Status st = LoadTriplesTsv(path, &loaded);
    ASSERT_TRUE(st.ok()) << "after crash at " << site << ": " << st.ToString();
    const bool past_rename = site == "kg.before_dir_fsync";
    const size_t expected = (!crashed || past_rename) ? 4u : 2u;
    EXPECT_EQ(loaded.num_triples(), expected) << "crash at " << site;
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "kg.";
  options.iterations = ft::CrashIterationsFromEnv(3);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

}  // namespace
}  // namespace ceaff::kg
