#include "ceaff/kg/adjacency.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ceaff::kg {
namespace {

KnowledgeGraph StarGraph() {
  // hub --r--> leaf1..leaf3 ; leaf1 --f--> leaf2 (f is functional).
  KnowledgeGraph g;
  g.AddTriple("hub", "r", "leaf1");
  g.AddTriple("hub", "r", "leaf2");
  g.AddTriple("hub", "r", "leaf3");
  g.AddTriple("leaf1", "f", "leaf2");
  return g;
}

TEST(FunctionalityTest, ComputesHeadAndTailRatios) {
  KnowledgeGraph g = StarGraph();
  RelationFunctionality f = ComputeFunctionality(g);
  RelationId r = g.FindRelation("r").value();
  RelationId fr = g.FindRelation("f").value();
  // r: 1 distinct head over 3 triples, 3 distinct tails over 3 triples.
  EXPECT_NEAR(f.fun[r], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.ifun[r], 1.0, 1e-9);
  // f: single triple, fully functional both ways.
  EXPECT_NEAR(f.fun[fr], 1.0, 1e-9);
  EXPECT_NEAR(f.ifun[fr], 1.0, 1e-9);
}

TEST(FunctionalityTest, UnusedRelationScoresZero) {
  KnowledgeGraph g;
  g.AddEntity("a");
  g.AddRelation("never");
  RelationFunctionality f = ComputeFunctionality(g);
  EXPECT_EQ(f.fun[0], 0.0);
  EXPECT_EQ(f.ifun[0], 0.0);
}

TEST(AdjacencyTest, UnweightedUnnormalizedStructure) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  AdjacencyOptions opt;
  opt.functionality_weighted = false;
  opt.add_self_loops = false;
  opt.symmetric_normalize = false;
  la::SparseMatrix a = BuildAdjacency(g, opt);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.at(0, 1), 1.0f);  // forward edge
  EXPECT_EQ(a.at(1, 0), 1.0f);  // reverse edge
  EXPECT_EQ(a.at(0, 0), 0.0f);  // no self-loop requested
}

TEST(AdjacencyTest, SelfLoopsAdded) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  AdjacencyOptions opt;
  opt.functionality_weighted = false;
  opt.symmetric_normalize = false;
  la::SparseMatrix a = BuildAdjacency(g, opt);
  EXPECT_EQ(a.at(0, 0), 1.0f);
  EXPECT_EQ(a.at(1, 1), 1.0f);
}

TEST(AdjacencyTest, FunctionalityWeightsApplied) {
  KnowledgeGraph g = StarGraph();
  AdjacencyOptions opt;
  opt.add_self_loops = false;
  opt.symmetric_normalize = false;
  la::SparseMatrix a = BuildAdjacency(g, opt);
  EntityId hub = g.FindEntity("hub").value();
  EntityId leaf1 = g.FindEntity("leaf1").value();
  // Forward hub->leaf1 carries ifun(r) = 1; reverse carries fun(r) = 1/3.
  EXPECT_NEAR(a.at(hub, leaf1), 1.0f, 1e-6);
  EXPECT_NEAR(a.at(leaf1, hub), 1.0f / 3.0f, 1e-6);
}

TEST(AdjacencyTest, SelfLoopTripleAccumulatesBothDirections) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "a");
  AdjacencyOptions opt;
  opt.functionality_weighted = false;
  opt.add_self_loops = false;
  opt.symmetric_normalize = false;
  la::SparseMatrix a = BuildAdjacency(g, opt);
  // One triple contributes forward + backward onto the diagonal once.
  EXPECT_EQ(a.at(0, 0), 2.0f);
}

TEST(AdjacencyTest, UnweightedDefaultIsSymmetric) {
  // Without functionality weighting, forward and reverse edges carry the
  // same weight and the normalised matrix is symmetric.
  KnowledgeGraph g = StarGraph();
  AdjacencyOptions opt;
  opt.functionality_weighted = false;
  la::SparseMatrix a = BuildAdjacency(g, opt);
  ASSERT_EQ(a.rows(), a.cols());
  la::Matrix d = a.ToDense();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(d.at(i, j), d.at(j, i), 1e-5);
    }
  }
}

TEST(AdjacencyTest, WeightedDefaultIsNormalizedAndNonNegative) {
  // With functionality weighting the matrix is generally asymmetric
  // (ifun(r) forward vs fun(r) backward) but entries stay in [0, 1].
  KnowledgeGraph g = StarGraph();
  la::SparseMatrix a = BuildAdjacency(g);
  la::Matrix d = a.ToDense();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_GE(d.at(i, j), 0.0f);
      EXPECT_LE(d.at(i, j), 1.0f + 1e-5);
    }
  }
  // The star hub's forward edges (ifun = 1) outweigh the leaves' reverse
  // edges (fun = 1/3).
  EntityId hub = g.FindEntity("hub").value();
  EntityId leaf3 = g.FindEntity("leaf3").value();
  EXPECT_GT(d.at(hub, leaf3), d.at(leaf3, hub));
}

TEST(AdjacencyTest, IsolatedEntityGetsOnlySelfLoop) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddEntity("lonely");
  la::SparseMatrix a = BuildAdjacency(g);
  EntityId lonely = g.FindEntity("lonely").value();
  EXPECT_NEAR(a.at(lonely, lonely), 1.0f, 1e-6);
  EXPECT_EQ(a.at(lonely, 0), 0.0f);
}

}  // namespace
}  // namespace ceaff::kg
