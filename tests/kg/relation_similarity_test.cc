#include "ceaff/kg/relation_similarity.h"

#include <gtest/gtest.h>

namespace ceaff::kg {
namespace {

/// Two KGs with a shared relation vocabulary: e0/f0 have the same relation
/// profile (one outgoing "born", one incoming "capital"); e1/f1 differ.
void MakeRelPair(KnowledgeGraph* g1, KnowledgeGraph* g2) {
  g1->AddTriple("e0", "born", "e1");
  g1->AddTriple("e2", "capital", "e0");
  g1->AddTriple("e1", "likes", "e2");
  g2->AddTriple("f0", "born", "f1");
  g2->AddTriple("f2", "capital", "f0");
  g2->AddTriple("f1", "likes", "f2");
  g2->AddTriple("f1", "likes", "f0");
}

TEST(RelationSimilarityTest, MatchingProfilesScoreHighest) {
  KnowledgeGraph g1, g2;
  MakeRelPair(&g1, &g2);
  la::Matrix m = RelationSimilarityMatrix(g1, g2, {0, 1, 2}, {0, 1, 2});
  // e0 and f0 share the full (born→, capital←) profile.
  EXPECT_GT(m.at(0, 0), 0.9f);
  EXPECT_GT(m.at(0, 0), m.at(0, 1));
  EXPECT_GT(m.at(0, 0), m.at(1, 0));
}

TEST(RelationSimilarityTest, DirectionsAreDistinct) {
  // a --r--> b in KG1; d --r--> c in KG2: a matches the *head* d, not the
  // tail c.
  KnowledgeGraph g1, g2;
  g1.AddTriple("a", "r", "b");
  g2.AddTriple("d", "r", "c");
  la::Matrix m = RelationSimilarityMatrix(
      g1, g2, {g1.FindEntity("a").value()},
      {g2.FindEntity("c").value(), g2.FindEntity("d").value()});
  EXPECT_EQ(m.at(0, 0), 0.0f);   // a (head) vs c (tail)
  EXPECT_GT(m.at(0, 1), 0.9f);   // a (head) vs d (head)
}

TEST(RelationSimilarityTest, DirectionsCanBeDisabled) {
  KnowledgeGraph g1, g2;
  g1.AddTriple("a", "r", "b");
  g2.AddTriple("d", "r", "c");
  RelationSimilarityOptions opt;
  opt.use_incoming = false;
  la::Matrix m = RelationSimilarityMatrix(
      g1, g2, {g1.FindEntity("b").value()},
      {g2.FindEntity("c").value()}, opt);
  // Both are tails only; with incoming disabled their profiles are empty.
  EXPECT_EQ(m.at(0, 0), 0.0f);
}

TEST(RelationSimilarityTest, UnsharedVocabularyYieldsZeros) {
  KnowledgeGraph g1, g2;
  g1.AddTriple("a", "only1", "b");
  g2.AddTriple("c", "only2", "d");
  la::Matrix m = RelationSimilarityMatrix(g1, g2, {0, 1}, {0, 1});
  EXPECT_EQ(m.Sum(), 0.0);
}

TEST(RelationSimilarityTest, IsolatedEntitiesScoreZero) {
  KnowledgeGraph g1, g2;
  MakeRelPair(&g1, &g2);
  EntityId lonely1 = g1.AddEntity("lonely");
  EntityId lonely2 = g2.AddEntity("lonely2");
  la::Matrix m = RelationSimilarityMatrix(g1, g2, {0, lonely1},
                                          {0, lonely2});
  EXPECT_EQ(m.at(1, 0), 0.0f);
  EXPECT_EQ(m.at(0, 1), 0.0f);
  EXPECT_EQ(m.at(1, 1), 0.0f);
}

}  // namespace
}  // namespace ceaff::kg
