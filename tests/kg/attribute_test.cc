#include "ceaff/kg/attribute_similarity.h"

#include <gtest/gtest.h>

namespace ceaff::kg {
namespace {

/// Two tiny KGs sharing an attribute vocabulary: e0/f0 match on both types
/// and values; e1/f1 share a type with a differing value; e2/f2 have no
/// attributes at all.
void MakeAttrPair(KnowledgeGraph* g1, KnowledgeGraph* g2) {
  for (auto* g : {g1, g2}) {
    g->AddEntity(g == g1 ? "e0" : "f0");
    g->AddEntity(g == g1 ? "e1" : "f1");
    g->AddEntity(g == g1 ? "e2" : "f2");
    g->AddAttribute("birthYear");
    g->AddAttribute("motto");
  }
  AttributeId by1 = g1->FindAttribute("birthYear").value();
  AttributeId mo1 = g1->FindAttribute("motto").value();
  AttributeId by2 = g2->FindAttribute("birthYear").value();
  AttributeId mo2 = g2->FindAttribute("motto").value();
  CEAFF_CHECK(g1->AddAttributeTriple(0, by1, "1969").ok());
  CEAFF_CHECK(g1->AddAttributeTriple(0, mo1, "veritas").ok());
  CEAFF_CHECK(g2->AddAttributeTriple(0, by2, "1969").ok());
  CEAFF_CHECK(g2->AddAttributeTriple(0, mo2, "veritas").ok());
  CEAFF_CHECK(g1->AddAttributeTriple(1, by1, "1701").ok());
  CEAFF_CHECK(g2->AddAttributeTriple(1, by2, "1999").ok());
}

TEST(KnowledgeGraphAttrTest, StorageAndLookup) {
  KnowledgeGraph g;
  g.AddEntity("e");
  AttributeId a = g.AddAttribute("population");
  EXPECT_EQ(g.AddAttribute("population"), a);
  EXPECT_EQ(g.num_attributes(), 1u);
  EXPECT_TRUE(g.AddAttributeTriple(0, a, "42000").ok());
  EXPECT_EQ(g.num_attribute_triples(), 1u);
  EXPECT_EQ(g.attribute_uri(a), "population");
  EXPECT_TRUE(g.FindAttribute("population").ok());
  EXPECT_TRUE(g.FindAttribute("nope").status().IsNotFound());
  EXPECT_TRUE(g.AddAttributeTriple(9, a, "x").IsInvalidArgument());
  EXPECT_TRUE(g.AddAttributeTriple(0, 9, "x").IsInvalidArgument());
}

TEST(AttributeSimilarityTest, MatchingProfilesScoreHighest) {
  KnowledgeGraph g1, g2;
  MakeAttrPair(&g1, &g2);
  la::Matrix m =
      AttributeSimilarityMatrix(g1, g2, {0, 1, 2}, {0, 1, 2});
  // e0/f0 agree on two attributes and values: the strongest cell.
  EXPECT_GT(m.at(0, 0), m.at(0, 1));
  EXPECT_GT(m.at(0, 0), m.at(1, 0));
  EXPECT_GT(m.at(0, 0), 0.8f);
  // e1/f1 share the type but not the value: positive yet weaker.
  EXPECT_GT(m.at(1, 1), 0.0f);
  EXPECT_LT(m.at(1, 1), m.at(0, 0));
}

TEST(AttributeSimilarityTest, EntitiesWithoutAttributesScoreZero) {
  KnowledgeGraph g1, g2;
  MakeAttrPair(&g1, &g2);
  la::Matrix m =
      AttributeSimilarityMatrix(g1, g2, {0, 1, 2}, {0, 1, 2});
  for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m.at(2, j), 0.0f);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(m.at(i, 2), 0.0f);
}

TEST(AttributeSimilarityTest, TypesOnlyModeIgnoresValues) {
  KnowledgeGraph g1, g2;
  MakeAttrPair(&g1, &g2);
  AttributeSimilarityOptions opt;
  opt.use_values = false;
  la::Matrix m = AttributeSimilarityMatrix(g1, g2, {0, 1}, {0, 1}, opt);
  // e1 and f1 both carry exactly {birthYear}: identical type signatures
  // despite the value mismatch.
  EXPECT_NEAR(m.at(1, 1), 1.0f, 1e-5);
}

TEST(AttributeSimilarityTest, UnsharedAttributeVocabularyYieldsZeros) {
  KnowledgeGraph g1, g2;
  g1.AddEntity("e");
  g2.AddEntity("f");
  AttributeId a1 = g1.AddAttribute("onlyInKg1");
  AttributeId a2 = g2.AddAttribute("onlyInKg2");
  CEAFF_CHECK(g1.AddAttributeTriple(0, a1, "v").ok());
  CEAFF_CHECK(g2.AddAttributeTriple(0, a2, "v").ok());
  la::Matrix m = AttributeSimilarityMatrix(g1, g2, {0}, {0});
  EXPECT_EQ(m.at(0, 0), 0.0f);
}

TEST(AttributeSimilarityTest, IdfDownweightsUbiquitousAttributes) {
  // Two entities share a rare attribute; two others share an attribute
  // every entity carries. The rare agreement should be more decisive.
  KnowledgeGraph g1, g2;
  for (auto* g : {&g1, &g2}) {
    for (int i = 0; i < 4; ++i) {
      g->AddEntity((g == &g1 ? "e" : "f") + std::to_string(i));
    }
    g->AddAttribute("common");
    g->AddAttribute("rare");
  }
  AttributeId c1 = 0, r1 = 1;
  for (uint32_t i = 0; i < 4; ++i) {
    CEAFF_CHECK(g1.AddAttributeTriple(i, c1, "x").ok());
    CEAFF_CHECK(g2.AddAttributeTriple(i, c1, "x").ok());
  }
  CEAFF_CHECK(g1.AddAttributeTriple(0, r1, "unique").ok());
  CEAFF_CHECK(g2.AddAttributeTriple(0, r1, "unique").ok());
  la::Matrix m = AttributeSimilarityMatrix(g1, g2, {0, 1}, {0, 1});
  // Entity 0 (rare+common agreement with f0) must beat the off-diagonal
  // common-only agreement by a clear margin.
  EXPECT_GT(m.at(0, 0), m.at(1, 0) + 0.05f);
}

}  // namespace
}  // namespace ceaff::kg
