#include <gtest/gtest.h>

#include <string>

#include "ceaff/kg/io.h"
#include "testing/fault_injection.h"

namespace ceaff::kg {
namespace {

namespace ft = ceaff::testing;

/// A tiny but complete pair: 3+3 entities, a few triples, one seed and one
/// test link. Small enough that every on-disk byte is accounted for.
KgPair TinyPair() {
  KgPair pair;
  pair.name = "tiny";
  for (const char* uri : {"a/e1", "a/e2", "a/e3"}) {
    pair.kg1.AddEntity(uri, std::string("name of ") + uri);
  }
  for (const char* uri : {"b/e1", "b/e2", "b/e3"}) {
    pair.kg2.AddEntity(uri, std::string("name of ") + uri);
  }
  pair.kg1.AddTriple("a/e1", "a/r1", "a/e2");
  pair.kg1.AddTriple("a/e2", "a/r1", "a/e3");
  pair.kg2.AddTriple("b/e1", "b/r1", "b/e2");
  pair.kg2.AddTriple("b/e3", "b/r2", "b/e1");
  pair.seed_alignment.push_back({0, 0});
  pair.test_alignment.push_back({1, 1});
  pair.test_alignment.push_back({2, 2});
  return pair;
}

/// Saves TinyPair into a fresh scratch dir and returns the dir.
void SaveTiny(const ft::ScratchDir& dir) {
  ASSERT_TRUE(SaveKgPair(TinyPair(), dir.path()).ok());
}

TEST(KgIoFaultTest, IntactPairRoundTrips) {
  ft::ScratchDir dir("kg_ok");
  SaveTiny(dir);
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(loaded.kg1.num_entities(), 3u);
  EXPECT_EQ(loaded.kg2.num_triples(), 2u);
  EXPECT_EQ(loaded.seed_alignment.size(), 1u);
  EXPECT_EQ(loaded.test_alignment.size(), 2u);
}

// Satellite requirement: each damaged-dataset shape returns a non-OK
// Status — never a crash, never a silent partial load.

TEST(KgIoFaultTest, TruncatedTriplesFileFailsCleanly) {
  ft::ScratchDir dir("kg_trunc");
  SaveTiny(dir);
  // Cut triples1.tsv mid-line: the last line no longer has 3 fields.
  ft::TruncateTail(dir.File("triples1.tsv"), 6);
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded);
  ASSERT_FALSE(st.ok());
  // Strict mode pinpoints the file and line of the damage.
  EXPECT_NE(st.message().find("triples1.tsv:2"), std::string::npos)
      << st.ToString();
}

TEST(KgIoFaultTest, MissingSeedLinksFileFailsCleanly) {
  ft::ScratchDir dir("kg_noseed");
  SaveTiny(dir);
  ft::RemoveFile(dir.File("seed_links.tsv"));
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.message().find("seed_links.tsv"), std::string::npos);
}

TEST(KgIoFaultTest, ZeroByteEntitiesFileIsDataLoss) {
  ft::ScratchDir dir("kg_zeroent");
  SaveTiny(dir);
  ft::ZeroFile(dir.File("entities1.tsv"));
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded);
  ASSERT_FALSE(st.ok());
  // An empty vocabulary means the dataset is damaged: kDataLoss, never an
  // "empty but valid" KG.
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  EXPECT_NE(st.message().find("entities1.tsv"), std::string::npos);
}

TEST(KgIoFaultTest, UnknownUriInLinksKeepsNotFoundWithContext) {
  ft::ScratchDir dir("kg_badlink");
  SaveTiny(dir);
  ft::WriteText(dir.File("seed_links.tsv"), "a/e1\tb/no_such_entity\n");
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  EXPECT_NE(st.message().find("seed_links.tsv:1"), std::string::npos);
}

TEST(KgIoFaultTest, LenientModeSkipsBadLinesAndReports) {
  ft::ScratchDir dir("kg_lenient");
  SaveTiny(dir);
  // Two good triples with a malformed line between them.
  ft::WriteText(dir.File("triples1.tsv"),
                "a/e1\ta/r1\ta/e2\n"
                "only two\tfields\n"
                "a/e2\ta/r1\ta/e3\n");

  ParseOptions options;
  options.lenient = true;
  std::vector<ParseReport> reports;
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded, options, &reports);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(loaded.kg1.num_triples(), 2u);

  // Exactly one file reports an issue, at the right line.
  size_t dirty_files = 0;
  for (const ParseReport& r : reports) {
    if (r.clean()) continue;
    ++dirty_files;
    EXPECT_NE(r.path.find("triples1.tsv"), std::string::npos);
    ASSERT_EQ(r.issues.size(), 1u);
    EXPECT_EQ(r.issues[0].line, 2u);
  }
  EXPECT_EQ(dirty_files, 1u);
}

TEST(KgIoFaultTest, LenientModeStillFailsPastTheErrorBudget) {
  ft::ScratchDir dir("kg_budget");
  SaveTiny(dir);
  std::string garbage;
  for (int i = 0; i < 10; ++i) garbage += "broken line\n";
  ft::WriteText(dir.File("triples2.tsv"), garbage);

  ParseOptions options;
  options.lenient = true;
  options.max_errors = 3;
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded, options, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("triples2.tsv"), std::string::npos);
}

TEST(KgIoFaultTest, StrictModeIsTheDefaultAndFailsFast) {
  ft::ScratchDir dir("kg_strict");
  SaveTiny(dir);
  ft::WriteText(dir.File("triples1.tsv"), "bad\n");
  KgPair loaded;
  EXPECT_FALSE(LoadKgPair(dir.path(), &loaded).ok());
}

TEST(KgIoFaultTest, EmptyEntityVocabularyInSecondKgIsAlsoDataLoss) {
  ft::ScratchDir dir("kg_zeroent2");
  SaveTiny(dir);
  ft::ZeroFile(dir.File("entities2.tsv"));
  KgPair loaded;
  Status st = LoadKgPair(dir.path(), &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  EXPECT_NE(st.message().find("entities2.tsv"), std::string::npos);
}

}  // namespace
}  // namespace ceaff::kg
