#ifndef CEAFF_TESTS_TESTING_FAULT_INJECTION_H_
#define CEAFF_TESTS_TESTING_FAULT_INJECTION_H_

/// Fault-injection helpers for robustness tests: deterministically damage
/// files on disk the way real crashes and bad media do — truncation
/// (interrupted write), bit flips (corruption), and zeroing (allocated but
/// never written). All helpers CHECK-fail on environmental errors so a
/// broken test setup is loud, not a silent pass.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "ceaff/common/logging.h"

namespace ceaff::testing {

inline size_t FileSize(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  CEAFF_CHECK(!ec) << "file_size " << path << ": " << ec.message();
  return static_cast<size_t>(size);
}

/// Cuts the file down to `keep_bytes` (simulates a write interrupted
/// mid-stream or a partial download).
inline void TruncateFile(const std::string& path, size_t keep_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, keep_bytes, ec);
  CEAFF_CHECK(!ec) << "truncate " << path << ": " << ec.message();
}

/// Drops the last `drop_bytes` bytes of the file.
inline void TruncateTail(const std::string& path, size_t drop_bytes) {
  size_t size = FileSize(path);
  CEAFF_CHECK(size >= drop_bytes)
      << path << " is only " << size << " bytes, cannot drop " << drop_bytes;
  TruncateFile(path, size - drop_bytes);
}

/// Flips one bit of the byte at `offset` (simulates silent media
/// corruption; the file keeps its size, so only content checks catch it).
inline void FlipBit(const std::string& path, size_t offset,
                    int bit = 0) {
  CEAFF_CHECK(bit >= 0 && bit < 8) << "bit index " << bit;
  CEAFF_CHECK(offset < FileSize(path))
      << "offset " << offset << " past end of " << path;
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary);
  CEAFF_CHECK(f.is_open()) << "open " << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.get(byte);
  byte = static_cast<char>(static_cast<uint8_t>(byte) ^ (1u << bit));
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(byte);
  CEAFF_CHECK(f.good()) << "rewrite " << path << " at offset " << offset;
}

/// Replaces the file with a zero-byte one (simulates a crash between
/// create and write).
inline void ZeroFile(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  CEAFF_CHECK(f.is_open()) << "open " << path;
}

/// Deletes the file.
inline void RemoveFile(const std::string& path) {
  std::error_code ec;
  bool removed = std::filesystem::remove(path, ec);
  CEAFF_CHECK(removed && !ec) << "remove " << path << ": " << ec.message();
}

/// Overwrites the file with the given text (for seeding malformed input).
inline void WriteText(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  CEAFF_CHECK(f.is_open()) << "open " << path;
  f << text;
  CEAFF_CHECK(f.good()) << "write " << path;
}

/// A unique, empty scratch directory under the system temp dir, removed on
/// destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    dir_ = (std::filesystem::temp_directory_path() /
            ("ceaff_fault_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_, ec);
    CEAFF_CHECK(!ec) << "mkdir " << dir_ << ": " << ec.message();
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return dir_; }
  std::string File(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

}  // namespace ceaff::testing

#endif  // CEAFF_TESTS_TESTING_FAULT_INJECTION_H_
