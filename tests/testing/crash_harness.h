#ifndef CEAFF_TESTS_TESTING_CRASH_HARNESS_H_
#define CEAFF_TESTS_TESTING_CRASH_HARNESS_H_

/// Fork-based kill-the-process recovery harness.
///
/// The drill, per operation under test:
///
///   1. Rehearsal: run the operation once cleanly (in-process) with hit
///      counters reset, then read failpoint::HitSites() — that is the
///      exact set of durability steps this operation crosses. Discovery,
///      not a hand-maintained list: a new fsync added to the code path is
///      drilled automatically on the next run.
///   2. For each discovered site (filtered by prefix), `iterations` times:
///      fresh state via `prepare`, then fork. The child arms `site=crash`
///      and re-runs the operation; the crash action _exit(77)s mid-protocol
///      — no destructors, no buffered-IO flush, the closest repeatable
///      stand-in for kill -9. The parent reaps it and calls `verify`,
///      which asserts (with normal gtest macros) that recovery from the
///      torn-on-purpose state works.
///
/// The child must never return into gtest: it either dies at the armed
/// site (exit 77) or finishes the operation and _exit(0)s (possible for
/// sites that are only crossed on some runs). Anything else — a real
/// abort, a CHECK failure, a signal — is reported as a test failure with
/// the site name.
///
/// Operations must not rely on threads: the child is a fork of a
/// potentially multi-threaded gtest process, so only async-signal-safe
/// state is guaranteed coherent. Everything drilled here (checkpoint
/// saves, index exports) is synchronous single-threaded IO.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/status.h"

namespace ceaff::testing {

struct CrashDrillOptions {
  /// Only sites starting with this prefix are drilled ("" = all hit
  /// sites). Keeps a drill focused on the scope under test when the
  /// operation also crosses unrelated instrumented code.
  std::string site_prefix;
  /// Crash-and-recover rounds per site. Raised by tools/run_checks.sh via
  /// CEAFF_CRASH_ITERS for the soak drill.
  int iterations = 5;
};

/// Reads the per-site iteration count: CEAFF_CRASH_ITERS when set (the
/// run_checks.sh drill dials it up), otherwise `fallback`.
inline int CrashIterationsFromEnv(int fallback = 5) {
  const char* env = std::getenv("CEAFF_CRASH_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

/// Runs the crash drill described above.
///
///   prepare    resets the on-disk state the operation runs against
///              (called before the rehearsal and before every fork)
///   operation  the durability-bearing operation; its Status is only
///              checked on the rehearsal (in the child a non-OK exit is
///              fine — the injected crash is the point)
///   verify     parent-side recovery assertions, called after every child;
///              receives the site that was armed and whether the child
///              actually crashed there (false = the site was not crossed
///              on that run, so the operation completed)
inline void RunCrashDrill(const std::function<void()>& prepare,
                          const std::function<Status()>& operation,
                          const std::function<void(const std::string& site,
                                                   bool crashed)>& verify,
                          const CrashDrillOptions& options = {}) {
  // Rehearsal: discover the sites this operation crosses.
  prepare();
  failpoint::Clear();
  failpoint::ResetHitCounts();
  {
    Status st = operation();
    ASSERT_TRUE(st.ok()) << "rehearsal run failed: " << st.ToString();
  }
  std::vector<std::string> sites;
  for (const std::string& site : failpoint::HitSites()) {
    if (site.rfind(options.site_prefix, 0) == 0) sites.push_back(site);
  }
  ASSERT_FALSE(sites.empty())
      << "rehearsal crossed no failpoint site with prefix '"
      << options.site_prefix << "' — the drill would prove nothing";

  for (const std::string& site : sites) {
    for (int iter = 0; iter < options.iterations; ++iter) {
      prepare();
      // Flush before forking so buffered gtest output is not duplicated
      // into the child (which _exits without flushing anyway, but a
      // crashing CHECK in between would re-emit it).
      std::fflush(stdout);
      std::fflush(stderr);
      const pid_t pid = fork();
      ASSERT_GE(pid, 0) << "fork failed";
      if (pid == 0) {
        // Child: arm the crash and die at the site. _exit always — never
        // unwind back into the test runner.
        if (!failpoint::Configure(site + "=crash").ok()) _exit(99);
        Status st = operation();
        _exit(st.ok() ? 0 : 98);
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid) << "waitpid failed";
      ASSERT_TRUE(WIFEXITED(wstatus))
          << "site " << site << " iter " << iter
          << ": child did not exit cleanly (killed by signal "
          << (WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : 0) << ")";
      const int code = WEXITSTATUS(wstatus);
      ASSERT_TRUE(code == failpoint::kCrashExitCode || code == 0)
          << "site " << site << " iter " << iter << ": child exited " << code
          << " (expected " << failpoint::kCrashExitCode
          << " = crashed at site, or 0 = site not crossed)";
      const bool crashed = code == failpoint::kCrashExitCode;
      EXPECT_TRUE(crashed || iter > 0)
          << "site " << site
          << " was crossed in the rehearsal but not on the first drilled "
             "run — the operation is not deterministic enough to drill";
      verify(site, crashed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace ceaff::testing

#endif  // CEAFF_TESTS_TESTING_CRASH_HARNESS_H_
