#include "ceaff/embed/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/la/ops.h"

namespace ceaff::embed {
namespace {

double Cosine(const la::Matrix& emb, size_t a, size_t b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t c = 0; c < emb.cols(); ++c) {
    dot += emb.at(a, c) * emb.at(b, c);
    na += emb.at(a, c) * emb.at(a, c);
    nb += emb.at(b, c) * emb.at(b, c);
  }
  if (na == 0 || nb == 0) return 0;
  return dot / std::sqrt(na * nb);
}

RandomWalkOptions SmallOptions() {
  RandomWalkOptions o;
  o.dim = 16;
  o.walks_per_node = 6;
  o.walk_length = 10;
  o.epochs = 2;
  o.seed = 5;
  return o;
}

TEST(RandomWalkTest, RejectsOutOfRangeEdges) {
  RandomWalkEmbedder e(4, SmallOptions());
  EXPECT_TRUE(e.Train({{0, 9}}).IsInvalidArgument());
  EXPECT_TRUE(e.Train({{9, 0}}).IsInvalidArgument());
}

TEST(RandomWalkTest, EmbeddingShape) {
  RandomWalkEmbedder e(7, SmallOptions());
  ASSERT_TRUE(e.Train({{0, 1}, {1, 2}}).ok());
  EXPECT_EQ(e.embeddings().rows(), 7u);
  EXPECT_EQ(e.embeddings().cols(), 16u);
  EXPECT_FALSE(std::isnan(e.embeddings().FrobeniusNorm()));
}

TEST(RandomWalkTest, CommunityStructureSeparates) {
  // Two 5-cliques joined by one bridge edge: within-clique nodes must end
  // up closer than cross-clique nodes.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = i + 1; j < 5; ++j) {
      edges.push_back({i, j});
      edges.push_back({i + 5, j + 5});
    }
  }
  edges.push_back({0, 5});  // bridge
  RandomWalkOptions o = SmallOptions();
  o.epochs = 4;
  RandomWalkEmbedder e(10, o);
  ASSERT_TRUE(e.Train(edges).ok());
  double within = Cosine(e.embeddings(), 1, 2);
  double across = Cosine(e.embeddings(), 1, 7);
  EXPECT_GT(within, across);
}

TEST(RandomWalkTest, DeterministicForSeed) {
  std::vector<std::pair<uint32_t, uint32_t>> edges{{0, 1}, {1, 2}, {2, 0}};
  RandomWalkEmbedder a(3, SmallOptions());
  RandomWalkEmbedder b(3, SmallOptions());
  ASSERT_TRUE(a.Train(edges).ok());
  ASSERT_TRUE(b.Train(edges).ok());
  for (size_t i = 0; i < a.embeddings().size(); ++i) {
    EXPECT_EQ(a.embeddings().data()[i], b.embeddings().data()[i]);
  }
}

TEST(RandomWalkTest, IsolatedNodesKeepInit) {
  RandomWalkEmbedder trained(3, SmallOptions());
  RandomWalkEmbedder untouched(3, SmallOptions());
  ASSERT_TRUE(trained.Train({{0, 1}}).ok());
  // Node 2 has no edges: identical to its initialisation.
  for (size_t c = 0; c < 16; ++c) {
    EXPECT_EQ(trained.embeddings().at(2, c), untouched.embeddings().at(2, c));
  }
}

TEST(MergedEdgeListTest, OffsetsAndAnchors) {
  kg::KgPair pair;
  pair.kg1.AddTriple("a", "r", "b");
  pair.kg2.AddTriple("x", "r", "y");
  std::vector<kg::AlignmentPair> anchors{{0, 1}};
  auto edges = MergedEdgeList(pair, anchors);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (std::pair<uint32_t, uint32_t>{0, 1}));    // kg1 a-b
  EXPECT_EQ(edges[1], (std::pair<uint32_t, uint32_t>{2, 3}));    // kg2 x-y
  EXPECT_EQ(edges[2], (std::pair<uint32_t, uint32_t>{0, 3}));    // anchor
}

}  // namespace
}  // namespace ceaff::embed
