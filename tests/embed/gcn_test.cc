#include "ceaff/embed/gcn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/kg/adjacency.h"
#include "ceaff/la/ops.h"

namespace ceaff::embed {
namespace {

/// Two small isomorphic ring KGs with a few chords.
void MakeRingPair(kg::KnowledgeGraph* g1, kg::KnowledgeGraph* g2,
                  size_t n = 12) {
  for (size_t i = 0; i < n; ++i) {
    std::string a = "u" + std::to_string(i);
    std::string b = "u" + std::to_string((i + 1) % n);
    g1->AddTriple(a, "next", b);
    std::string c = "v" + std::to_string(i);
    std::string d = "v" + std::to_string((i + 1) % n);
    g2->AddTriple(c, "next", d);
  }
  g1->AddTriple("u0", "chord", "u5");
  g2->AddTriple("v0", "chord", "v5");
  g1->AddTriple("u2", "chord", "u8");
  g2->AddTriple("v2", "chord", "v8");
}

GcnOptions SmallOptions() {
  GcnOptions o;
  o.dim = 16;
  o.epochs = 50;
  o.seed = 3;
  return o;
}

TEST(GcnAlignerTest, EmbeddingShapesMatchKgs) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  g2.AddEntity("extra");
  GcnAligner gcn(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2),
                 SmallOptions());
  EXPECT_EQ(gcn.embeddings1().rows(), g1.num_entities());
  EXPECT_EQ(gcn.embeddings2().rows(), g2.num_entities());
  EXPECT_EQ(gcn.embeddings1().cols(), 16u);
}

TEST(GcnAlignerTest, TrainRejectsOutOfRangePairs) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  GcnAligner gcn(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2),
                 SmallOptions());
  EXPECT_TRUE(gcn.Train({{999, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(gcn.Train({{0, 999}}).status().IsInvalidArgument());
}

TEST(GcnAlignerTest, TrainWithNoSeedsIsNoop) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  GcnAligner gcn(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2),
                 SmallOptions());
  auto loss = gcn.Train({});
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(loss.value(), 0.0);
}

TEST(GcnAlignerTest, TrainingReducesLossAndAlignsSeeds) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  std::vector<kg::AlignmentPair> seeds;
  for (uint32_t i = 0; i < 6; ++i) seeds.push_back({i, i});

  GcnOptions opt = SmallOptions();
  opt.epochs = 1;
  opt.tie_seed_features = false;
  GcnAligner gcn(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2), opt);
  double first = gcn.Train(seeds).value();
  double last = first;
  for (int e = 0; e < 80; ++e) last = gcn.Train(seeds).value();
  EXPECT_LT(last, first);

  // Seed pairs should now be mutually most-similar more often than chance.
  la::Matrix sim =
      la::CosineSimilarity(gcn.embeddings1(), gcn.embeddings2());
  size_t hits = 0;
  for (const kg::AlignmentPair& p : seeds) {
    if (la::RowTopK(sim, p.source, 1)[0] == p.target) ++hits;
  }
  EXPECT_GE(hits, 4u);
}

TEST(GcnAlignerTest, DeterministicAcrossRuns) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  std::vector<kg::AlignmentPair> seeds{{0, 0}, {3, 3}, {7, 7}};
  GcnAligner a(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2),
               SmallOptions());
  GcnAligner b(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2),
               SmallOptions());
  EXPECT_EQ(a.Train(seeds).value(), b.Train(seeds).value());
  for (size_t i = 0; i < a.embeddings1().size(); ++i) {
    EXPECT_EQ(a.embeddings1().data()[i], b.embeddings1().data()[i]);
  }
}

TEST(GcnAlignerTest, WeightTransformModeAlsoTrains) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  std::vector<kg::AlignmentPair> seeds{{0, 0}, {3, 3}, {6, 6}, {9, 9}};
  GcnOptions opt = SmallOptions();
  opt.use_weight_transform = true;
  opt.epochs = 1;
  GcnAligner gcn(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2), opt);
  double first = gcn.Train(seeds).value();
  double last = first;
  for (int e = 0; e < 60; ++e) last = gcn.Train(seeds).value();
  EXPECT_LT(last, first);
  EXPECT_FALSE(std::isnan(gcn.embeddings1().FrobeniusNorm()));
}

TEST(GcnAlignerTest, NumParametersAccounting) {
  kg::KnowledgeGraph g1, g2;
  MakeRingPair(&g1, &g2);
  GcnOptions opt = SmallOptions();
  opt.train_inputs = false;
  GcnAligner gcn(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2), opt);
  EXPECT_EQ(gcn.NumParameters(), 2 * 16u * 16u);
  opt.train_inputs = true;
  GcnAligner gcn2(kg::BuildAdjacency(g1), kg::BuildAdjacency(g2), opt);
  EXPECT_EQ(gcn2.NumParameters(),
            2 * 16u * 16u + (g1.num_entities() + g2.num_entities()) * 16u);
}

TEST(SampleNegativesTest, CorruptsExactlyOneSide) {
  std::vector<kg::AlignmentPair> pos{{1, 2}, {3, 4}};
  Rng rng(5);
  std::vector<NegativePair> negs = SampleNegatives(pos, 10, 10, 7, &rng);
  EXPECT_EQ(negs.size(), 14u);
  for (const NegativePair& n : negs) {
    const kg::AlignmentPair& p = pos[n.positive_index];
    bool src_same = n.source == p.source;
    bool tgt_same = n.target == p.target;
    EXPECT_TRUE(src_same || tgt_same);
    EXPECT_LT(n.source, 10u);
    EXPECT_LT(n.target, 10u);
  }
}

TEST(SampleHardNegativesTest, DrawsFromNearestNeighbours) {
  // z1: three well-separated clusters; the nearest entity to 0 is 1.
  la::Matrix z1 = la::Matrix::FromRows(
      {{1, 0}, {0.95f, 0.05f}, {0, 1}, {-1, 0}});
  la::Matrix z2 = z1;
  std::vector<kg::AlignmentPair> pos{{0, 0}};
  Rng rng(7);
  std::vector<NegativePair> negs =
      SampleHardNegatives(pos, z1, z2, 20, 1, &rng);
  for (const NegativePair& n : negs) {
    // With topk = 1 the only allowed corruption on either side is index 1.
    bool corrupt_src = n.source != 0;
    bool corrupt_tgt = n.target != 0;
    EXPECT_NE(corrupt_src, corrupt_tgt);
    if (corrupt_src) {
      EXPECT_EQ(n.source, 1u);
    }
    if (corrupt_tgt) {
      EXPECT_EQ(n.target, 1u);
    }
  }
}

TEST(MarginLossTest, ZeroWhenNegativesFarBeyondMargin) {
  la::Matrix z1 = la::Matrix::FromRows({{0, 0}, {100, 100}});
  la::Matrix z2 = la::Matrix::FromRows({{0, 0}, {-100, -100}});
  std::vector<kg::AlignmentPair> pos{{0, 0}};
  std::vector<NegativePair> negs{{0, 1, 0}, {0, 0, 1}};
  la::Matrix d1(2, 2), d2(2, 2);
  double loss = MarginRankingLossGrad(z1, z2, pos, negs, 3.0f, &d1, &d2);
  EXPECT_EQ(loss, 0.0);
  EXPECT_EQ(d1.FrobeniusNorm(), 0.0f);
  EXPECT_EQ(d2.FrobeniusNorm(), 0.0f);
}

TEST(MarginLossTest, GradientMatchesFiniteDifference) {
  Rng rng(11);
  la::Matrix z1 = la::Matrix::TruncatedNormal(4, 3, 1.0f, &rng);
  la::Matrix z2 = la::Matrix::TruncatedNormal(4, 3, 1.0f, &rng);
  std::vector<kg::AlignmentPair> pos{{0, 0}, {1, 1}};
  std::vector<NegativePair> negs{{0, 2, 0}, {0, 0, 3}, {1, 3, 1}};
  la::Matrix d1(4, 3), d2(4, 3);
  double base = MarginRankingLossGrad(z1, z2, pos, negs, 3.0f, &d1, &d2);
  const float eps = 1e-3f;
  for (size_t i = 0; i < z1.size(); ++i) {
    float saved = z1.data()[i];
    z1.data()[i] = saved + eps;
    la::Matrix t1(4, 3), t2(4, 3);
    double up = MarginRankingLossGrad(z1, z2, pos, negs, 3.0f, &t1, &t2);
    z1.data()[i] = saved;
    double numeric = (up - base) / eps;
    // The L1 subgradient is exact except at kinks; allow loose tolerance.
    EXPECT_NEAR(numeric, d1.data()[i], 0.15);
  }
}

}  // namespace
}  // namespace ceaff::embed
