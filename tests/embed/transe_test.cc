#include "ceaff/embed/transe.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/embed/bootstrap.h"
#include "ceaff/la/ops.h"

namespace ceaff::embed {
namespace {

std::vector<kg::Triple> ChainTriples(uint32_t n) {
  std::vector<kg::Triple> t;
  for (uint32_t i = 0; i + 1 < n; ++i) t.push_back({i, 0, i + 1});
  return t;
}

TEST(TranseModelTest, InitShapesAndNorms) {
  TranseOptions opt;
  opt.dim = 8;
  TranseModel m(10, 3, opt);
  EXPECT_EQ(m.entity_embeddings().rows(), 10u);
  EXPECT_EQ(m.entity_embeddings().cols(), 8u);
  EXPECT_EQ(m.relation_embeddings().rows(), 3u);
  // Entity rows are normalised at init.
  for (size_t r = 0; r < 10; ++r) {
    double sq = 0;
    for (size_t c = 0; c < 8; ++c) {
      sq += m.entity_embeddings().at(r, c) * m.entity_embeddings().at(r, c);
    }
    EXPECT_NEAR(sq, 1.0, 1e-5);
  }
}

TEST(TranseModelTest, ZeroRelationsStillConstructs) {
  TranseOptions opt;
  opt.dim = 4;
  TranseModel m(5, 0, opt);
  EXPECT_GE(m.relation_embeddings().rows(), 1u);
}

TEST(TranseModelTest, TrainRejectsBadTriples) {
  TranseOptions opt;
  opt.dim = 4;
  opt.epochs = 1;
  TranseModel m(5, 1, opt);
  EXPECT_TRUE(m.Train({{0, 0, 99}}).status().IsInvalidArgument());
  EXPECT_TRUE(m.Train({{99, 0, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(m.Train({{0, 9, 1}}).status().IsInvalidArgument());
}

TEST(TranseModelTest, TrainingReducesLoss) {
  TranseOptions opt;
  opt.dim = 16;
  opt.epochs = 1;
  opt.seed = 5;
  TranseModel m(20, 2, opt);
  std::vector<kg::Triple> triples = ChainTriples(20);
  Rng rng(1);
  double first = m.TrainEpoch(triples, &rng);
  double last = first;
  for (int e = 0; e < 120; ++e) last = m.TrainEpoch(triples, &rng);
  EXPECT_LT(last, first);
  EXPECT_FALSE(std::isnan(m.entity_embeddings().FrobeniusNorm()));
}

TEST(TranseModelTest, TrainDeterministicGivenSeed) {
  TranseOptions opt;
  opt.dim = 8;
  opt.epochs = 20;
  TranseModel a(10, 1, opt);
  TranseModel b(10, 1, opt);
  std::vector<kg::Triple> triples = ChainTriples(10);
  EXPECT_EQ(a.Train(triples).value(), b.Train(triples).value());
  for (size_t i = 0; i < a.entity_embeddings().size(); ++i) {
    EXPECT_EQ(a.entity_embeddings().data()[i],
              b.entity_embeddings().data()[i]);
  }
}

TEST(LinearTransformTest, RecoversExactLinearMap) {
  // dst = src rotated by a fixed matrix; the solver must recover it.
  Rng rng(9);
  const size_t d = 6, n = 40;
  la::Matrix src = la::Matrix::TruncatedNormal(n, d, 1.0f, &rng);
  la::Matrix rot = la::Matrix::TruncatedNormal(d, d, 1.0f, &rng);
  la::Matrix dst = la::MatMulBT(src, rot);  // dst = src · rot^T
  std::vector<kg::AlignmentPair> seeds;
  for (uint32_t i = 0; i < n; ++i) seeds.push_back({i, i});
  la::Matrix learned = LearnLinearTransform(src, dst, seeds, 1e-6f);
  la::Matrix projected = ApplyLinearTransform(src, learned);
  for (size_t i = 0; i < dst.size(); ++i) {
    EXPECT_NEAR(projected.data()[i], dst.data()[i], 1e-2);
  }
}

TEST(LinearTransformTest, RidgeKeepsUnderdeterminedSystemStable) {
  Rng rng(13);
  la::Matrix src = la::Matrix::TruncatedNormal(3, 10, 1.0f, &rng);
  la::Matrix dst = la::Matrix::TruncatedNormal(3, 10, 1.0f, &rng);
  std::vector<kg::AlignmentPair> seeds{{0, 0}, {1, 1}, {2, 2}};
  la::Matrix m = LearnLinearTransform(src, dst, seeds, 1e-2f);
  EXPECT_FALSE(std::isnan(m.FrobeniusNorm()));
  EXPECT_GT(m.FrobeniusNorm(), 0.0f);
}

TEST(HarvestTest, MutualNearestAboveThresholdOnly) {
  // sim: 0<->0 mutual best (0.9); 1's best is 0 (not mutual); 2<->2 mutual
  // but weak (0.4).
  la::Matrix sim = la::Matrix::FromRows({{0.9f, 0.1f, 0.0f},
                                         {0.8f, 0.2f, 0.1f},
                                         {0.0f, 0.1f, 0.4f}});
  BootstrapOptions opt;
  opt.min_similarity = 0.5f;
  std::vector<kg::AlignmentPair> fresh = HarvestConfidentPairs(sim, {}, opt);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].source, 0u);
  EXPECT_EQ(fresh[0].target, 0u);

  opt.min_similarity = 0.3f;
  fresh = HarvestConfidentPairs(sim, {}, opt);
  EXPECT_EQ(fresh.size(), 2u);  // (0,0) and (2,2)
}

TEST(HarvestTest, SkipsKnownEntities) {
  la::Matrix sim = la::Matrix::FromRows({{0.9f, 0.0f}, {0.0f, 0.8f}});
  BootstrapOptions opt;
  opt.min_similarity = 0.5f;
  std::vector<kg::AlignmentPair> known{{0, 0}};
  std::vector<kg::AlignmentPair> fresh =
      HarvestConfidentPairs(sim, known, opt);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].source, 1u);
}

TEST(HarvestTest, NonMutualAllowedWhenDisabled) {
  la::Matrix sim = la::Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.2f}});
  BootstrapOptions opt;
  opt.min_similarity = 0.5f;
  opt.mutual_nearest = false;
  std::vector<kg::AlignmentPair> fresh = HarvestConfidentPairs(sim, {}, opt);
  // Row 0 takes column 0; row 1's best (column 0) is already used.
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].source, 0u);
}

}  // namespace
}  // namespace ceaff::embed
