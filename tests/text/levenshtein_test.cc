#include "ceaff/text/levenshtein.h"

#include <gtest/gtest.h>

#include <string>

#include "ceaff/common/random.h"

namespace ceaff::text {
namespace {

TEST(LevenshteinTest, ClassicDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, Sub2ChargesSubstitutionsDouble) {
  // One pure substitution costs 2 under lev*.
  EXPECT_EQ(LevenshteinDistanceSub2("a", "c"), 2u);
  EXPECT_EQ(LevenshteinDistance("a", "c"), 1u);
  // Insertions and deletions still cost 1.
  EXPECT_EQ(LevenshteinDistanceSub2("ab", "b"), 1u);
  EXPECT_EQ(LevenshteinDistanceSub2("b", "ab"), 1u);
  // kitten -> sitting: 2 substitutions + 1 insertion = 5 under lev*.
  EXPECT_EQ(LevenshteinDistanceSub2("kitten", "sitting"), 5u);
}

TEST(LevenshteinTest, PaperMotivatingExample) {
  // Sec. IV-C: with lev the ratio of 'a' vs 'c' is 0.5; with lev* it is 0.
  EXPECT_DOUBLE_EQ(LevenshteinRatioUnitCost("a", "c"), 0.5);
  EXPECT_DOUBLE_EQ(LevenshteinRatio("a", "c"), 0.0);
}

TEST(LevenshteinRatioTest, BoundsAndIdentity) {
  EXPECT_DOUBLE_EQ(LevenshteinRatio("paris", "paris"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinRatio("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinRatio("abc", ""), 0.0);
  double r = LevenshteinRatio("london", "londres");
  EXPECT_GT(r, 0.5);
  EXPECT_LT(r, 1.0);
}

TEST(LevenshteinRatioTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(LevenshteinRatio("alpha", "alphabet"),
                   LevenshteinRatio("alphabet", "alpha"));
}

// Property tests over random strings.
class LevenshteinPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static std::string RandomString(Rng* rng, size_t max_len) {
    size_t len = rng->NextBounded(max_len + 1);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng->NextBounded(4)));
    }
    return s;
  }
};

TEST_P(LevenshteinPropertyTest, MetricAxiomsHold) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    std::string a = RandomString(&rng, 12);
    std::string b = RandomString(&rng, 12);
    std::string c = RandomString(&rng, 12);
    size_t dab = LevenshteinDistance(a, b);
    size_t dba = LevenshteinDistance(b, a);
    EXPECT_EQ(dab, dba);                           // symmetry
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);      // identity
    size_t dac = LevenshteinDistance(a, c);
    size_t dbc = LevenshteinDistance(b, c);
    EXPECT_LE(dac, dab + dbc);                     // triangle inequality
    // Distance bounded by max length; at least the length difference.
    EXPECT_LE(dab, std::max(a.size(), b.size()));
    EXPECT_GE(dab, a.size() > b.size() ? a.size() - b.size()
                                       : b.size() - a.size());
  }
}

TEST_P(LevenshteinPropertyTest, Sub2SandwichedByUnitCost) {
  Rng rng(GetParam() ^ 0xabcd);
  for (int iter = 0; iter < 40; ++iter) {
    std::string a = RandomString(&rng, 12);
    std::string b = RandomString(&rng, 12);
    size_t unit = LevenshteinDistance(a, b);
    size_t sub2 = LevenshteinDistanceSub2(a, b);
    EXPECT_GE(sub2, unit);
    EXPECT_LE(sub2, 2 * unit);
    // lev* never exceeds delete-all + insert-all.
    EXPECT_LE(sub2, a.size() + b.size());
  }
}

TEST_P(LevenshteinPropertyTest, RatioInUnitInterval) {
  Rng rng(GetParam() ^ 0x1234);
  for (int iter = 0; iter < 40; ++iter) {
    std::string a = RandomString(&rng, 10);
    std::string b = RandomString(&rng, 10);
    double r = LevenshteinRatio(a, b);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(StringSimilarityMatrixTest, ComputesAllPairs) {
  la::Matrix m = StringSimilarityMatrix({"paris", "rome"},
                                        {"paris", "roma", "berlin"});
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_GT(m.at(1, 1), m.at(1, 2));
  EXPECT_NEAR(m.at(1, 1), (4 + 4 - 2) / 8.0, 1e-6);
}

TEST(StringSimilarityMatrixTest, EmptyInputs) {
  la::Matrix m = StringSimilarityMatrix({}, {"x"});
  EXPECT_EQ(m.rows(), 0u);
  la::Matrix m2 = StringSimilarityMatrix({"x"}, {});
  EXPECT_EQ(m2.cols(), 0u);
}

}  // namespace
}  // namespace ceaff::text
