#include "ceaff/text/embedding_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace ceaff::text {
namespace {

class EmbeddingIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ceaff_embio_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(EmbeddingIoTest, LoadsGloveStyleFile) {
  WriteFile("vecs.txt", "cat 1 0 0\ndog 0 1 0\n");
  WordEmbeddingStore store(3, 1);
  ASSERT_TRUE(LoadTextEmbeddings(Path("vecs.txt"), &store).ok());
  std::vector<float> v;
  ASSERT_TRUE(store.Lookup("cat", &v));
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[1], 0.0f);
}

TEST_F(EmbeddingIoTest, SkipsFastTextHeader) {
  WriteFile("vecs.txt", "2 3\ncat 1 0 0\ndog 0 1 0\n");
  WordEmbeddingStore store(3, 1);
  ASSERT_TRUE(LoadTextEmbeddings(Path("vecs.txt"), &store).ok());
  EXPECT_EQ(store.explicit_tokens().size(), 2u);
}

TEST_F(EmbeddingIoTest, HeaderDimensionMismatchRejected) {
  WriteFile("vecs.txt", "2 5\ncat 1 0 0 0 0\n");
  WordEmbeddingStore store(3, 1);
  EXPECT_TRUE(
      LoadTextEmbeddings(Path("vecs.txt"), &store).IsInvalidArgument());
}

TEST_F(EmbeddingIoTest, WrongFieldCountRejectedWithLine) {
  WriteFile("vecs.txt", "cat 1 0 0\nbad 1 0\n");
  WordEmbeddingStore store(3, 1);
  Status s = LoadTextEmbeddings(Path("vecs.txt"), &store);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find(":2:"), std::string::npos);
}

TEST_F(EmbeddingIoTest, MalformedValueRejected) {
  WriteFile("vecs.txt", "cat 1 zz 0\n");
  WordEmbeddingStore store(3, 1);
  EXPECT_TRUE(
      LoadTextEmbeddings(Path("vecs.txt"), &store).IsInvalidArgument());
}

TEST_F(EmbeddingIoTest, MaxVectorsTruncates) {
  WriteFile("vecs.txt", "a 1 0\nb 0 1\nc 1 1\n");
  WordEmbeddingStore store(2, 1);
  EmbeddingIoOptions opt;
  opt.max_vectors = 2;
  ASSERT_TRUE(LoadTextEmbeddings(Path("vecs.txt"), &store, opt).ok());
  EXPECT_EQ(store.explicit_tokens().size(), 2u);
}

TEST_F(EmbeddingIoTest, LowercasesByDefault) {
  WriteFile("vecs.txt", "Paris 1 0\n");
  WordEmbeddingStore store(2, 1);
  ASSERT_TRUE(LoadTextEmbeddings(Path("vecs.txt"), &store).ok());
  std::vector<float> v;
  EXPECT_TRUE(store.Lookup("paris", &v));
}

TEST_F(EmbeddingIoTest, RoundTripPreservesDirections) {
  WordEmbeddingStore store(2, 1);
  ASSERT_TRUE(store.SetVector("north", {0.0f, 2.0f}).ok());
  ASSERT_TRUE(store.SetVector("east", {3.0f, 0.0f}).ok());
  ASSERT_TRUE(SaveTextEmbeddings(store, Path("out.txt")).ok());
  WordEmbeddingStore loaded(2, 9);
  ASSERT_TRUE(LoadTextEmbeddings(Path("out.txt"), &loaded).ok());
  std::vector<float> v;
  ASSERT_TRUE(loaded.Lookup("north", &v));
  EXPECT_NEAR(v[1], 1.0f, 1e-5);  // stored normalised
  ASSERT_TRUE(loaded.Lookup("east", &v));
  EXPECT_NEAR(v[0], 1.0f, 1e-5);
}

TEST_F(EmbeddingIoTest, SetVectorValidatesDimension) {
  WordEmbeddingStore store(4, 1);
  EXPECT_TRUE(store.SetVector("bad", {1.0f}).IsInvalidArgument());
  EXPECT_TRUE(store.SetVector("good", {1, 0, 0, 0}).ok());
}

TEST_F(EmbeddingIoTest, ExplicitVectorBeatsHashFallback) {
  WordEmbeddingStore a(2, 1), b(2, 1);
  std::vector<float> hash_vec, explicit_vec;
  ASSERT_TRUE(a.Lookup("token", &hash_vec));
  ASSERT_TRUE(b.SetVector("token", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(b.Lookup("token", &explicit_vec));
  EXPECT_NE(hash_vec, explicit_vec);
  EXPECT_FLOAT_EQ(explicit_vec[0], 1.0f);
}

}  // namespace
}  // namespace ceaff::text
