#include <gtest/gtest.h>

#include <string>

#include "ceaff/text/embedding_io.h"
#include "testing/fault_injection.h"

namespace ceaff::text {
namespace {

namespace ft = ceaff::testing;

TEST(EmbeddingIoFaultTest, LenientModeSkipsCorruptRows) {
  ft::ScratchDir dir("emb_lenient");
  const std::string path = dir.File("vectors.txt");
  ft::WriteText(path,
                "alpha 1.0 2.0 3.0\n"
                "broken 1.0 not_a_number 3.0\n"
                "short 1.0 2.0\n"
                "beta 4.0 5.0 6.0\n");

  WordEmbeddingStore store(3);
  EmbeddingIoOptions options;
  options.parse.lenient = true;
  ParseReport report;
  Status st = LoadTextEmbeddings(path, &store, options, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(store.explicit_tokens().size(), 2u);
  EXPECT_EQ(report.records_loaded, 2u);
  ASSERT_EQ(report.issues.size(), 2u);
  EXPECT_EQ(report.issues[0].line, 2u);
  EXPECT_EQ(report.issues[1].line, 3u);
}

TEST(EmbeddingIoFaultTest, StrictModeFailsOnFirstCorruptRowWithContext) {
  ft::ScratchDir dir("emb_strict");
  const std::string path = dir.File("vectors.txt");
  ft::WriteText(path,
                "alpha 1.0 2.0 3.0\n"
                "broken 1.0 not_a_number 3.0\n");

  WordEmbeddingStore store(3);
  Status st = LoadTextEmbeddings(path, &store);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("vectors.txt:2"), std::string::npos)
      << st.ToString();
}

TEST(EmbeddingIoFaultTest, LenientModeStillFailsPastTheErrorBudget) {
  ft::ScratchDir dir("emb_budget");
  const std::string path = dir.File("vectors.txt");
  std::string content;
  for (int i = 0; i < 8; ++i) content += "junk x y z\n";
  ft::WriteText(path, content);

  WordEmbeddingStore store(3);
  EmbeddingIoOptions options;
  options.parse.lenient = true;
  options.parse.max_errors = 2;
  Status st = LoadTextEmbeddings(path, &store, options, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(EmbeddingIoFaultTest, HeaderDimensionMismatchIsFatalEvenWhenLenient) {
  ft::ScratchDir dir("emb_hdr");
  const std::string path = dir.File("vectors.txt");
  ft::WriteText(path,
                "2 5\n"
                "alpha 1.0 2.0 3.0 4.0 5.0\n");

  WordEmbeddingStore store(3);  // store dim 3 vs file header dim 5
  EmbeddingIoOptions options;
  options.parse.lenient = true;
  Status st = LoadTextEmbeddings(path, &store, options, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(":1:"), std::string::npos) << st.ToString();
}

TEST(EmbeddingIoFaultTest, TruncatedLastLineIsSkippedLeniently) {
  ft::ScratchDir dir("emb_trunc");
  const std::string path = dir.File("vectors.txt");
  ft::WriteText(path,
                "alpha 1.0 2.0 3.0\n"
                "beta 4.0 5.0 6.0\n");
  ft::TruncateTail(path, 5);  // "beta 4.0 5" — wrong field count

  WordEmbeddingStore store(3);
  EmbeddingIoOptions options;
  options.parse.lenient = true;
  ParseReport report;
  Status st = LoadTextEmbeddings(path, &store, options, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(store.explicit_tokens().size(), 1u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].line, 2u);
}

}  // namespace
}  // namespace ceaff::text
