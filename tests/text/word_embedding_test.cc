#include "ceaff/text/word_embedding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/text/name_embedding.h"
#include "ceaff/text/tokenizer.h"

namespace ceaff::text {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

TEST(TokenizerTest, SplitsAndLowercases) {
  EXPECT_EQ(TokenizeName("Los_Angeles (city)"),
            (std::vector<std::string>{"los", "angeles", "city"}));
  EXPECT_EQ(TokenizeName("a-b.c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(TokenizeName("  --  ").empty());
  EXPECT_EQ(TokenizeName("R2D2"), (std::vector<std::string>{"r2d2"}));
}

TEST(TokenizerTest, KeepsMultibyteUtf8Together) {
  // Cyrillic stand-in for CJK content must survive as one token.
  std::vector<std::string> tokens = TokenizeName("\xD0\xB0\xD0\xB1 x");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "\xD0\xB0\xD0\xB1");
  EXPECT_EQ(tokens[1], "x");
}

TEST(WordEmbeddingStoreTest, DeterministicLookups) {
  WordEmbeddingStore store(32, 7);
  std::vector<float> a, b;
  ASSERT_TRUE(store.Lookup("hello", &a));
  ASSERT_TRUE(store.Lookup("hello", &b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);
}

TEST(WordEmbeddingStoreTest, VectorsAreUnitNorm) {
  WordEmbeddingStore store(64, 9);
  std::vector<float> v;
  ASSERT_TRUE(store.Lookup("token", &v));
  double sq = 0;
  for (float x : v) sq += x * x;
  EXPECT_NEAR(sq, 1.0, 1e-5);
  store.RegisterToken("anchored", 42, 0.3);
  ASSERT_TRUE(store.Lookup("anchored", &v));
  sq = 0;
  for (float x : v) sq += x * x;
  EXPECT_NEAR(sq, 1.0, 1e-5);
}

TEST(WordEmbeddingStoreTest, DifferentTokensNearOrthogonal) {
  WordEmbeddingStore store(128, 11);
  std::vector<float> a, b;
  ASSERT_TRUE(store.Lookup("apple", &a));
  ASSERT_TRUE(store.Lookup("orange", &b));
  EXPECT_LT(std::fabs(Cosine(a, b)), 0.35);
}

TEST(WordEmbeddingStoreTest, SharedConceptBringsTranslationsClose) {
  WordEmbeddingStore store(64, 13);
  store.RegisterToken("city", 100, 0.2);
  store.RegisterToken("ville", 100, 0.2);
  store.RegisterToken("dog", 200, 0.2);
  std::vector<float> en, fr, other;
  ASSERT_TRUE(store.Lookup("city", &en));
  ASSERT_TRUE(store.Lookup("ville", &fr));
  ASSERT_TRUE(store.Lookup("dog", &other));
  EXPECT_GT(Cosine(en, fr), 0.8);
  EXPECT_LT(Cosine(en, other), 0.4);
}

TEST(WordEmbeddingStoreTest, NoiseScaleDegradesSimilarity) {
  WordEmbeddingStore store(64, 13);
  store.RegisterToken("a_en", 1, 0.1);
  store.RegisterToken("a_zh", 1, 1.5);
  store.RegisterToken("b_en", 1, 0.1);
  store.RegisterToken("b_fr", 1, 0.1);
  std::vector<float> a_en, a_zh, b_en, b_fr;
  store.Lookup("a_en", &a_en);
  store.Lookup("a_zh", &a_zh);
  store.Lookup("b_en", &b_en);
  store.Lookup("b_fr", &b_fr);
  EXPECT_GT(Cosine(b_en, b_fr), Cosine(a_en, a_zh));
}

TEST(WordEmbeddingStoreTest, OovTokensFailLookup) {
  WordEmbeddingStore store(16, 17);
  store.MarkOov("rareword");
  std::vector<float> v;
  EXPECT_FALSE(store.Lookup("rareword", &v));
  // OOV beats registration.
  store.RegisterToken("rareword", 5, 0.0);
  EXPECT_FALSE(store.Lookup("rareword", &v));
}

TEST(WordEmbeddingStoreTest, FallbackCanBeDisabled) {
  WordEmbeddingStore store(16, 19);
  store.set_hash_fallback(false);
  std::vector<float> v;
  EXPECT_FALSE(store.Lookup("unregistered", &v));
  store.RegisterToken("known", 3, 0.0);
  EXPECT_TRUE(store.Lookup("known", &v));
  EXPECT_EQ(store.num_registered(), 1u);
}

TEST(NameEmbeddingTest, AveragesTokenVectors) {
  WordEmbeddingStore store(32, 23);
  store.RegisterToken("new", 1, 0.0);
  store.RegisterToken("york", 2, 0.0);
  std::vector<float> nv = EmbedName(store, "New York");
  std::vector<float> n, y;
  store.Lookup("new", &n);
  store.Lookup("york", &y);
  for (size_t i = 0; i < nv.size(); ++i) {
    EXPECT_NEAR(nv[i], (n[i] + y[i]) / 2.0f, 1e-5);
  }
}

TEST(NameEmbeddingTest, SkipsOovTokens) {
  WordEmbeddingStore store(32, 29);
  store.RegisterToken("known", 1, 0.0);
  store.MarkOov("ghost");
  std::vector<float> with = EmbedName(store, "known ghost");
  std::vector<float> without = EmbedName(store, "known");
  EXPECT_EQ(with, without);
}

TEST(NameEmbeddingTest, AllOovYieldsZeroVector) {
  WordEmbeddingStore store(16, 31);
  store.set_hash_fallback(false);
  std::vector<float> v = EmbedName(store, "completely unknown");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(SemanticSimilarityMatrixTest, TranslationsScoreHighest) {
  WordEmbeddingStore store(64, 37);
  store.RegisterToken("red", 1, 0.1);
  store.RegisterToken("rouge", 1, 0.1);
  store.RegisterToken("blue", 2, 0.1);
  store.RegisterToken("bleu", 2, 0.1);
  la::Matrix m =
      SemanticSimilarityMatrix(store, {"red", "blue"}, {"rouge", "bleu"});
  EXPECT_GT(m.at(0, 0), m.at(0, 1));
  EXPECT_GT(m.at(1, 1), m.at(1, 0));
}

TEST(EmbedNamesTest, StacksRows) {
  WordEmbeddingStore store(8, 41);
  la::Matrix n = EmbedNames(store, {"a", "b", "c"});
  EXPECT_EQ(n.rows(), 3u);
  EXPECT_EQ(n.cols(), 8u);
  EXPECT_GT(n.FrobeniusNorm(), 0.0f);
}

}  // namespace
}  // namespace ceaff::text
