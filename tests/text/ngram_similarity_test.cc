#include "ceaff/text/ngram_similarity.h"

#include <gtest/gtest.h>

#include "ceaff/common/random.h"
#include "ceaff/data/name_generator.h"
#include "ceaff/text/levenshtein.h"

namespace ceaff::text {
namespace {

TEST(NgramSimilarityTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("paris", "paris"), 1.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("", ""), 1.0);
}

TEST(NgramSimilarityTest, DisjointStringsScoreZero) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("aaaa", "bbbb"), 0.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("abc", ""), 0.0);
}

TEST(NgramSimilarityTest, SimilarStringsScoreBetween) {
  double s = NgramSimilarity("london", "londres");
  EXPECT_GT(s, 0.3);
  EXPECT_LT(s, 1.0);
  EXPECT_GT(NgramSimilarity("london", "londres"),
            NgramSimilarity("london", "berlin"));
}

TEST(NgramSimilarityTest, SymmetricAndBounded) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::string a = data::BaseToken(rng.NextU64(), 1);
    std::string b = data::BaseToken(rng.NextU64(), 2);
    double ab = NgramSimilarity(a, b);
    EXPECT_DOUBLE_EQ(ab, NgramSimilarity(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST(NgramSimilarityTest, ShortStringsHandledViaPadding) {
  // Shorter than n: padding still produces comparable grams.
  EXPECT_DOUBLE_EQ(NgramSimilarity("a", "a"), 1.0);
  EXPECT_LT(NgramSimilarity("a", "b"), 0.5);
  NgramOptions no_pad;
  no_pad.pad = false;
  // Without padding a 1-char string is its own single gram.
  EXPECT_DOUBLE_EQ(NgramSimilarity("a", "a", no_pad), 1.0);
}

TEST(NgramSimilarityTest, CrossScriptOverlapIsZero) {
  // Latin vs Cyrillic stand-in: byte-level n-grams share nothing.
  EXPECT_DOUBLE_EQ(
      NgramSimilarity("paris", "\xD0\xB0\xD0\xB1\xD0\xB2\xD0\xB3"), 0.0);
}

TEST(NgramSimilarityTest, CorrelatesWithLevenshteinOnPerturbedNames) {
  // Both metrics must rank the true counterpart above a random name for
  // lightly perturbed tokens — they are interchangeable as Ml.
  Rng rng(11);
  data::LanguageSpec fr;
  fr.code = "fr";
  fr.edit_fraction = 0.3;
  size_t agree = 0;
  const int kTrials = 40;
  for (int i = 0; i < kTrials; ++i) {
    std::string base = data::BaseToken(i, 5);
    std::string translated = data::SurfaceToken(i, fr, 5);
    std::string random_name = data::BaseToken(1000 + i, 5);
    bool ngram_right = NgramSimilarity(base, translated) >
                       NgramSimilarity(base, random_name);
    bool lev_right = LevenshteinRatio(base, translated) >
                     LevenshteinRatio(base, random_name);
    agree += (ngram_right && lev_right);
  }
  EXPECT_GT(agree, static_cast<size_t>(kTrials * 0.8));
}

TEST(NgramSimilarityMatrixTest, MatchesScalarFunction) {
  std::vector<std::string> src = {"paris", "rome"};
  std::vector<std::string> dst = {"paris", "roma", ""};
  la::Matrix m = NgramSimilarityMatrix(src, dst);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < src.size(); ++i) {
    for (size_t j = 0; j < dst.size(); ++j) {
      EXPECT_NEAR(m.at(i, j), NgramSimilarity(src[i], dst[j]), 1e-6);
    }
  }
}

}  // namespace
}  // namespace ceaff::text
