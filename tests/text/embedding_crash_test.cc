// Kill-the-process recovery drills for the word-embedding cache writer
// (failpoint scope "embed"): crash a child at every step of the atomic
// write protocol while it replaces a vectors file, and assert the file on
// disk is always a complete, loadable generation.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ceaff/text/embedding_io.h"
#include "ceaff/text/word_embedding.h"
#include "testing/crash_harness.h"
#include "testing/fault_injection.h"

namespace ceaff::text {
namespace {

namespace ft = ceaff::testing;

constexpr size_t kDim = 4;

WordEmbeddingStore StoreWithTokens(size_t num_tokens) {
  WordEmbeddingStore store(kDim);
  for (size_t i = 0; i < num_tokens; ++i) {
    std::vector<float> v(kDim, 0.0f);
    v[i % kDim] = 1.0f;
    CEAFF_CHECK(store.SetVector("token" + std::to_string(i), v).ok());
  }
  return store;
}

TEST(EmbeddingCrashTest, VectorExportLeavesACompleteGeneration) {
  ft::ScratchDir scratch("crash_embed");
  const std::string path = scratch.File("vectors.txt");
  const WordEmbeddingStore old_gen = StoreWithTokens(2);
  const WordEmbeddingStore new_gen = StoreWithTokens(3);

  auto prepare = [&] {
    std::filesystem::remove(path);
    CEAFF_CHECK(SaveTextEmbeddings(old_gen, path).ok());
  };
  auto operation = [&]() -> Status {
    return SaveTextEmbeddings(new_gen, path);
  };
  auto verify = [&](const std::string& site, bool crashed) {
    WordEmbeddingStore loaded(kDim);
    Status st = LoadTextEmbeddings(path, &loaded);
    ASSERT_TRUE(st.ok()) << "after crash at " << site << ": " << st.ToString();
    const bool past_rename = site == "embed.before_dir_fsync";
    const size_t expected = (!crashed || past_rename) ? 3u : 2u;
    EXPECT_EQ(loaded.explicit_tokens().size(), expected)
        << "crash at " << site;
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "embed.";
  options.iterations = ft::CrashIterationsFromEnv(3);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

}  // namespace
}  // namespace ceaff::text
