#include "ceaff/matching/sinkhorn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/common/random.h"

namespace ceaff::matching {
namespace {

TEST(SinkhornTest, RowsBecomeStochastic) {
  Rng rng(3);
  la::Matrix m(5, 5);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextFloat();
  la::Matrix plan = SinkhornNormalize(m);
  for (size_t r = 0; r < plan.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < plan.cols(); ++c) {
      EXPECT_GE(plan.at(r, c), 0.0f);
      sum += plan.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 0.05);
  }
  // Square case: columns also approach mass 1.
  for (size_t c = 0; c < plan.cols(); ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < plan.rows(); ++r) sum += plan.at(r, c);
    EXPECT_NEAR(sum, 1.0, 0.05);
  }
}

TEST(SinkhornTest, SharpensDominantAssignment) {
  // A diagonally dominant matrix: the plan should put most row mass on
  // the diagonal at low temperature.
  la::Matrix m = la::Matrix::FromRows(
      {{0.9f, 0.3f, 0.2f}, {0.2f, 0.8f, 0.3f}, {0.3f, 0.2f, 0.7f}});
  SinkhornOptions opt;
  opt.temperature = 0.05;
  la::Matrix plan = SinkhornNormalize(m, opt);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(plan.at(i, i), 0.8f);
  }
}

TEST(SinkhornTest, ResolvesHubConflictLikeDaa) {
  // The Figure 1 matrix: greedy decoding of the Sinkhorn plan must also
  // recover the diagonal (the column-normalisation starves the v1 hub).
  la::Matrix m = la::Matrix::FromRows(
      {{0.9f, 0.6f, 0.1f}, {0.7f, 0.5f, 0.2f}, {0.2f, 0.4f, 0.3f}});
  MatchResult r = SinkhornMatch(m);
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 1, 2}));
}

TEST(SinkhornTest, RectangularShapesSupported) {
  Rng rng(5);
  la::Matrix m(3, 6);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextFloat();
  la::Matrix plan = SinkhornNormalize(m);
  ASSERT_TRUE(plan.SameShape(m));
  MatchResult r = SinkhornMatch(m);
  EXPECT_EQ(r.num_matched(), 3u);
}

TEST(SinkhornTest, EmptyMatrixIsNoop) {
  la::Matrix empty;
  EXPECT_TRUE(SinkhornNormalize(empty).empty());
  EXPECT_TRUE(SinkhornMatch(empty).target_of_source.empty());
}

TEST(SinkhornTest, NoNansUnderExtremeValues) {
  la::Matrix m = la::Matrix::FromRows({{100.0f, -100.0f}, {-100.0f, 100.0f}});
  SinkhornOptions opt;
  opt.temperature = 0.01;
  la::Matrix plan = SinkhornNormalize(m, opt);
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_TRUE(std::isfinite(plan.data()[i]));
  }
  MatchResult r = SinkhornMatch(m, opt);
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 1}));
}

}  // namespace
}  // namespace ceaff::matching
