#include "ceaff/matching/matching.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ceaff/common/random.h"

namespace ceaff::matching {
namespace {

// The paper's Figure 1 / Figure 4 running example (values reconstructed so
// the narrated behaviour matches exactly): independent decisions produce
// (u1,v1), (u2,v1), (u3,v2) — two mismatches — while collective stable
// matching recovers the correct diagonal.
la::Matrix Figure1Matrix() {
  return la::Matrix::FromRows(
      {{0.9f, 0.6f, 0.1f}, {0.7f, 0.5f, 0.2f}, {0.2f, 0.4f, 0.3f}});
}

la::Matrix RandomMatrix(Rng* rng, size_t n1, size_t n2) {
  la::Matrix m(n1, n2);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->NextFloat();
  return m;
}

TEST(GreedyIndependentTest, ReproducesFigure1Mismatches) {
  MatchResult r = GreedyIndependent(Figure1Matrix());
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 0, 1}));
  // Both u1 and u2 chose v1 — the conflict collective EA fixes.
}

TEST(DeferredAcceptanceTest, ReproducesFigure1Correction) {
  MatchResult r = DeferredAcceptance(Figure1Matrix());
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(CountBlockingPairs(Figure1Matrix(), r), 0u);
}

TEST(DaaTraceTest, ReproducesFigure4Narrative) {
  std::vector<DaaTraceEvent> trace;
  MatchResult r = DeferredAcceptanceTraced(Figure1Matrix(), &trace);
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 1, 2}));
  ASSERT_EQ(trace.size(), 5u);
  // Round 1: u1 -> v1 accepted; u2 -> v1 rejected; u3 -> v2 accepted.
  EXPECT_EQ(trace[0].source, 0u);
  EXPECT_EQ(trace[0].target, 0u);
  EXPECT_TRUE(trace[0].accepted);
  EXPECT_EQ(trace[1].source, 1u);
  EXPECT_EQ(trace[1].target, 0u);
  EXPECT_FALSE(trace[1].accepted);
  EXPECT_EQ(trace[2].source, 2u);
  EXPECT_EQ(trace[2].target, 1u);
  EXPECT_TRUE(trace[2].accepted);
  // Round 2: u2 -> v2 accepted, displacing u3.
  EXPECT_EQ(trace[3].source, 1u);
  EXPECT_EQ(trace[3].target, 1u);
  EXPECT_TRUE(trace[3].accepted);
  EXPECT_EQ(trace[3].displaced, 2);
  // Round 3: u3 -> v3 accepted.
  EXPECT_EQ(trace[4].source, 2u);
  EXPECT_EQ(trace[4].target, 2u);
  EXPECT_TRUE(trace[4].accepted);
}

TEST(GreedyOneToOneTest, CommitsGloballyBestCellsFirst) {
  la::Matrix m = la::Matrix::FromRows({{0.9f, 0.8f}, {0.85f, 0.1f}});
  MatchResult r = GreedyOneToOne(m);
  // (0,0) = 0.9 first, then (1,0) blocked, (0,1) blocked, (1,1) last.
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(r.num_matched(), 2u);
}

TEST(MatchResultTest, PairsSkipsUnmatched) {
  MatchResult r;
  r.target_of_source = {2, -1, 0};
  std::vector<kg::AlignmentPair> pairs = r.Pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].source, 0u);
  EXPECT_EQ(pairs[0].target, 2u);
  EXPECT_EQ(pairs[1].source, 2u);
  EXPECT_EQ(pairs[1].target, 0u);
  EXPECT_EQ(r.num_matched(), 2u);
}

TEST(DeferredAcceptanceTest, EmptyAndSingleton) {
  EXPECT_TRUE(DeferredAcceptance(la::Matrix()).target_of_source.empty());
  la::Matrix one(1, 1);
  one.Fill(0.5f);
  EXPECT_EQ(DeferredAcceptance(one).target_of_source,
            (std::vector<int64_t>{0}));
}

TEST(DeferredAcceptanceTest, MoreSourcesThanTargetsLeavesSomeUnmatched) {
  Rng rng(3);
  la::Matrix m = RandomMatrix(&rng, 6, 4);
  MatchResult r = DeferredAcceptance(m);
  EXPECT_EQ(r.num_matched(), 4u);
  // No target matched twice.
  std::vector<int64_t> seen;
  for (int64_t t : r.target_of_source) {
    if (t >= 0) seen.push_back(t);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(DeferredAcceptanceTest, MoreTargetsThanSourcesMatchesAllSources) {
  Rng rng(4);
  la::Matrix m = RandomMatrix(&rng, 4, 9);
  MatchResult r = DeferredAcceptance(m);
  EXPECT_EQ(r.num_matched(), 4u);
}

TEST(DeferredAcceptanceTest, DeterministicUnderTies) {
  la::Matrix m(3, 3);
  m.Fill(0.5f);
  MatchResult a = DeferredAcceptance(m);
  MatchResult b = DeferredAcceptance(m);
  EXPECT_EQ(a.target_of_source, b.target_of_source);
  // Ties resolve by index: the identity matching.
  EXPECT_EQ(a.target_of_source, (std::vector<int64_t>{0, 1, 2}));
}

TEST(TargetProposingDaaTest, AlsoStableAndSourcePessimal) {
  Rng rng(21);
  la::Matrix m = RandomMatrix(&rng, 8, 8);
  MatchResult src_opt = DeferredAcceptance(m);
  MatchResult tgt_opt = DeferredAcceptanceTargetProposing(m);
  EXPECT_EQ(CountBlockingPairs(m, tgt_opt), 0u);
  EXPECT_EQ(tgt_opt.num_matched(), 8u);
  // Proposer-optimality: every source does at least as well under the
  // source-proposing matching.
  for (size_t i = 0; i < 8; ++i) {
    float s_score = m.at(i, static_cast<size_t>(src_opt.target_of_source[i]));
    float t_score = m.at(i, static_cast<size_t>(tgt_opt.target_of_source[i]));
    EXPECT_GE(s_score, t_score - 1e-6f);
  }
}

TEST(TargetProposingDaaTest, ReproducesFigure1DiagonalToo) {
  // The running example has a unique stable matching, so both variants
  // must agree.
  MatchResult r = DeferredAcceptanceTargetProposing(Figure1Matrix());
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{0, 1, 2}));
}

TEST(HungarianTest, SolvesKnownOptimum) {
  // Max-weight assignment of this matrix is the anti-diagonal.
  la::Matrix m = la::Matrix::FromRows(
      {{0.1f, 0.2f, 0.9f}, {0.2f, 0.8f, 0.3f}, {0.9f, 0.1f, 0.1f}});
  MatchResult r = HungarianMatch(m).value();
  EXPECT_EQ(r.target_of_source, (std::vector<int64_t>{2, 1, 0}));
}

TEST(HungarianTest, RejectsMoreSourcesThanTargets) {
  la::Matrix m(3, 2);
  EXPECT_TRUE(HungarianMatch(m).status().IsInvalidArgument());
}

TEST(HungarianTest, RectangularMatchesAllSources) {
  Rng rng(5);
  la::Matrix m = RandomMatrix(&rng, 3, 7);
  MatchResult r = HungarianMatch(m).value();
  EXPECT_EQ(r.num_matched(), 3u);
}

TEST(CountBlockingPairsTest, DetectsKnownBlockingPair) {
  // Matching u0-v1, u1-v0 under a matrix where both prefer the diagonal.
  la::Matrix m = la::Matrix::FromRows({{0.9f, 0.1f}, {0.1f, 0.9f}});
  MatchResult r;
  r.target_of_source = {1, 0};
  EXPECT_EQ(CountBlockingPairs(m, r), 2u);  // (u0,v0) and (u1,v1) both block
  r.target_of_source = {0, 1};
  EXPECT_EQ(CountBlockingPairs(m, r), 0u);
}

TEST(TotalWeightTest, SumsMatchedSimilarities) {
  la::Matrix m = Figure1Matrix();
  MatchResult r;
  r.target_of_source = {0, 1, 2};
  EXPECT_NEAR(TotalWeight(m, r), 0.9 + 0.5 + 0.3, 1e-6);
  r.target_of_source = {0, -1, 2};
  EXPECT_NEAR(TotalWeight(m, r), 0.9 + 0.3, 1e-6);
}

// ---------- Property tests over random similarity matrices ----------

struct MatchingCase {
  uint64_t seed;
  size_t n1, n2;
};

class MatchingPropertyTest : public ::testing::TestWithParam<MatchingCase> {};

TEST_P(MatchingPropertyTest, DaaIsStable) {
  MatchingCase c = GetParam();
  Rng rng(c.seed);
  la::Matrix m = RandomMatrix(&rng, c.n1, c.n2);
  MatchResult r = DeferredAcceptance(m);
  EXPECT_EQ(CountBlockingPairs(m, r), 0u);
  EXPECT_EQ(r.num_matched(), std::min(c.n1, c.n2));
}

TEST_P(MatchingPropertyTest, DaaIsOneToOne) {
  MatchingCase c = GetParam();
  Rng rng(c.seed ^ 0x77);
  la::Matrix m = RandomMatrix(&rng, c.n1, c.n2);
  MatchResult r = DeferredAcceptance(m);
  std::vector<char> used(c.n2, 0);
  for (int64_t t : r.target_of_source) {
    if (t < 0) continue;
    EXPECT_FALSE(used[static_cast<size_t>(t)]);
    used[static_cast<size_t>(t)] = 1;
  }
}

TEST_P(MatchingPropertyTest, HungarianDominatesOtherMatchersInWeight) {
  MatchingCase c = GetParam();
  if (c.n1 > c.n2) GTEST_SKIP() << "Hungarian requires n1 <= n2";
  Rng rng(c.seed ^ 0x99);
  la::Matrix m = RandomMatrix(&rng, c.n1, c.n2);
  double hungarian = TotalWeight(m, HungarianMatch(m).value());
  EXPECT_GE(hungarian + 1e-5, TotalWeight(m, DeferredAcceptance(m)));
  EXPECT_GE(hungarian + 1e-5, TotalWeight(m, GreedyOneToOne(m)));
}

TEST_P(MatchingPropertyTest, HungarianMatchesBruteForceOnSmallInstances) {
  MatchingCase c = GetParam();
  if (c.n1 > 5 || c.n1 > c.n2) GTEST_SKIP();
  Rng rng(c.seed ^ 0xbb);
  la::Matrix m = RandomMatrix(&rng, c.n1, c.n2);
  double best = -1.0;
  std::vector<size_t> perm(c.n2);
  std::iota(perm.begin(), perm.end(), size_t{0});
  // Enumerate all injective assignments via permutations of targets.
  std::sort(perm.begin(), perm.end());
  do {
    double w = 0.0;
    for (size_t i = 0; i < c.n1; ++i) w += m.at(i, perm[i]);
    best = std::max(best, w);
  } while (std::next_permutation(perm.begin(), perm.end()));
  double got = TotalWeight(m, HungarianMatch(m).value());
  EXPECT_NEAR(got, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MatchingPropertyTest,
    ::testing::Values(MatchingCase{1, 5, 5}, MatchingCase{2, 4, 6},
                      MatchingCase{3, 6, 4}, MatchingCase{4, 1, 8},
                      MatchingCase{5, 8, 1}, MatchingCase{6, 12, 12},
                      MatchingCase{7, 3, 3}, MatchingCase{8, 20, 25},
                      MatchingCase{9, 25, 20}, MatchingCase{10, 2, 2}));

}  // namespace
}  // namespace ceaff::matching
