#include "ceaff/data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

#include "ceaff/data/name_generator.h"
#include "ceaff/text/levenshtein.h"

namespace ceaff::data {
namespace {

SyntheticKgOptions SmallOptions() {
  SyntheticKgOptions o;
  o.name = "test";
  o.num_entities = 120;
  o.extra_entities = 10;
  o.avg_degree = 5.0;
  o.seed = 77;
  o.embedding_dim = 16;
  return o;
}

TEST(NameGeneratorTest, BaseTokenDeterministicAndPlausible) {
  EXPECT_EQ(BaseToken(5, 1), BaseToken(5, 1));
  EXPECT_NE(BaseToken(5, 1), BaseToken(6, 1));
  EXPECT_NE(BaseToken(5, 1), BaseToken(5, 2));
  std::string t = BaseToken(123, 9);
  EXPECT_GE(t.size(), 4u);
  EXPECT_LE(t.size(), 9u);
  for (char c : t) EXPECT_TRUE(c >= 'a' && c <= 'z');
}

TEST(NameGeneratorTest, ZeroEditFractionIsIdentity) {
  LanguageSpec en;
  en.code = "en";
  EXPECT_EQ(SurfaceToken(9, en, 3), BaseToken(9, 3));
}

TEST(NameGeneratorTest, EditFractionPerturbsProportionally) {
  LanguageSpec fr;
  fr.code = "fr";
  fr.edit_fraction = 0.3;
  LanguageSpec far;
  far.code = "xx";
  far.edit_fraction = 0.9;
  double close_sum = 0, far_sum = 0;
  for (uint64_t c = 0; c < 50; ++c) {
    std::string base = BaseToken(c, 5);
    close_sum += text::LevenshteinRatio(base, SurfaceToken(c, fr, 5));
    far_sum += text::LevenshteinRatio(base, SurfaceToken(c, far, 5));
  }
  EXPECT_GT(close_sum / 50, far_sum / 50);
  EXPECT_GT(close_sum / 50, 0.6);
}

TEST(NameGeneratorTest, CjkTokensAreMultibyteAndDisjointFromLatin) {
  LanguageSpec zh;
  zh.code = "zh";
  zh.script = Script::kCjk;
  std::string token = SurfaceToken(7, zh, 3);
  EXPECT_FALSE(token.empty());
  for (char c : token) {
    EXPECT_NE(static_cast<unsigned char>(c) & 0x80, 0);  // non-ASCII bytes
  }
  EXPECT_EQ(token, SurfaceToken(7, zh, 3));  // deterministic
  // Essentially zero string similarity with the Latin surface form.
  EXPECT_LT(text::LevenshteinRatio(token, BaseToken(7, 3)), 0.3);
}

TEST(GenerateBenchmarkTest, ValidatesOptions) {
  SyntheticKgOptions o = SmallOptions();
  o.num_entities = 0;
  EXPECT_TRUE(GenerateBenchmark(o).status().IsInvalidArgument());
  o = SmallOptions();
  o.triple_keep_prob = 1.5;
  EXPECT_TRUE(GenerateBenchmark(o).status().IsInvalidArgument());
  o = SmallOptions();
  o.num_relations = 0;
  EXPECT_TRUE(GenerateBenchmark(o).status().IsInvalidArgument());
  o = SmallOptions();
  o.embedding_dim = 0;
  EXPECT_TRUE(GenerateBenchmark(o).status().IsInvalidArgument());
}

TEST(GenerateBenchmarkTest, ShapesAndSplit) {
  SyntheticKgOptions o = SmallOptions();
  SyntheticBenchmark b = GenerateBenchmark(o).value();
  EXPECT_EQ(b.pair.kg1.num_entities(), 130u);  // 120 shared + 10 extra
  EXPECT_EQ(b.pair.kg2.num_entities(), 130u);
  EXPECT_GT(b.pair.kg1.num_triples(), 100u);
  EXPECT_EQ(b.pair.seed_alignment.size(), 36u);  // 30% of 120
  EXPECT_EQ(b.pair.test_alignment.size(), 84u);
  // Gold ids are the shared block [0, 120).
  for (const kg::AlignmentPair& p : b.pair.test_alignment) {
    EXPECT_LT(p.source, 120u);
    EXPECT_EQ(p.source, p.target);
  }
}

TEST(GenerateBenchmarkTest, DeterministicForSeed) {
  SyntheticBenchmark a = GenerateBenchmark(SmallOptions()).value();
  SyntheticBenchmark b = GenerateBenchmark(SmallOptions()).value();
  EXPECT_EQ(a.pair.kg1.num_triples(), b.pair.kg1.num_triples());
  EXPECT_EQ(a.pair.kg1.entity_name(5), b.pair.kg1.entity_name(5));
  SyntheticKgOptions o = SmallOptions();
  o.seed = 78;
  SyntheticBenchmark c = GenerateBenchmark(o).value();
  // Different seed changes at least the names.
  bool any_diff = false;
  for (uint32_t i = 0; i < 20; ++i) {
    any_diff |= a.pair.kg1.entity_name(i) != c.pair.kg1.entity_name(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateBenchmarkTest, MonoLingualNamesNearlyIdentical) {
  SyntheticKgOptions o = SmallOptions();
  o.name_token_drop = 0.0;
  o.lang1.code = "dbp";
  o.lang2.code = "dbp2";
  o.lang2.edit_fraction = 0.0;
  SyntheticBenchmark b = GenerateBenchmark(o).value();
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(b.pair.kg1.entity_name(i), b.pair.kg2.entity_name(i));
  }
}

TEST(GenerateBenchmarkTest, CrossLingualNamesDiffer) {
  SyntheticKgOptions o = SmallOptions();
  o.lang2.code = "zh";
  o.lang2.script = Script::kCjk;
  SyntheticBenchmark b = GenerateBenchmark(o).value();
  size_t diff = 0;
  for (uint32_t i = 0; i < 50; ++i) {
    diff += b.pair.kg1.entity_name(i) != b.pair.kg2.entity_name(i);
  }
  EXPECT_GT(diff, 45u);
}

TEST(GenerateBenchmarkTest, StoreCoversVocabulary) {
  SyntheticBenchmark b = GenerateBenchmark(SmallOptions()).value();
  EXPECT_GT(b.store.num_registered(), 100u);
  EXPECT_EQ(b.store.dim(), 16u);
}

TEST(StandardConfigsTest, NineNamedConfigs) {
  std::vector<SyntheticKgOptions> configs = StandardBenchmarkConfigs(0.1);
  ASSERT_EQ(configs.size(), 9u);
  std::set<std::string> names;
  for (const auto& c : configs) names.insert(c.name);
  EXPECT_EQ(names.size(), 9u);
  EXPECT_TRUE(names.count("DBP15K_ZH_EN"));
  EXPECT_TRUE(names.count("SRPRS_DBP_YG"));
  // Dense configs denser than sparse ones.
  auto zh = BenchmarkConfigByName("DBP15K_ZH_EN", 0.1).value();
  auto srprs = BenchmarkConfigByName("SRPRS_EN_FR", 0.1).value();
  EXPECT_GT(zh.avg_degree, srprs.avg_degree);
  EXPECT_TRUE(
      BenchmarkConfigByName("NOPE", 0.1).status().IsNotFound());
}

TEST(StandardConfigsTest, ScaleControlsEntityCount) {
  auto small = BenchmarkConfigByName("DBP15K_ZH_EN", 0.1).value();
  auto large = BenchmarkConfigByName("DBP15K_ZH_EN", 1.0).value();
  EXPECT_EQ(small.num_entities, 100u);
  EXPECT_EQ(large.num_entities, 1000u);
}

TEST(GenerateBenchmarkTest, AttributesGeneratedAndIncomplete) {
  SyntheticKgOptions o = SmallOptions();
  o.attrs_per_entity = 2.0;
  o.attr_keep_prob = 0.7;
  SyntheticBenchmark b = GenerateBenchmark(o).value();
  EXPECT_EQ(b.pair.kg1.num_attributes(), o.num_attributes);
  EXPECT_GT(b.pair.kg1.num_attribute_triples(), 100u);
  // Incompleteness: each KG keeps ~70% of world facts, so they differ.
  EXPECT_NE(b.pair.kg1.num_attribute_triples(),
            b.pair.kg2.num_attribute_triples());
  // Roughly 70% of ~240 world facts.
  EXPECT_LT(b.pair.kg1.num_attribute_triples(), 220u);
}

TEST(GenerateBenchmarkTest, ZeroAttributesDisablesGeneration) {
  SyntheticKgOptions o = SmallOptions();
  o.num_attributes = 0;
  SyntheticBenchmark b = GenerateBenchmark(o).value();
  EXPECT_EQ(b.pair.kg1.num_attribute_triples(), 0u);
  EXPECT_EQ(b.pair.kg1.num_attributes(), 0u);
}

TEST(GenerateBenchmarkTest, NumericAttributeValuesAgreeAcrossLanguages) {
  SyntheticKgOptions o = SmallOptions();
  o.attr_keep_prob = 1.0;
  o.lang2.code = "zh";
  o.lang2.script = Script::kCjk;
  SyntheticBenchmark b = GenerateBenchmark(o).value();
  // Numeric (even-id) attributes carry identical literals in both KGs:
  // find a shared (entity, attr) fact and compare.
  size_t checked = 0;
  for (const kg::AttributeTriple& t1 : b.pair.kg1.attribute_triples()) {
    if (t1.attribute % 2 != 0) continue;
    for (const kg::AttributeTriple& t2 : b.pair.kg2.attribute_triples()) {
      if (t2.entity == t1.entity && t2.attribute == t1.attribute &&
          t2.value == t1.value) {
        ++checked;
        break;
      }
    }
    if (checked > 5) break;
  }
  EXPECT_GT(checked, 5u);
}

TEST(GenerateBenchmarkTest, RejectsBadAttributeOptions) {
  SyntheticKgOptions o = SmallOptions();
  o.attr_keep_prob = -0.5;
  EXPECT_TRUE(GenerateBenchmark(o).status().IsInvalidArgument());
  o = SmallOptions();
  o.attrs_per_entity = -1.0;
  EXPECT_TRUE(GenerateBenchmark(o).status().IsInvalidArgument());
}

TEST(KsStatisticTest, IdenticalSamplesScoreZero) {
  std::vector<uint32_t> a{1, 2, 2, 3, 5, 8};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(KsStatisticTest, DisjointSamplesScoreOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 1, 2}, {10, 11}), 1.0);
  EXPECT_DOUBLE_EQ(KsStatistic({}, {1}), 1.0);
}

TEST(KsStatisticTest, PairedKgsHaveSimilarDegreeDistributions) {
  SyntheticBenchmark b = GenerateBenchmark(SmallOptions()).value();
  double d = KsStatistic(b.pair.kg1.Degrees(), b.pair.kg2.Degrees());
  EXPECT_LT(d, 0.2);
}

TEST(KsStatisticTest, DenseAndSparseProfilesDiffer) {
  auto dense_opt = BenchmarkConfigByName("DBP15K_ZH_EN", 0.15).value();
  auto sparse_opt = BenchmarkConfigByName("SRPRS_EN_FR", 0.15).value();
  SyntheticBenchmark dense = GenerateBenchmark(dense_opt).value();
  SyntheticBenchmark sparse = GenerateBenchmark(sparse_opt).value();
  double d = KsStatistic(dense.pair.kg1.Degrees(), sparse.pair.kg1.Degrees());
  EXPECT_GT(d, 0.3);
}

}  // namespace
}  // namespace ceaff::data
