#include "ceaff/ann/ivf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/la/matrix.h"

namespace ceaff::ann {
namespace {

/// Rows drawn from `clusters` well-separated Gaussian blobs, so k-means has
/// real structure to find.
la::Matrix ClusteredPoints(size_t n, size_t d, size_t clusters,
                           uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(n, d);
  for (size_t r = 0; r < n; ++r) {
    const size_t c = r % clusters;
    float* row = m.row(r);
    for (size_t j = 0; j < d; ++j) {
      row[j] = static_cast<float>(10.0 * static_cast<double>(c == j % clusters)
                                  + 0.1 * rng.NextGaussian());
    }
  }
  return m;
}

TEST(TrainIvfTest, ListsPartitionTheInputRows) {
  const la::Matrix points = ClusteredPoints(200, 8, 4, 2020);
  IvfOptions options;
  options.num_centroids = 4;
  auto ivf = TrainIvf(points, options);
  ASSERT_TRUE(ivf.ok()) << ivf.status().ToString();
  EXPECT_EQ(ivf->centroids.rows(), 4u);
  EXPECT_EQ(ivf->centroids.cols(), 8u);
  ASSERT_EQ(ivf->lists.size(), 4u);

  std::vector<int> seen(points.rows(), 0);
  for (const auto& list : ivf->lists) {
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1], list[i]);  // ascending within a list
    }
    for (uint32_t id : list) {
      ASSERT_LT(id, points.rows());
      ++seen[id];
    }
  }
  // Every row lands in exactly one list.
  for (size_t r = 0; r < points.rows(); ++r) {
    EXPECT_EQ(seen[r], 1) << "row " << r;
  }
}

TEST(TrainIvfTest, AutoCentroidCountIsSqrtN) {
  const la::Matrix points = ClusteredPoints(100, 4, 5, 1);
  auto ivf = TrainIvf(points, IvfOptions{});
  ASSERT_TRUE(ivf.ok());
  EXPECT_EQ(ivf->centroids.rows(), 10u);  // ceil(sqrt(100))
}

TEST(TrainIvfTest, TrainingIsDeterministic) {
  const la::Matrix points = ClusteredPoints(150, 6, 3, 77);
  IvfOptions options;
  options.num_centroids = 5;
  options.seed = 42;
  auto a = TrainIvf(points, options);
  auto b = TrainIvf(points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->lists, b->lists);
  EXPECT_EQ(std::memcmp(a->centroids.data(), b->centroids.data(),
                        a->centroids.size() * sizeof(float)),
            0);
}

TEST(TrainIvfTest, MoreCentroidsThanRowsIsClamped) {
  const la::Matrix points = ClusteredPoints(3, 4, 3, 5);
  IvfOptions options;
  options.num_centroids = 10;
  auto ivf = TrainIvf(points, options);
  ASSERT_TRUE(ivf.ok());
  EXPECT_EQ(ivf->centroids.rows(), 3u);
}

TEST(TrainIvfTest, EmptyInputIsInvalidArgument) {
  EXPECT_EQ(TrainIvf(la::Matrix(), IvfOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProbeCentroidsTest, RanksByInnerProductWithTiesTowardSmallerId) {
  la::Matrix centroids(4, 2);
  centroids.at(0, 0) = 1.0f;  // dot(q) = 1
  centroids.at(1, 0) = 3.0f;  // dot(q) = 3
  centroids.at(2, 0) = 2.0f;  // dot(q) = 2
  centroids.at(3, 0) = 3.0f;  // dot(q) = 3, tie with id 1
  const float q[2] = {1.0f, 0.0f};

  EXPECT_EQ(ProbeCentroids(centroids, q, 3),
            (std::vector<uint32_t>{1, 3, 2}));
  EXPECT_EQ(ProbeCentroids(centroids, q, 1), (std::vector<uint32_t>{1}));
  // nprobe beyond the centroid count clamps to all of them.
  EXPECT_EQ(ProbeCentroids(centroids, q, 99).size(), 4u);
}

}  // namespace
}  // namespace ceaff::ann
