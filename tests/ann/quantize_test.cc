#include "ceaff/ann/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/la/matrix.h"

namespace ceaff::ann {
namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* row = m.row(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng.NextGaussian());
    }
  }
  return m;
}

TEST(QuantizeTest, RoundTripErrorIsWithinHalfScale) {
  const la::Matrix m = RandomMatrix(17, 48, 7);
  const QuantizedRows q = QuantizeRowsInt8(m);
  ASSERT_EQ(q.codes.rows(), m.rows());
  ASSERT_EQ(q.codes.cols(), m.cols());
  ASSERT_EQ(q.scales.rows(), m.rows());
  ASSERT_EQ(q.scales.cols(), 1u);
  std::vector<float> decoded(m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const float scale = q.scales.at(r, 0);
    ASSERT_GT(scale, 0.0f);
    DequantizeRow(q.codes.row(r), scale, m.cols(), decoded.data());
    for (size_t c = 0; c < m.cols(); ++c) {
      // Symmetric round-to-nearest: |x - scale*code| <= scale/2.
      EXPECT_LE(std::abs(m.at(r, c) - decoded[c]), scale / 2.0f + 1e-7f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantizeTest, RowMaximaHitFullCodeRange) {
  la::Matrix m(1, 4);
  m.at(0, 0) = 2.0f;
  m.at(0, 1) = -2.0f;
  m.at(0, 2) = 1.0f;
  m.at(0, 3) = 0.0f;
  const QuantizedRows q = QuantizeRowsInt8(m);
  // max|x| maps to ±127 exactly; no -128 ever (symmetric range).
  EXPECT_EQ(q.codes.row(0)[0], 127);
  EXPECT_EQ(q.codes.row(0)[1], -127);
  EXPECT_EQ(q.codes.row(0)[3], 0);
  EXPECT_FLOAT_EQ(q.scales.at(0, 0), 2.0f / 127.0f);
}

TEST(QuantizeTest, ZeroRowsDecodeExactly) {
  la::Matrix m(3, 8);
  m.at(1, 2) = 1.5f;  // rows 0 and 2 stay all-zero
  const QuantizedRows q = QuantizeRowsInt8(m);
  EXPECT_EQ(q.scales.at(0, 0), 0.0f);
  EXPECT_EQ(q.scales.at(2, 0), 0.0f);
  std::vector<float> decoded(8, 42.0f);
  DequantizeRow(q.codes.row(0), q.scales.at(0, 0), 8, decoded.data());
  for (float v : decoded) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizeTest, QuantizedDotApproximatesExactDot) {
  const la::Matrix m = RandomMatrix(5, 32, 11);
  const la::Matrix queries = RandomMatrix(5, 32, 13);
  const QuantizedRows q = QuantizeRowsInt8(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    float exact = 0.0f;
    float max_abs_q = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) {
      exact += queries.at(r, c) * m.at(r, c);
      max_abs_q = std::max(max_abs_q, std::abs(queries.at(r, c)));
    }
    const float approx =
        q.scales.at(r, 0) * QuantizedDot(queries.row(r), q.codes.row(r), 32);
    // Elementwise error <= scale/2, so the dot error is bounded by
    // d * max|q| * scale / 2.
    const float bound = 32.0f * max_abs_q * q.scales.at(r, 0) / 2.0f + 1e-5f;
    EXPECT_LE(std::abs(approx - exact), bound) << "row " << r;
  }
}

TEST(Int8MatrixTest, CopyingAViewMaterialises) {
  std::vector<int8_t> storage = {1, -2, 3, 4, 5, -6};
  const Int8Matrix view = Int8Matrix::ConstView(storage.data(), 2, 3);
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.row(1)[2], -6);

  Int8Matrix copy = view;
  EXPECT_FALSE(copy.is_view());
  EXPECT_EQ(std::memcmp(copy.data(), storage.data(), storage.size()), 0);
  // The copy no longer aliases the original storage.
  storage[0] = 99;
  EXPECT_EQ(copy.row(0)[0], 1);
}

}  // namespace
}  // namespace ceaff::ann
