#include "ceaff/eval/analysis.h"

#include <gtest/gtest.h>

namespace ceaff::eval {
namespace {

TEST(AccuracyByDegreeTest, BucketsAndCounts) {
  kg::KnowledgeGraph g;
  // degrees: hub = 3, a = 1, b = 1, c = 1.
  g.AddTriple("hub", "r", "a");
  g.AddTriple("hub", "r", "b");
  g.AddTriple("hub", "r", "c");
  uint32_t hub = g.FindEntity("hub").value();
  uint32_t a = g.FindEntity("a").value();
  uint32_t b = g.FindEntity("b").value();

  matching::MatchResult match;
  match.target_of_source = {0, 1, 9};          // rows: hub, a, b
  std::vector<int64_t> gold = {0, 1, 2};       // b's decision is wrong
  std::vector<uint32_t> sources = {hub, a, b};

  std::vector<DegreeBucket> buckets =
      AccuracyByDegree(g, sources, match, gold, {1, 3});
  ASSERT_EQ(buckets.size(), 3u);  // [0,1], [2,3], [4,inf)
  // a and b (degree 1) land in the first bucket: 1 of 2 correct.
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[0].correct, 1u);
  EXPECT_DOUBLE_EQ(buckets[0].accuracy(), 0.5);
  // hub (degree 3) in the second: correct.
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].accuracy(), 1.0);
  // Nothing beyond degree 3.
  EXPECT_EQ(buckets[2].count, 0u);
  EXPECT_DOUBLE_EQ(buckets[2].accuracy(), 0.0);
}

TEST(AccuracyByDegreeTest, UnboundedTopBucket) {
  kg::KnowledgeGraph g;
  for (int i = 0; i < 20; ++i) {
    g.AddTriple("hub", "r" + std::to_string(i), "e" + std::to_string(i));
  }
  uint32_t hub = g.FindEntity("hub").value();
  matching::MatchResult match;
  match.target_of_source = {0};
  std::vector<DegreeBucket> buckets =
      AccuracyByDegree(g, {hub}, match, {0}, {1, 3});
  EXPECT_EQ(buckets[2].count, 1u);
  EXPECT_EQ(buckets[2].correct, 1u);
}

TEST(FormatDegreeBucketsTest, RendersRanges) {
  std::vector<DegreeBucket> buckets = {{0, 1, 10, 5},
                                       {2, UINT32_MAX, 4, 4}};
  std::string text = FormatDegreeBuckets(buckets);
  EXPECT_NE(text.find("0-1"), std::string::npos);
  EXPECT_NE(text.find("2+"), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace ceaff::eval
