#include "ceaff/eval/metrics.h"

#include <gtest/gtest.h>

namespace ceaff::eval {
namespace {

TEST(AccuracyTest, CountsExactMatches) {
  matching::MatchResult r;
  r.target_of_source = {0, 2, 1, -1};
  std::vector<int64_t> gold = {0, 1, 1, 3};
  // Row 0 correct, row 1 wrong, row 2 correct, row 3 unmatched.
  EXPECT_DOUBLE_EQ(Accuracy(r, gold), 0.5);
}

TEST(AccuracyTest, EmptyGoldIsZero) {
  matching::MatchResult r;
  std::vector<int64_t> gold;
  EXPECT_DOUBLE_EQ(Accuracy(r, gold), 0.0);
}

TEST(AccuracyTest, UnmatchedNeverCounts) {
  matching::MatchResult r;
  r.target_of_source = {-1, -1};
  std::vector<int64_t> gold = {0, 1};
  EXPECT_DOUBLE_EQ(Accuracy(r, gold), 0.0);
}

TEST(RankingMetricsTest, PerfectDiagonal) {
  la::Matrix m = la::Matrix::FromRows(
      {{0.9f, 0.1f, 0.0f}, {0.0f, 0.8f, 0.1f}, {0.1f, 0.0f, 0.7f}});
  std::vector<int64_t> gold = {0, 1, 2};
  RankingMetrics r = ComputeRankingMetrics(m, gold);
  EXPECT_DOUBLE_EQ(r.hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(r.hits_at_10, 1.0);
  EXPECT_DOUBLE_EQ(r.mrr, 1.0);
}

TEST(RankingMetricsTest, KnownRanks) {
  // Gold of row 0 ranks 2nd; gold of row 1 ranks 1st.
  la::Matrix m = la::Matrix::FromRows({{0.5f, 0.9f}, {0.1f, 0.6f}});
  std::vector<int64_t> gold = {0, 1};
  RankingMetrics r = ComputeRankingMetrics(m, gold);
  EXPECT_DOUBLE_EQ(r.hits_at_1, 0.5);
  EXPECT_DOUBLE_EQ(r.hits_at_10, 1.0);
  EXPECT_DOUBLE_EQ(r.mrr, (0.5 + 1.0) / 2.0);
}

TEST(RankingMetricsTest, TieBreaksByLowerIndexOptimistically) {
  la::Matrix m = la::Matrix::FromRows({{0.5f, 0.5f}});
  // Gold at column 0: rank 1 despite the tie with column 1.
  EXPECT_DOUBLE_EQ(ComputeRankingMetrics(m, {0}).hits_at_1, 1.0);
  // Gold at column 1: loses the tie to column 0 -> rank 2.
  EXPECT_DOUBLE_EQ(ComputeRankingMetrics(m, {1}).hits_at_1, 0.0);
  EXPECT_DOUBLE_EQ(ComputeRankingMetrics(m, {1}).mrr, 0.5);
}

TEST(RankingMetricsTest, Hits10CoversTopTenOnly) {
  la::Matrix m(1, 20);
  for (size_t j = 0; j < 20; ++j) {
    m.at(0, j) = 1.0f - 0.01f * static_cast<float>(j);
  }
  // Gold at column 9 -> rank 10 -> inside Hits@10.
  EXPECT_DOUBLE_EQ(ComputeRankingMetrics(m, {9}).hits_at_10, 1.0);
  // Gold at column 10 -> rank 11 -> outside.
  EXPECT_DOUBLE_EQ(ComputeRankingMetrics(m, {10}).hits_at_10, 0.0);
}

TEST(HitsAtKTest, MatchesRankingMetrics) {
  la::Matrix m = la::Matrix::FromRows({{0.1f, 0.9f, 0.5f},
                                       {0.7f, 0.2f, 0.3f}});
  std::vector<int64_t> gold = {2, 0};
  RankingMetrics r = ComputeRankingMetrics(m, gold);
  EXPECT_DOUBLE_EQ(HitsAtK(m, gold, 1), r.hits_at_1);
  EXPECT_DOUBLE_EQ(HitsAtK(m, gold, 10), r.hits_at_10);
  EXPECT_DOUBLE_EQ(HitsAtK(m, gold, 2), 1.0);
}

TEST(HitsAtKTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(HitsAtK(la::Matrix(), {}, 1), 0.0);
}


TEST(PrMetricsTest, TotalMatchingEqualsAccuracy) {
  matching::MatchResult r;
  r.target_of_source = {0, 2, 2};
  std::vector<int64_t> gold = {0, 1, 2};
  PrMetrics m = ComputePrMetrics(r, gold);
  EXPECT_EQ(m.decided, 3u);
  EXPECT_EQ(m.correct, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.f1, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.precision, Accuracy(r, gold));
}

TEST(PrMetricsTest, AbstentionsRaisePrecisionNotRecall) {
  matching::MatchResult r;
  r.target_of_source = {0, -1, -1, 3};
  std::vector<int64_t> gold = {0, 1, 2, 3};
  PrMetrics m = ComputePrMetrics(r, gold);
  EXPECT_EQ(m.decided, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 2.0 / 3.0);
}

TEST(PrMetricsTest, NoDecisionsIsAllZero) {
  matching::MatchResult r;
  r.target_of_source = {-1, -1};
  PrMetrics m = ComputePrMetrics(r, {0, 1});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

}  // namespace
}  // namespace ceaff::eval
