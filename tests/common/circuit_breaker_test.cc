#include "ceaff/common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace ceaff {
namespace {

// Virtual-time tests: the breaker never reads a clock.

constexpr uint64_t kSec = 1'000'000'000ull;

CircuitBreaker::Options SmallOptions() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_ns = 10 * kSec;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker breaker(SmallOptions());
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(0));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow(0));
    breaker.RecordFailure(0);
    EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed) << i;
  }
  ASSERT_TRUE(breaker.Allow(0));
  breaker.RecordFailure(0);  // third consecutive failure trips it
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(1));
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure(0);
  breaker.RecordFailure(0);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.RecordFailure(0);
  breaker.RecordFailure(0);
  // Still only 2 consecutive: closed.
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(0));
  breaker.RecordSuccess();
}

TEST(CircuitBreakerTest, CooldownAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  ASSERT_EQ(breaker.state(0), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(10 * kSec - 1));  // still cooling down
  EXPECT_TRUE(breaker.Allow(10 * kSec));       // the probe
  // The probe has not reported back: nobody else gets through.
  EXPECT_FALSE(breaker.Allow(10 * kSec));
  EXPECT_FALSE(breaker.Allow(11 * kSec));
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.Allow(10 * kSec));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(10 * kSec), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(10 * kSec));
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAFullCooldown) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.Allow(10 * kSec));
  breaker.RecordFailure(10 * kSec);  // probe failed: reopen immediately
  EXPECT_EQ(breaker.state(10 * kSec), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(19 * kSec));
  EXPECT_TRUE(breaker.Allow(20 * kSec));  // next probe after full cooldown
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.times_opened(), 2u);
}

TEST(CircuitBreakerTest, StateReportsHalfOpenOnceCooldownElapses) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(5 * kSec), CircuitBreaker::State::kOpen);
  // state() previews what Allow() would transition to, without mutating.
  EXPECT_EQ(breaker.state(10 * kSec), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(10 * kSec));
  breaker.RecordSuccess();
}

}  // namespace
}  // namespace ceaff
