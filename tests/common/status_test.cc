#include "ceaff/common/status.h"

#include <gtest/gtest.h>

#include "ceaff/common/statusor.h"

namespace ceaff {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, RunControlFactoriesSetCodeAndPredicate) {
  Status cancelled = Status::Cancelled("stopped by user");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: stopped by user");

  Status late = Status::DeadlineExceeded("out of time");
  EXPECT_TRUE(late.IsDeadlineExceeded());
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);

  Status corrupt = Status::DataLoss("CRC mismatch");
  EXPECT_TRUE(corrupt.IsDataLoss());
  EXPECT_EQ(corrupt.code(), StatusCode::kDataLoss);
  // DataLoss (bad bytes) is distinct from IOError (failed environment).
  EXPECT_FALSE(corrupt.IsIOError());

  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  CEAFF_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  CEAFF_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok = 5;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.value_or(-1), 5);

  StatusOr<int> err = Status::NotFound("missing");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(StatusOrTest, AssignOrReturnPropagatesAndUnwraps) {
  StatusOr<int> a = DoublePositive(21);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), 42);
  EXPECT_TRUE(DoublePositive(0).status().IsOutOfRange());
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> p = std::make_unique<int>(7);
  ASSERT_TRUE(p.ok());
  std::unique_ptr<int> owned = std::move(p).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperatorAccessesMembers) {
  StatusOr<std::string> s = std::string("hello");
  EXPECT_EQ(s->size(), 5u);
}

}  // namespace
}  // namespace ceaff
