#include "ceaff/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "ceaff/common/random.h"

namespace ceaff {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(pool.Submit([&counter] { counter.fetch_add(1); }),
              SubmitResult::kAccepted);
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ClampsDegenerateSizes) {
  ThreadPool pool(0, 0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_GE(pool.queue_capacity(), 1u);
  std::atomic<int> ran{0};
  ASSERT_EQ(pool.Submit([&ran] { ran.fetch_add(1); }),
            SubmitResult::kAccepted);
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksAndRejectsNewOnes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2, 64);
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(pool.Submit([&counter] {
                  std::this_thread::sleep_for(std::chrono::microseconds(100));
                  counter.fetch_add(1);
                }),
                SubmitResult::kAccepted);
    }
    pool.Shutdown();
    EXPECT_EQ(counter.load(), 50);  // drained, not dropped
    // Both refusals after Shutdown() are terminal, never kQueueFull.
    EXPECT_EQ(pool.Submit([&counter] { counter.fetch_add(1); }),
              SubmitResult::kShuttingDown);
    EXPECT_EQ(pool.TrySubmit([&counter] { counter.fetch_add(1); }),
              SubmitResult::kShuttingDown);
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TrySubmitShedsLoadWhenQueueIsFull) {
  ThreadPool pool(1, 1);
  std::mutex gate;
  gate.lock();
  // Occupy the single worker...
  ASSERT_EQ(pool.Submit([&gate] { std::lock_guard<std::mutex> g(gate); }),
            SubmitResult::kAccepted);
  // ...then fill the single queue slot (may need a moment for the worker
  // to pick up the first task).
  while (pool.TrySubmit([] {}) != SubmitResult::kAccepted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue is now full: TrySubmit must refuse rather than block, and the
  // refusal must say "full", not "shutting down" — callers shed or retry
  // on the former and give up on the latter.
  EXPECT_EQ(pool.TrySubmit([] {}), SubmitResult::kQueueFull);
  gate.unlock();
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitBlocksUntilSpaceThenSucceeds) {
  ThreadPool pool(1, 1);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    // With capacity 1 many of these block on the full queue; all must
    // still run exactly once.
    ASSERT_EQ(pool.Submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                done.fetch_add(1);
              }),
              SubmitResult::kAccepted);
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(&pool, n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// Regression: ParallelFor's completion barrier must not let the caller
// return (destroying the stack-local mutex/condvar) while the finishing
// worker is still between bumping the done-count and notifying. Many
// tiny back-to-back calls maximise that window; under TSan the old
// atomic-counter barrier showed up as a worker locking a dead mutex.
TEST(ParallelForTest, RapidSmallCallsNeverRaceTheBarrierTeardown) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 500; ++round) {
    ParallelFor(&pool, 4, [&total](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000u);
}

TEST(ParallelForTest, NullPoolFallsBackToSequential) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, hits.size(), [&hits](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
  ParallelFor(nullptr, 0, [&hits](size_t) { FAIL(); });
}

TEST(ThreadLocalRngTest, SameInstanceWithinAThread) {
  Rng& a = ThreadLocalRng();
  Rng& b = ThreadLocalRng();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadLocalRngTest, DistinctStreamsAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kDraws = 16;
  std::mutex mu;
  std::set<uint64_t> firsts;
  std::vector<std::vector<uint64_t>> streams(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng& rng = ThreadLocalRng();
      std::vector<uint64_t> draws;
      for (int i = 0; i < kDraws; ++i) draws.push_back(rng.NextU64());
      std::lock_guard<std::mutex> lock(mu);
      firsts.insert(draws[0]);
      streams[t] = std::move(draws);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread's stream starts differently (streams are seeded from a
  // process-wide counter, so collisions would mean shared state).
  EXPECT_EQ(firsts.size(), static_cast<size_t>(kThreads));
  for (int a = 0; a < kThreads; ++a) {
    for (int b = a + 1; b < kThreads; ++b) {
      EXPECT_NE(streams[a], streams[b]);
    }
  }
}

}  // namespace
}  // namespace ceaff
