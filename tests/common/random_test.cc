#include "ceaff/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ceaff {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a.NextU64() != b.NextU64());
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextUniformRespectsRange) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, TruncatedNormalStaysWithinTwoSigma) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    double x = rng.NextTruncatedNormal(1.0, 0.5);
    EXPECT_GE(x, 1.0 - 2 * 0.5);
    EXPECT_LE(x, 1.0 + 2 * 0.5);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  // The child stream should not replay the parent stream.
  Rng a2(23);
  a2.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.NextU64() == a2.NextU64());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ShuffleEmptyAndSingletonAreNoops) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(41);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(HashBytesTest, DeterministicAndSeedSensitive) {
  std::string s = "entity name";
  EXPECT_EQ(HashBytes(s.data(), s.size()), HashBytes(s.data(), s.size()));
  EXPECT_NE(HashBytes(s.data(), s.size(), 1), HashBytes(s.data(), s.size(), 2));
  std::string t = "entity namf";
  EXPECT_NE(HashBytes(s.data(), s.size()), HashBytes(t.data(), t.size()));
}

}  // namespace
}  // namespace ceaff
