#include "ceaff/common/flags.h"

#include <gtest/gtest.h>

#include "ceaff/common/logging.h"

namespace ceaff {
namespace {

FlagParser ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  auto p = FlagParser::Parse(static_cast<int>(args.size()), args.data());
  CEAFF_CHECK(p.ok());
  return std::move(p).value();
}

TEST(FlagParserTest, SpaceAndEqualsForms) {
  FlagParser p = ParseArgs({"--name", "value", "--count=7"});
  EXPECT_EQ(p.GetString("name", ""), "value");
  EXPECT_EQ(p.GetInt("count", 0), 7);
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser p = ParseArgs({"align", "--data", "dir", "extra"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"align", "extra"}));
  EXPECT_EQ(p.GetString("data", ""), "dir");
}

TEST(FlagParserTest, BooleanStyleFlag) {
  FlagParser p = ParseArgs({"--verbose", "--out", "file"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_EQ(p.GetString("out", ""), "file");
  EXPECT_FALSE(p.GetBool("absent", false));
  EXPECT_TRUE(p.GetBool("absent", true));
}

TEST(FlagParserTest, BoolValueSpellings) {
  FlagParser p = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=no",
                            "--e=false"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
  EXPECT_FALSE(p.GetBool("e", true));
}

TEST(FlagParserTest, NumericFallbacks) {
  FlagParser p = ParseArgs({"--x=abc", "--y=2.5"});
  EXPECT_EQ(p.GetInt("x", 42), 42);          // malformed -> fallback
  EXPECT_DOUBLE_EQ(p.GetDouble("y", 0), 2.5);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 1.5), 1.5);
}

TEST(FlagParserTest, DoubleDashEndsFlagParsing) {
  FlagParser p = ParseArgs({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(p.Has("a"));
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagParserTest, UnreadFlagsReportsTypos) {
  FlagParser p = ParseArgs({"--used=1", "--typo=2"});
  EXPECT_EQ(p.GetInt("used", 0), 1);
  std::vector<std::string> unread = p.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

}  // namespace
}  // namespace ceaff
