#include "ceaff/common/cancellation.h"

#include <gtest/gtest.h>

#include <thread>

namespace ceaff {
namespace {

TEST(CancellationTokenTest, FreshTokenIsOk) {
  CancellationToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTokenTest, RequestCancelReturnsCancelled) {
  CancellationToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.cancel_requested());
  Status st = token.Check("unit test");
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_NE(st.message().find("unit test"), std::string::npos);
}

TEST(CancellationTokenTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  CancellationToken token;
  token.SetDeadlineAfterMillis(0);  // non-positive → expires immediately
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.Check("sinkhorn").IsDeadlineExceeded());
}

TEST(CancellationTokenTest, FutureDeadlineStaysOkUntilItPasses) {
  CancellationToken token;
  token.SetDeadlineAfterMillis(60'000);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTokenTest, CancelTakesPrecedenceOverDeadline) {
  CancellationToken token;
  token.SetDeadlineAfterMillis(-1);
  token.RequestCancel();
  EXPECT_TRUE(token.Check().IsCancelled());
}

TEST(CancellationTokenTest, ClearDeadlineKeepsCancelFlag) {
  CancellationToken token;
  token.SetDeadlineAfterMillis(-1);
  token.RequestCancel();
  token.ClearDeadline();
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.Check().IsCancelled());
}

TEST(CancellationTokenTest, ResetRearmsForAFreshRun) {
  CancellationToken token;
  token.RequestCancel();
  token.SetDeadlineAfterMillis(-1);
  token.Reset();
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTokenTest, CancelFromAnotherThreadIsObserved) {
  CancellationToken token;
  std::thread canceller([&token] { token.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(token.Check().IsCancelled());
}

TEST(CheckCancelTest, NullTokenMeansNeverCancelled) {
  EXPECT_TRUE(CheckCancel(nullptr).ok());
  EXPECT_TRUE(CheckCancel(nullptr, "anywhere").ok());
}

TEST(CheckCancelTest, ForwardsToTheToken) {
  CancellationToken token;
  EXPECT_TRUE(CheckCancel(&token, "loop").ok());
  token.RequestCancel();
  EXPECT_TRUE(CheckCancel(&token, "loop").IsCancelled());
}

}  // namespace
}  // namespace ceaff
