#include "ceaff/common/string_util.h"

#include <gtest/gtest.h>

namespace ceaff {
namespace {

TEST(SplitTest, SplitsOnDelimiterKeepingEmptyFields) {
  EXPECT_EQ(Split("a\tb\tc", '\t'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a\t\tc", '\t'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  EXPECT_EQ(SplitWhitespace("  foo  bar\tbaz\n"),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\t\n"), "");
  EXPECT_EQ(StripAsciiWhitespace("z"), "z");
}

TEST(CaseTest, AsciiToLowerLeavesHighBytes) {
  EXPECT_EQ(AsciiToLower("MiXeD 123"), "mixed 123");
  // UTF-8 multi-byte content must pass through unchanged.
  EXPECT_EQ(AsciiToLower("\xD0\xB0З"), "\xD0\xB0З");
}

TEST(AffixTest, StartsWithEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", "file.tsv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(NormalizeEntityNameTest, ReplacesUnderscoresAndCollapsesRuns) {
  EXPECT_EQ(NormalizeEntityName("Los_Angeles"), "Los Angeles");
  EXPECT_EQ(NormalizeEntityName("__a__b__"), "a b");
  EXPECT_EQ(NormalizeEntityName("a  b"), "a b");
  EXPECT_EQ(NormalizeEntityName(""), "");
  EXPECT_EQ(NormalizeEntityName("___"), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace ceaff
