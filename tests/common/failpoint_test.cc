#include "ceaff/common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

// The registry is process-global, but gtest_discover_tests runs every TEST
// in its own process, so each test starts from a clean slate (modulo sites
// other code registered during static init — none today).

namespace ceaff {
namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(FailpointTest, UnarmedSiteSucceedsAndIsCounted) {
  failpoint::ResetHitCounts();  // order-independence when run in-process
  EXPECT_EQ(failpoint::HitCount("fp.unarmed"), 0u);
  EXPECT_TRUE(failpoint::Hit("fp.unarmed").ok());
  EXPECT_TRUE(failpoint::Hit("fp.unarmed").ok());
  EXPECT_EQ(failpoint::HitCount("fp.unarmed"), 2u);
  EXPECT_TRUE(Contains(failpoint::RegisteredSites(), "fp.unarmed"));
  EXPECT_TRUE(Contains(failpoint::HitSites(), "fp.unarmed"));
}

TEST(FailpointTest, ErrorActionInjectsIOError) {
  ASSERT_TRUE(failpoint::Configure("fp.err=error").ok());
  Status st = failpoint::Hit("fp.err");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("fp.err"), std::string::npos);
  // Other sites are untouched.
  EXPECT_TRUE(failpoint::Hit("fp.other").ok());
}

TEST(FailpointTest, ConfigureReplacesAllPreviousArms) {
  ASSERT_TRUE(failpoint::Configure("fp.a=error;fp.b=error").ok());
  EXPECT_FALSE(failpoint::Hit("fp.a").ok());
  EXPECT_FALSE(failpoint::Hit("fp.b").ok());
  // fp.a absent from the new spec: disarmed, not remembered.
  ASSERT_TRUE(failpoint::Configure("fp.b=error").ok());
  EXPECT_TRUE(failpoint::Hit("fp.a").ok());
  EXPECT_FALSE(failpoint::Hit("fp.b").ok());
  // Empty spec disarms everything.
  ASSERT_TRUE(failpoint::Configure("").ok());
  EXPECT_TRUE(failpoint::Hit("fp.b").ok());
}

TEST(FailpointTest, OffActionDisarmsOneSiteInsideASpec) {
  ASSERT_TRUE(failpoint::Configure("fp.a=error").ok());
  ASSERT_TRUE(failpoint::Configure("fp.a=off;fp.b=error").ok());
  EXPECT_TRUE(failpoint::Hit("fp.a").ok());
  EXPECT_FALSE(failpoint::Hit("fp.b").ok());
}

TEST(FailpointTest, ClearDisarmsButKeepsCounters) {
  failpoint::ResetHitCounts();  // order-independence when run in-process
  ASSERT_TRUE(failpoint::Configure("fp.a=error").ok());
  EXPECT_FALSE(failpoint::Hit("fp.a").ok());
  failpoint::Clear();
  EXPECT_TRUE(failpoint::Hit("fp.a").ok());
  EXPECT_EQ(failpoint::HitCount("fp.a"), 2u);
}

TEST(FailpointTest, DelayActionStallsThenSucceeds) {
  ASSERT_TRUE(failpoint::Configure("fp.slow=delay:30").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(failpoint::Hit("fp.slow").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(FailpointTest, OneInNFailsDeterministicallyEveryNth) {
  ASSERT_TRUE(failpoint::Configure("fp.flaky=1in3").ok());
  std::vector<bool> outcomes;
  for (int i = 0; i < 9; ++i) {
    outcomes.push_back(failpoint::Hit("fp.flaky").ok());
  }
  const std::vector<bool> expected = {true, true, false, true, true,
                                      false, true, true, false};
  EXPECT_EQ(outcomes, expected);
  // Re-arming resets the cadence.
  ASSERT_TRUE(failpoint::Configure("fp.flaky=1in3").ok());
  EXPECT_TRUE(failpoint::Hit("fp.flaky").ok());
}

TEST(FailpointTest, MalformedSpecsAreRejectedWithoutChangingArms) {
  ASSERT_TRUE(failpoint::Configure("fp.a=error").ok());
  for (const char* bad :
       {"fp.a", "=error", "fp.a=explode", "fp.a=delay:abc", "fp.a=1in0",
        "fp.a=1inx"}) {
    Status st = failpoint::Configure(bad);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad;
  }
  // The original arm survived every rejected spec.
  EXPECT_FALSE(failpoint::Hit("fp.a").ok());
}

TEST(FailpointTest, ResetHitCountsZeroesDiscoveryState) {
  ASSERT_TRUE(failpoint::Hit("fp.seen").ok());
  ASSERT_TRUE(Contains(failpoint::HitSites(), "fp.seen"));
  failpoint::ResetHitCounts();
  EXPECT_EQ(failpoint::HitCount("fp.seen"), 0u);
  EXPECT_FALSE(Contains(failpoint::HitSites(), "fp.seen"));
  // Registration (unlike hit state) survives the reset.
  EXPECT_TRUE(Contains(failpoint::RegisteredSites(), "fp.seen"));
}

TEST(FailpointTest, MacroPropagatesInjectedErrorFromStatusFunction) {
  ASSERT_TRUE(failpoint::Configure("fp.macro=error").ok());
  auto guarded = []() -> Status {
    CEAFF_FAILPOINT("fp.macro");
    return Status::InvalidArgument("unreachable");
  };
  EXPECT_EQ(guarded().code(), StatusCode::kIOError);
  failpoint::Clear();
  EXPECT_EQ(guarded().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ceaff
