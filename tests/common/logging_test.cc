#include "ceaff/common/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/timer.h"

namespace ceaff {
namespace {

/// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotReachStderr) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  CEAFF_LOG(Info) << "should be invisible";
  CEAFF_LOG(Warning) << "also invisible";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(captured.empty()) << captured;
}

TEST_F(LoggingTest, EnabledMessagesCarryLevelAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  CEAFF_LOG(Warning) << "watch out " << 42;
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("watch out 42"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilentlyOnTrue) {
  ::testing::internal::CaptureStderr();
  CEAFF_CHECK(1 + 1 == 2) << "never printed";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, SinkRedirectCapturesMessages) {
  SetLogLevel(LogLevel::kInfo);
  std::ostringstream sink;
  SetLogSinkForTest(&sink);
  CEAFF_LOG(Info) << "redirected " << 7;
  SetLogSinkForTest(nullptr);
  EXPECT_NE(sink.str().find("redirected 7"), std::string::npos);
  // After the reset, messages go back to stderr, not the old sink.
  ::testing::internal::CaptureStderr();
  CEAFF_LOG(Info) << "back on stderr";
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("back on stderr"),
            std::string::npos);
  EXPECT_EQ(sink.str().find("back on stderr"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentMessagesNeverInterleaveMidLine) {
  SetLogLevel(LogLevel::kInfo);
  std::ostringstream sink;
  SetLogSinkForTest(&sink);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        CEAFF_LOG(Info) << "thread=" << t << " msg=" << i << " tail";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetLogSinkForTest(nullptr);

  // Every line must be one complete message: prefix, payload, "tail".
  std::istringstream lines(sink.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NE(line.find("INFO"), std::string::npos) << line;
    EXPECT_NE(line.find("thread="), std::string::npos) << line;
    EXPECT_EQ(line.rfind(" tail"), line.size() - 5) << line;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ CEAFF_CHECK(false) << "boom"; }, "check failed: false");
}

TEST(WallTimerTest, MeasuresElapsedTimeMonotonically) {
  WallTimer t;
  double first = t.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  double second = t.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
  EXPECT_GE(t.ElapsedMillis(), 15.0 * 0.5);  // allow coarse clocks
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), second);
}

}  // namespace
}  // namespace ceaff
