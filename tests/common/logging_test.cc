#include "ceaff/common/logging.h"

#include <gtest/gtest.h>

#include <thread>

#include "ceaff/common/timer.h"

namespace ceaff {
namespace {

/// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotReachStderr) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  CEAFF_LOG(Info) << "should be invisible";
  CEAFF_LOG(Warning) << "also invisible";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(captured.empty()) << captured;
}

TEST_F(LoggingTest, EnabledMessagesCarryLevelAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  CEAFF_LOG(Warning) << "watch out " << 42;
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("watch out 42"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilentlyOnTrue) {
  ::testing::internal::CaptureStderr();
  CEAFF_CHECK(1 + 1 == 2) << "never printed";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ CEAFF_CHECK(false) << "boom"; }, "check failed: false");
}

TEST(WallTimerTest, MeasuresElapsedTimeMonotonically) {
  WallTimer t;
  double first = t.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  double second = t.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
  EXPECT_GE(t.ElapsedMillis(), 15.0 * 0.5);  // allow coarse clocks
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), second);
}

}  // namespace
}  // namespace ceaff
