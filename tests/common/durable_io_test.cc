#include "ceaff/common/durable_io.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "testing/fault_injection.h"

namespace ceaff {
namespace {

namespace fs = std::filesystem;

using ::ceaff::testing::FlipBit;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::WriteText;

std::string MustRead(const std::string& path) {
  auto bytes = ReadFileToString(path);
  CEAFF_CHECK(bytes.ok()) << bytes.status().ToString();
  return std::move(bytes).value();
}

std::vector<std::string> TempFilesIn(const std::string& dir) {
  std::vector<std::string> temps;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string fname = entry.path().filename().string();
    if (fname.find(".tmp.") != std::string::npos) temps.push_back(fname);
  }
  return temps;
}

/// Disarms every failpoint on scope exit so an ASSERT cannot leak arms.
struct FailpointGuard {
  FailpointGuard() { failpoint::ResetHitCounts(); }
  ~FailpointGuard() { failpoint::Clear(); }
};

TEST(WriteFileAtomicTest, WritesAndOverwrites) {
  ScratchDir dir("wfa");
  const std::string path = dir.File("artifact.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(MustRead(path), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second, longer payload").ok());
  EXPECT_EQ(MustRead(path), "second, longer payload");
  EXPECT_TRUE(TempFilesIn(dir.path()).empty());
}

TEST(WriteFileAtomicTest, EvaluatesEveryProtocolSiteInSyscallOrder) {
  FailpointGuard guard;
  ScratchDir dir("wfa_sites");
  ASSERT_TRUE(WriteFileAtomic(dir.File("a.bin"), "x", "sitescope").ok());
  // All four steps of the protocol evaluated exactly once per write. The
  // crash harness leans on this discovery to arm a crash at each in turn.
  for (const char* step : {"before_tmp_write", "after_tmp_write",
                           "before_rename", "before_dir_fsync"}) {
    EXPECT_EQ(failpoint::HitCount(std::string("sitescope.") + step), 1u)
        << step;
  }
}

TEST(WriteFileAtomicTest, InjectedFailureAtEachSiteLeavesOldFileAndNoTemp) {
  FailpointGuard guard;
  ScratchDir dir("wfa_inject");
  const std::string path = dir.File("artifact.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "old contents", "inj").ok());

  for (const char* step :
       {"inj.before_tmp_write", "inj.after_tmp_write", "inj.before_rename"}) {
    ASSERT_TRUE(failpoint::Configure(std::string(step) + "=error").ok());
    Status st = WriteFileAtomic(path, "NEW", "inj");
    EXPECT_EQ(st.code(), StatusCode::kIOError) << step;
    // The failed write is invisible: old bytes intact, temp removed.
    EXPECT_EQ(MustRead(path), "old contents") << step;
    EXPECT_TRUE(TempFilesIn(dir.path()).empty()) << step;
  }

  // before_dir_fsync sits after the rename: the new file is already
  // published (only its directory entry's durability is in doubt), so the
  // caller sees the error but the content is the complete new version —
  // never a mixture.
  ASSERT_TRUE(failpoint::Configure("inj.before_dir_fsync=error").ok());
  EXPECT_EQ(WriteFileAtomic(path, "NEW", "inj").code(), StatusCode::kIOError);
  EXPECT_EQ(MustRead(path), "NEW");
  EXPECT_TRUE(TempFilesIn(dir.path()).empty());
}

TEST(WriteFileAtomicTest, RenameNeverPrecedesTheFileFsync) {
  FailpointGuard guard;
  ScratchDir dir("wfa_order");
  const std::string path = dir.File("artifact.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "old", "order").ok());
  failpoint::ResetHitCounts();
  // `order.before_rename` sits strictly between fsync(file) and rename(2).
  // Stopping the protocol there shows the ordering: the payload write and
  // its fsync have completed (both earlier sites were crossed, and the
  // protocol advanced past the fsync to reach this site) — yet the
  // destination is untouched. The publish therefore strictly follows the
  // file fsync; a crash can never expose a renamed-but-unsynced file.
  ASSERT_TRUE(failpoint::Configure("order.before_rename=error").ok());
  EXPECT_EQ(WriteFileAtomic(path, "NEW", "order").code(),
            StatusCode::kIOError);
  EXPECT_EQ(failpoint::HitCount("order.after_tmp_write"), 1u);
  EXPECT_EQ(failpoint::HitCount("order.before_rename"), 1u);
  EXPECT_EQ(failpoint::HitCount("order.before_dir_fsync"), 0u);
  EXPECT_EQ(MustRead(path), "old");
}

TEST(WriteFileAtomicTest, ReadMissingFileIsIOError) {
  ScratchDir dir("wfa_missing");
  EXPECT_EQ(ReadFileToString(dir.File("nope")).status().code(),
            StatusCode::kIOError);
}

TEST(GenerationalStoreTest, PutGetRoundTripAndGenerationNumbering) {
  ScratchDir dir("gen_rt");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());

  EXPECT_FALSE(store.Has("a"));
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.CurrentPath("a").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.Put("a", "v1").ok());
  ASSERT_TRUE(store.Put("a", "v2").ok());
  EXPECT_TRUE(store.Has("a"));
  EXPECT_EQ(store.Generations("a"), (std::vector<uint64_t>{1, 2}));
  auto bytes = store.Get("a");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes.value(), "v2");
  auto path = store.CurrentPath("a");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path.value().ends_with("a.g2")) << path.value();
}

TEST(GenerationalStoreTest, StateSurvivesReopen) {
  ScratchDir dir("gen_reopen");
  {
    GenerationalStore store(dir.path());
    ASSERT_TRUE(store.Init().ok());
    ASSERT_TRUE(store.Put("a", "v1").ok());
    ASSERT_TRUE(store.Put("b", "other").ok());
  }
  GenerationalStore reopened(dir.path());
  ASSERT_TRUE(reopened.Init().ok());
  EXPECT_EQ(reopened.Get("a").value(), "v1");
  EXPECT_EQ(reopened.Get("b").value(), "other");
}

TEST(GenerationalStoreTest, KeepWindowGarbageCollectsOldGenerations) {
  ScratchDir dir("gen_gc");
  GenerationalStore::Options options;
  options.keep_generations = 2;
  GenerationalStore store(dir.path(), options);
  ASSERT_TRUE(store.Init().ok());
  for (const char* v : {"v1", "v2", "v3", "v4"}) {
    ASSERT_TRUE(store.Put("a", v).ok());
  }
  EXPECT_EQ(store.Generations("a"), (std::vector<uint64_t>{3, 4}));
  EXPECT_FALSE(fs::exists(dir.File("a.g1")));
  EXPECT_FALSE(fs::exists(dir.File("a.g2")));
  EXPECT_TRUE(fs::exists(dir.File("a.g3")));
  EXPECT_TRUE(fs::exists(dir.File("a.g4")));
  EXPECT_EQ(store.Get("a").value(), "v4");
}

TEST(GenerationalStoreTest, GcGraceKeepsGenerationAReaderJustResolved) {
  ScratchDir dir("gen_gc_grace");
  GenerationalStore::Options options;
  options.keep_generations = 1;
  options.gc_grace = std::chrono::milliseconds(60000);
  GenerationalStore store(dir.path(), options);
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "v1").ok());

  // A reader resolves generation 1's path (think: a serving process about
  // to mmap the file) ...
  auto path = store.CurrentPath("a");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path.value().ends_with("a.g1"));

  // ... and a writer Puts twice before the reader opens it. Generation 1
  // leaves the manifest (new readers land on g3) but the file the first
  // reader holds a path to must still be openable.
  ASSERT_TRUE(store.Put("a", "v2").ok());
  ASSERT_TRUE(store.Put("a", "v3").ok());
  EXPECT_EQ(store.Generations("a"), (std::vector<uint64_t>{3}));
  EXPECT_EQ(MustRead(path.value()), "v1");
  // g2 was never handed to any reader, so it is GC'd normally.
  EXPECT_FALSE(fs::exists(dir.File("a.g2")));
  EXPECT_EQ(store.Get("a").value(), "v3");
}

TEST(GenerationalStoreTest, ZeroGcGraceRestoresEagerUnlink) {
  ScratchDir dir("gen_gc_nograce");
  GenerationalStore::Options options;
  options.keep_generations = 1;
  options.gc_grace = std::chrono::milliseconds(0);
  GenerationalStore store(dir.path(), options);
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "v1").ok());
  ASSERT_TRUE(store.CurrentPath("a").ok());
  ASSERT_TRUE(store.Put("a", "v2").ok());
  EXPECT_FALSE(fs::exists(dir.File("a.g1")));
  EXPECT_TRUE(fs::exists(dir.File("a.g2")));
}

TEST(GenerationalStoreTest, ExpiredGraceOrphanIsSweptByNextPut) {
  ScratchDir dir("gen_gc_expire");
  GenerationalStore::Options options;
  options.keep_generations = 1;
  options.gc_grace = std::chrono::milliseconds(1);
  GenerationalStore store(dir.path(), options);
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "v1").ok());
  ASSERT_TRUE(store.CurrentPath("a").ok());
  ASSERT_TRUE(store.Put("a", "v2").ok());
  // Whether g1 survived that Put depends on timing; after the 1 ms grace
  // has certainly elapsed, the next Put's orphan sweep must remove it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(store.Put("a", "v3").ok());
  EXPECT_FALSE(fs::exists(dir.File("a.g1")));
  EXPECT_FALSE(fs::exists(dir.File("a.g2")));
  EXPECT_TRUE(fs::exists(dir.File("a.g3")));
}

TEST(GenerationalStoreTest, CorruptNewestGenerationQuarantinesAndFallsBack) {
  ScratchDir dir("gen_corrupt");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "old-but-good").ok());
  ASSERT_TRUE(store.Put("a", "new-and-doomed").ok());
  FlipBit(dir.File("a.g2"), 3, 2);

  // Manifest CRC catches the flip with no caller validator at all.
  auto bytes = store.Get("a");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes.value(), "old-but-good");
  EXPECT_TRUE(fs::exists(dir.File("a.g2.corrupt")));
  EXPECT_FALSE(fs::exists(dir.File("a.g2")));
  EXPECT_EQ(store.Generations("a"), (std::vector<uint64_t>{1}));

  // The shrunk committed set was persisted: a fresh store agrees.
  GenerationalStore reopened(dir.path());
  ASSERT_TRUE(reopened.Init().ok());
  EXPECT_EQ(reopened.Get("a").value(), "old-but-good");
}

TEST(GenerationalStoreTest, EveryGenerationCorruptIsDataLoss) {
  ScratchDir dir("gen_all_corrupt");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "gen one").ok());
  ASSERT_TRUE(store.Put("a", "gen two").ok());
  FlipBit(dir.File("a.g1"), 1, 0);
  FlipBit(dir.File("a.g2"), 1, 0);
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(fs::exists(dir.File("a.g1.corrupt")));
  EXPECT_TRUE(fs::exists(dir.File("a.g2.corrupt")));
}

TEST(GenerationalStoreTest, CallerValidatorRejectionAlsoQuarantines) {
  ScratchDir dir("gen_validator");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "valid-v1").ok());
  ASSERT_TRUE(store.Put("a", "BROKEN").ok());
  // Bytes are exactly what was written (CRC passes) but the caller's
  // format validation rejects them — e.g. an artifact written by a buggy
  // serializer.
  auto validator = [](const std::string& bytes) {
    return bytes.rfind("valid", 0) == 0
               ? Status::OK()
               : Status::DataLoss("does not start with 'valid'");
  };
  auto bytes = store.Get("a", validator);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes.value(), "valid-v1");
  EXPECT_TRUE(fs::exists(dir.File("a.g2.corrupt")));
}

TEST(GenerationalStoreTest, CorruptManifestIsQuarantinedAndRebuilt) {
  ScratchDir dir("gen_manifest");
  {
    GenerationalStore store(dir.path());
    ASSERT_TRUE(store.Init().ok());
    ASSERT_TRUE(store.Put("a", "payload-a").ok());
    ASSERT_TRUE(store.Put("b", "payload-b").ok());
  }
  WriteText(dir.File("MANIFEST"), "garbage that is not a manifest");

  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  EXPECT_TRUE(fs::exists(dir.File("MANIFEST.corrupt")));
  // Rebuilt entries carry no CRC, so reads trust the caller's validator.
  auto ok_validator = [](const std::string&) { return Status::OK(); };
  EXPECT_EQ(store.Get("a", ok_validator).value(), "payload-a");
  EXPECT_EQ(store.Get("b", ok_validator).value(), "payload-b");
}

TEST(GenerationalStoreTest, LegacyFlatFileIsReadable) {
  ScratchDir dir("gen_legacy");
  WriteText(dir.File("old_artifact"), "pre-generational bytes");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  EXPECT_TRUE(store.Has("old_artifact"));
  EXPECT_EQ(store.Get("old_artifact").value(), "pre-generational bytes");
  EXPECT_EQ(store.CurrentPath("old_artifact").value(),
            dir.File("old_artifact"));
  // The first Put moves it to the generational layout.
  ASSERT_TRUE(store.Put("old_artifact", "new bytes").ok());
  EXPECT_EQ(store.Get("old_artifact").value(), "new bytes");
}

TEST(GenerationalStoreTest, InitSweepsLeftoverTempFiles) {
  ScratchDir dir("gen_sweep");
  WriteText(dir.File("a.g1.tmp.999.0"), "torn by a crashed writer");
  WriteText(dir.File("MANIFEST.tmp.999.1"), "also torn");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  EXPECT_FALSE(fs::exists(dir.File("a.g1.tmp.999.0")));
  EXPECT_FALSE(fs::exists(dir.File("MANIFEST.tmp.999.1")));
}

TEST(GenerationalStoreTest, FailedManifestCommitRollsBackThePut) {
  FailpointGuard guard;
  ScratchDir dir("gen_commit_fail");
  GenerationalStore::Options options;
  options.failpoint_scope = "gs";
  GenerationalStore store(dir.path(), options);
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "committed").ok());

  // The generation file writes fine; the manifest (the commit point) does
  // not. The Put must fail AND the previous generation must remain the
  // committed truth.
  ASSERT_TRUE(
      failpoint::Configure("gs.manifest.before_rename=error").ok());
  EXPECT_EQ(store.Put("a", "never committed").code(), StatusCode::kIOError);
  failpoint::Clear();

  EXPECT_EQ(store.Generations("a"), (std::vector<uint64_t>{1}));
  EXPECT_EQ(store.Get("a").value(), "committed");
  // A later Put reuses the orphaned generation number and sweeps the
  // orphan file.
  ASSERT_TRUE(store.Put("a", "second commit").ok());
  EXPECT_EQ(store.Get("a").value(), "second commit");
}

TEST(GenerationalStoreTest, FailedGenerationWriteLeavesStoreUntouched) {
  FailpointGuard guard;
  ScratchDir dir("gen_write_fail");
  GenerationalStore::Options options;
  options.failpoint_scope = "gs";
  GenerationalStore store(dir.path(), options);
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "v1").ok());

  ASSERT_TRUE(failpoint::Configure("gs.after_tmp_write=error").ok());
  EXPECT_EQ(store.Put("a", "v2").code(), StatusCode::kIOError);
  failpoint::Clear();

  EXPECT_EQ(store.Generations("a"), (std::vector<uint64_t>{1}));
  EXPECT_EQ(store.Get("a").value(), "v1");
  EXPECT_TRUE(TempFilesIn(dir.path()).empty());
}

TEST(GenerationalStoreTest, RemoveDropsAllGenerationsAndQuarantine) {
  ScratchDir dir("gen_remove");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "v1").ok());
  ASSERT_TRUE(store.Put("a", "v2").ok());
  FlipBit(dir.File("a.g2"), 0, 0);
  ASSERT_TRUE(store.Get("a").ok());  // quarantines g2
  ASSERT_TRUE(store.Remove("a").ok());
  EXPECT_FALSE(store.Has("a"));
  EXPECT_FALSE(fs::exists(dir.File("a.g1")));
  EXPECT_FALSE(fs::exists(dir.File("a.g2.corrupt")));
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kNotFound);
}

TEST(GenerationalStoreTest, CurrentGenerationTracksNewestCommit) {
  ScratchDir dir("gen_current");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  EXPECT_EQ(store.CurrentGeneration("a").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.Put("a", "v1").ok());
  EXPECT_EQ(store.CurrentGeneration("a").value(), 1u);
  ASSERT_TRUE(store.Put("a", "v2").ok());
  EXPECT_EQ(store.CurrentGeneration("a").value(), 2u);
}

TEST(GenerationalStoreTest, QuarantineRollsBackToPreviousGeneration) {
  ScratchDir dir("gen_quarantine");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "good").ok());
  ASSERT_TRUE(store.Put("a", "regressed").ok());

  // External-verdict quarantine (the serving canary's rollback hook): the
  // newest generation is dropped from the manifest and tombstoned, reads
  // fall back to the previous one — quarantining the newest IS rollback.
  ASSERT_TRUE(store.Quarantine("a", 2).ok());
  EXPECT_EQ(store.CurrentGeneration("a").value(), 1u);
  EXPECT_EQ(store.Get("a").value(), "good");
  EXPECT_TRUE(fs::exists(dir.File("a.g2.corrupt")));
  EXPECT_FALSE(fs::exists(dir.File("a.g2")));

  // The verdict survives reopen: the manifest no longer lists g2.
  GenerationalStore reopened(dir.path());
  ASSERT_TRUE(reopened.Init().ok());
  EXPECT_EQ(reopened.Get("a").value(), "good");
  EXPECT_EQ(reopened.Generations("a"), (std::vector<uint64_t>{1}));
}

TEST(GenerationalStoreTest, QuarantineRefusesTheOnlyGeneration) {
  ScratchDir dir("gen_quarantine_last");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  ASSERT_TRUE(store.Put("a", "only").ok());
  EXPECT_EQ(store.Quarantine("a", 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Quarantine("a", 9).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Quarantine("missing", 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Get("a").value(), "only");
}

TEST(GenerationalStoreTest, PutRejectsUnsafeNames) {
  ScratchDir dir("gen_names");
  GenerationalStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  for (const char* bad : {"", "a/b", "a\tb", "a\nb"}) {
    EXPECT_EQ(store.Put(bad, "x").code(), StatusCode::kInvalidArgument)
        << "name: " << bad;
  }
}

}  // namespace
}  // namespace ceaff
