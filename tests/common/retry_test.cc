#include "ceaff/common/retry.h"

#include <gtest/gtest.h>

#include "ceaff/common/random.h"
#include "ceaff/common/status.h"

namespace ceaff {
namespace {

TEST(RetryPolicyTest, RetriesOnlyUnavailable) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.ShouldRetry(Status::Unavailable("shed"), 1));
  // Everything else is permanent or made worse by retrying.
  EXPECT_FALSE(policy.ShouldRetry(Status::OK(), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::NotFound("gone"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::DeadlineExceeded("late"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::InvalidArgument("bad"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::Internal("bug"), 1));
}

TEST(RetryPolicyTest, StopsAfterMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  const Status shed = Status::Unavailable("shed");
  EXPECT_TRUE(policy.ShouldRetry(shed, 1));
  EXPECT_TRUE(policy.ShouldRetry(shed, 2));
  EXPECT_FALSE(policy.ShouldRetry(shed, 3));
  EXPECT_FALSE(policy.ShouldRetry(shed, 4));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.initial_backoff_ms = 1;
  options.multiplier = 2.0;
  options.max_backoff_ms = 50;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffMillis(0, nullptr), 1);
  EXPECT_EQ(policy.BackoffMillis(1, nullptr), 2);
  EXPECT_EQ(policy.BackoffMillis(2, nullptr), 4);
  EXPECT_EQ(policy.BackoffMillis(5, nullptr), 32);
  EXPECT_EQ(policy.BackoffMillis(6, nullptr), 50);   // 64 capped
  EXPECT_EQ(policy.BackoffMillis(30, nullptr), 50);  // stays capped
}

TEST(RetryPolicyTest, NegativeAttemptClampsToFirst) {
  RetryOptions options;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffMillis(-7, nullptr),
            policy.BackoffMillis(0, nullptr));
}

TEST(RetryPolicyTest, JitterStaysWithinConfiguredBand) {
  RetryOptions options;
  options.initial_backoff_ms = 1;
  options.multiplier = 2.0;
  options.max_backoff_ms = 1000;
  options.jitter = 0.5;
  RetryPolicy policy(options);
  Rng rng(42);
  // attempt 3 -> base 8 ms; jitter 0.5 keeps every draw in [4, 12] ms.
  for (int i = 0; i < 1000; ++i) {
    const int64_t ms = policy.BackoffMillis(3, &rng);
    EXPECT_GE(ms, 4);
    EXPECT_LE(ms, 12);
  }
}

TEST(RetryPolicyTest, JitteredBackoffNeverExceedsCap) {
  RetryOptions options;
  options.initial_backoff_ms = 40;
  options.max_backoff_ms = 50;
  options.jitter = 0.5;
  RetryPolicy policy(options);
  Rng rng(7);
  // Base for attempt 1 is 80 -> capped to 50 before jitter; the upward half
  // of the jitter band must not push the wait back over the cap.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(policy.BackoffMillis(1, &rng), 50);
  }
}

TEST(RetryPolicyTest, NullRngDisablesJitter) {
  RetryOptions options;
  options.initial_backoff_ms = 8;
  options.jitter = 0.5;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffMillis(0, nullptr), 8);
}

}  // namespace
}  // namespace ceaff
