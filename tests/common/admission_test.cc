#include "ceaff/common/admission.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace ceaff {
namespace {

// All tests run on virtual time: the controller never reads a clock, so
// every transition below is deterministic.

constexpr uint64_t kMs = 1'000'000;  // ns per millisecond
constexpr int64_t kNoDeadline = INT64_MAX;

AdmissionController::Options SmallOptions() {
  AdmissionController::Options options;
  options.target_delay_ns = 5 * kMs;
  options.interval_ns = 100 * kMs;
  options.deadline_headroom = 1.0;
  return options;
}

TEST(AdmissionControllerTest, AdmitsWhenDelayUnderTarget) {
  AdmissionController admission(SmallOptions());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(admission.Admit(/*now_ns=*/i * kMs, /*queue_delay_ns=*/0,
                              /*p99_service_ns=*/kMs, kNoDeadline),
              AdmissionController::Decision::kAdmit);
  }
  EXPECT_EQ(admission.admitted(), 100u);
  EXPECT_EQ(admission.shed_overload(), 0u);
  EXPECT_EQ(admission.rejected_deadline(), 0u);
  EXPECT_FALSE(admission.shedding());
}

TEST(AdmissionControllerTest, RejectsWhenDeadlineCannotBeMet) {
  AdmissionController admission(SmallOptions());
  // p99 = 10 ms, queued delay = 5 ms, 8 ms of budget left: the request
  // cannot finish in time, so it is rejected without doing the work.
  EXPECT_EQ(admission.Admit(0, 5 * kMs, 10 * kMs,
                            /*remaining_deadline_ns=*/8 * kMs),
            AdmissionController::Decision::kRejectDeadline);
  EXPECT_EQ(admission.rejected_deadline(), 1u);
  // 20 ms of budget clears the same bar.
  EXPECT_EQ(admission.Admit(0, 5 * kMs, 10 * kMs, 20 * kMs),
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionControllerTest, NoDeadlineSkipsTheDeadlineCheck) {
  AdmissionController admission(SmallOptions());
  EXPECT_EQ(admission.Admit(0, 0, /*p99_service_ns=*/1'000'000 * kMs,
                            kNoDeadline),
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionControllerTest, ExpiredDeadlineIsAdmittedNotRejected) {
  // An already-expired deadline is admitted so the scorer's own
  // cancellation poll produces the accurate kDeadlineExceeded.
  AdmissionController admission(SmallOptions());
  EXPECT_EQ(admission.Admit(0, 0, 10 * kMs, /*remaining_deadline_ns=*/0),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0, 10 * kMs, -5 * kMs),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.rejected_deadline(), 0u);
}

TEST(AdmissionControllerTest, ColdHistogramDisablesDeadlineCheck) {
  // p99 == 0 means "service time unknown" — no basis for rejecting.
  AdmissionController admission(SmallOptions());
  EXPECT_EQ(admission.Admit(0, 50 * kMs, /*p99_service_ns=*/0, 1),
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionControllerTest, HeadroomScalesTheRejectionBar) {
  AdmissionController::Options options = SmallOptions();
  options.deadline_headroom = 2.0;
  AdmissionController strict(options);
  // needed = 2.0 * (10ms + 0) = 20ms > 15ms remaining -> reject, where
  // headroom 1.0 would have admitted.
  EXPECT_EQ(strict.Admit(0, 0, 10 * kMs, 15 * kMs),
            AdmissionController::Decision::kRejectDeadline);
  AdmissionController lax(SmallOptions());
  EXPECT_EQ(lax.Admit(0, 0, 10 * kMs, 15 * kMs),
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionControllerTest, ShedsOnlyAfterDelayExceedsTargetForInterval) {
  AdmissionController admission(SmallOptions());
  // Above target (10 ms > 5 ms) but for less than one interval: admitted.
  EXPECT_EQ(admission.Admit(0, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(50 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_FALSE(admission.shedding());
  // A full interval later the controller enters the shedding state and the
  // first drop is immediate.
  EXPECT_EQ(admission.Admit(100 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kShedOverload);
  EXPECT_TRUE(admission.shedding());
  EXPECT_EQ(admission.shed_overload(), 1u);
}

TEST(AdmissionControllerTest, DipUnderTargetResetsSheddingState) {
  AdmissionController admission(SmallOptions());
  ASSERT_EQ(admission.Admit(0, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  ASSERT_EQ(admission.Admit(100 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kShedOverload);
  // Delay recovers: state resets entirely.
  EXPECT_EQ(admission.Admit(101 * kMs, 0, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_FALSE(admission.shedding());
  // Overload must again persist for a full interval before the next shed.
  EXPECT_EQ(admission.Admit(102 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(150 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(202 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kShedOverload);
}

TEST(AdmissionControllerTest, CoDelCadenceShortensWithEachDrop) {
  AdmissionController admission(SmallOptions());
  ASSERT_EQ(admission.Admit(0, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  // Enter shedding at t=100ms: drop 1, next drop at +interval/sqrt(1).
  ASSERT_EQ(admission.Admit(100 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kShedOverload);
  // Between drops most requests still get through (goodput stays up).
  EXPECT_EQ(admission.Admit(150 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(199 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  // Drop 2 at t=200ms; drop 3 then comes interval/sqrt(2) ~ 70.7ms later.
  ASSERT_EQ(admission.Admit(200 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kShedOverload);
  EXPECT_EQ(admission.Admit(269 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(271 * kMs, 10 * kMs, kMs, kNoDeadline),
            AdmissionController::Decision::kShedOverload);
  EXPECT_EQ(admission.shed_overload(), 3u);
}

}  // namespace
}  // namespace ceaff
