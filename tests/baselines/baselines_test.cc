#include "ceaff/baselines/baselines.h"

#include <gtest/gtest.h>

#include <memory>

#include "ceaff/data/synthetic.h"

namespace ceaff::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticKgOptions o;
    o.name = "baseline-test";
    o.num_entities = 120;
    o.extra_entities = 0;
    o.avg_degree = 6.0;
    o.embedding_dim = 16;
    o.seed = 31;
    bench_ = new data::SyntheticBenchmark(
        data::GenerateBenchmark(o).value());
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static data::SyntheticBenchmark* bench_;

  /// Random-guess accuracy on this pair's test set.
  double Chance() {
    return 1.0 / static_cast<double>(bench_->pair.test_alignment.size());
  }
};

data::SyntheticBenchmark* BaselinesTest::bench_ = nullptr;

embed::TranseOptions FastTranse() {
  embed::TranseOptions o;
  o.dim = 24;
  o.epochs = 40;
  return o;
}

embed::GcnOptions FastGcn() {
  embed::GcnOptions o;
  o.dim = 32;
  o.epochs = 40;
  return o;
}

TEST_F(BaselinesTest, ScoreSimilarityComputesIndependentAccuracy) {
  la::Matrix sim = la::Matrix::FromRows(
      {{0.9f, 0.1f}, {0.8f, 0.2f}});
  BaselineResult r = ScoreSimilarity(sim);
  // Row 0 -> col 0 correct, row 1 -> col 0 wrong.
  EXPECT_DOUBLE_EQ(r.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(r.ranking.hits_at_1, 0.5);
}

TEST_F(BaselinesTest, AllBaselinesBeatChance) {
  std::vector<std::unique_ptr<Baseline>> methods;
  methods.push_back(std::make_unique<MTransE>(FastTranse()));
  methods.push_back(std::make_unique<TransEShared>(FastTranse()));
  {
    IPTransE::Options o;
    o.transe = FastTranse();
    o.iterations = 2;
    methods.push_back(std::make_unique<IPTransE>(o));
  }
  methods.push_back(std::make_unique<GcnAlignStructural>(FastGcn()));
  {
    JapeLite::Options o;
    o.gcn = FastGcn();
    methods.push_back(std::make_unique<JapeLite>(o));
  }
  {
    BootEALite::Options o;
    o.gcn = FastGcn();
    o.rounds = 2;
    methods.push_back(std::make_unique<BootEALite>(o));
  }
  {
    NaeaLite::Options o;
    o.gcn = FastGcn();
    methods.push_back(std::make_unique<NaeaLite>(o));
  }
  {
    RandomWalkAlign::Options o;
    o.walk.dim = 32;
    o.walk.epochs = 1;
    methods.push_back(std::make_unique<RandomWalkAlign>(o));
  }
  for (const auto& m : methods) {
    auto r = m->Run(bench_->pair);
    ASSERT_TRUE(r.ok()) << m->name() << ": " << r.status();
    EXPECT_GT(r.value().accuracy, 3 * Chance()) << m->name();
    EXPECT_GE(r.value().ranking.hits_at_10, r.value().accuracy) << m->name();
    EXPECT_EQ(r.value().similarity.rows(),
              bench_->pair.test_alignment.size());
  }
}

TEST_F(BaselinesTest, RepresentationFusionRunsAndNeedsStore) {
  RepresentationFusionAlign::Options o;
  o.gcn = FastGcn();
  RepresentationFusionAlign without_store(o, nullptr);
  EXPECT_EQ(without_store.Run(bench_->pair).status().code(),
            ceaff::StatusCode::kFailedPrecondition);

  for (auto mode : {RepresentationFusionAlign::Options::Mode::kAdditive,
                    RepresentationFusionAlign::Options::Mode::kConcat}) {
    o.mode = mode;
    RepresentationFusionAlign rep(o, &bench_->store);
    auto r = rep.Run(bench_->pair);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_GT(r.value().accuracy, 3 * Chance());
  }
}

TEST_F(BaselinesTest, NamesAreStable) {
  EXPECT_EQ(MTransE().name(), "MTransE");
  EXPECT_EQ(TransEShared().name(), "TransE-shared");
  EXPECT_EQ(IPTransE().name(), "IPTransE");
  EXPECT_EQ(GcnAlignStructural().name(), "GCN-Align");
  EXPECT_EQ(BootEALite().name(), "BootEA-lite");
  EXPECT_EQ(JapeLite().name(), "JAPE-lite");
  EXPECT_EQ(RandomWalkAlign().name(), "RWalk-align");
  EXPECT_EQ(RepresentationFusionAlign().name(), "RepFusion");
  EXPECT_EQ(NaeaLite().name(), "NAEA-lite");
}

TEST_F(BaselinesTest, GcnAlignDeterministic) {
  GcnAlignStructural a(FastGcn()), b(FastGcn());
  auto ra = a.Run(bench_->pair).value();
  auto rb = b.Run(bench_->pair).value();
  EXPECT_EQ(ra.accuracy, rb.accuracy);
}

TEST_F(BaselinesTest, BootstrappingDoesNotCollapseAccuracy) {
  // BootEA-lite with harvesting must stay within a small margin of plain
  // GCN-Align (it may fluctuate on tiny graphs but not collapse).
  GcnAlignStructural plain(FastGcn());
  BootEALite::Options o;
  o.gcn = FastGcn();
  o.rounds = 3;
  BootEALite boot(o);
  double base = plain.Run(bench_->pair).value().accuracy;
  double boosted = boot.Run(bench_->pair).value().accuracy;
  EXPECT_GT(boosted, base * 0.5);
}

}  // namespace
}  // namespace ceaff::baselines
