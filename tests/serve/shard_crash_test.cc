/// Crash drills for the sharded serving path: workers are killed mid-TOPK
/// (failpoint `crash` inside the scan — the repeatable stand-in for a
/// SIGKILL arriving mid-query), replies are corrupted on the wire, and a
/// permanently crashing shard exercises the respawn circuit breaker. The
/// invariants under every drill: the router never dies, every completed
/// answer is either full-fidelity bit-identical to single-process mode or
/// explicitly degraded AND exactly equal to the surviving-range reference
/// merge — never silently wrong.

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/router.h"
#include "ceaff/serve/topk_scan.h"
#include "serve/shard_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::ExpectCandidatesIdentical;
using ::ceaff::testing::RangeReference;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::ShardEmbedder;
using ::ceaff::testing::ShardIndex;

class ShardCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("shard_crash");
    index_ = ShardIndex(24);
    index_path_ = dir_->File("shard.idx");
    ASSERT_TRUE(SaveAlignmentIndex(index_, index_path_).ok());
  }

  /// Fast-breaker options so the drills complete in test time.
  ShardRouterOptions FastOptions(size_t shards) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.respawn_breaker.failure_threshold = 3;
    options.respawn_breaker.cooldown_ns = 200'000'000;  // 200 ms
    return options;
  }

  std::vector<std::pair<size_t, size_t>> AliveRanges(
      const ShardRouter& router) {
    std::vector<std::pair<size_t, size_t>> ranges;
    for (size_t i = 0; i < router.num_shards(); ++i) {
      if (router.shard_alive(i)) ranges.push_back(router.shard_range(i));
    }
    return ranges;
  }

  void ExpectFullFidelity(ShardRouter& router, const std::string& query,
                          size_t k) {
    const auto store = ShardEmbedder(index_);
    auto got = router.TopK(query, k);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->degraded) << query;
    const TopKResult want = RangeReference(index_, store, query, k,
                                           {{0, index_.num_targets()}});
    ExpectCandidatesIdentical(got->candidates, want.candidates);
  }

  std::unique_ptr<ScratchDir> dir_;
  AlignmentIndex index_;
  std::string index_path_;
};

TEST_F(ShardCrashTest, CrashMidScanDegradesThenRecoversBitIdentical) {
  ShardRouterOptions options = FastOptions(3);
  // Shard 1 dies mid-scan on its first query (_exit(77) inside TopKScan)
  // — the closest repeatable stand-in for a SIGKILL mid-query.
  options.shard_failpoints = {"", "serve.topk.scan=crash", ""};
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  ASSERT_TRUE(router.shard_alive(1));

  auto got = router.TopK("source entity 5", 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->degraded);
  EXPECT_FALSE(router.shard_alive(1));
  const auto store = ShardEmbedder(index_);
  const TopKResult want = RangeReference(index_, store, "source entity 5", 5,
                                         AliveRanges(router));
  ExpectCandidatesIdentical(got->candidates, want.candidates);

  // Disarm the crash and restart the shard: answers return to
  // full-fidelity bit-identity with single-process mode.
  router.SetShardFailpoints(1, "");
  ASSERT_TRUE(router.RestartShard(1).ok());
  ExpectFullFidelity(router, "source entity 5", 5);
}

TEST_F(ShardCrashTest, KillEachShardInTurnNeverServesWrongAnswers) {
  auto router_or = ShardRouter::Start(index_path_, FastOptions(4));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  ASSERT_EQ(router.num_shards(), 4u);
  const auto store = ShardEmbedder(index_);

  for (size_t victim = 0; victim < router.num_shards(); ++victim) {
    ASSERT_TRUE(router.shard_alive(victim)) << "shard " << victim;
    ASSERT_EQ(::kill(router.shard_pid(victim), SIGKILL), 0);

    const std::string query = "source entity " + std::to_string(victim * 5);
    auto got = router.TopK(query, 6);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->degraded) << "shard " << victim;
    const TopKResult want =
        RangeReference(index_, store, query, 6, AliveRanges(router));
    ExpectCandidatesIdentical(got->candidates, want.candidates);

    // Respawn within the breaker cooldown: a one-off kill of a healthy
    // shard must come back on the next health pass, not after a timeout.
    router.CheckHealth();  // observes the death (already reaped above)
    const auto report = router.CheckHealth();
    ASSERT_EQ(report.alive, report.total) << "shard " << victim;
    ExpectFullFidelity(router, query, 6);
  }
}

TEST_F(ShardCrashTest, CorruptReplyKillsShardAndDegrades) {
  ShardRouterOptions options = FastOptions(3);
  // Every 2nd frame shard 1 sends is CRC-corrupted: the handshake Pong
  // (1st) survives, its first TOPK reply (2nd) does not. The router must
  // treat the corrupt reply as a dead shard — after a CRC mismatch the
  // stream can't be resynchronised.
  options.shard_failpoints = {"", "shard.ipc.corrupt_reply=1in2", ""};
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  ASSERT_TRUE(router.shard_alive(1));

  auto got = router.TopK("target entity 2", 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->degraded);
  EXPECT_FALSE(router.shard_alive(1));
  const auto store = ShardEmbedder(index_);
  const TopKResult want = RangeReference(index_, store, "target entity 2", 5,
                                         AliveRanges(router));
  ExpectCandidatesIdentical(got->candidates, want.candidates);
}

TEST_F(ShardCrashTest, FlappingShardTripsBreakerThenRecoversAfterCooldown) {
  ShardRouterOptions options = FastOptions(3);
  options.shard_failpoints = {"", "serve.topk.scan=crash", ""};
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  // Every respawned worker boots fine (the handshake needs no scan) but
  // dies on its first query; the probe protocol must count each of those
  // as a breaker failure. After `failure_threshold` deaths the breaker
  // opens and respawns stop.
  for (int i = 0; i < 6; ++i) {
    auto got = router.TopK("source entity 1", 4);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->degraded);
    router.CheckHealth();  // respawn attempt (breaker-gated)
  }
  EXPECT_FALSE(router.shard_alive(1));
  const std::string stats = router.StatsJson();
  EXPECT_NE(stats.find("\"breaker_times_opened\": 1"), std::string::npos)
      << stats;

  // Past the cooldown with the crash disarmed, the half-open probe
  // respawns the shard and the first answered query closes the breaker.
  router.SetShardFailpoints(1, "");
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  for (int i = 0; i < 3 && !router.shard_alive(1); ++i) {
    router.CheckHealth();
  }
  ASSERT_TRUE(router.shard_alive(1));
  ExpectFullFidelity(router, "source entity 1", 4);
}

TEST_F(ShardCrashTest, AcceptanceDrillFourShardsKillOneMidQuery) {
  // The issue's acceptance shape: 4 shards, one SIGKILLed mid-query
  // (crash failpoint inside the scan), zero router crashes, zero
  // non-degraded wrong answers, degraded completion from survivors,
  // breaker-gated respawn, bit-identical resume at full fidelity.
  ShardRouterOptions options = FastOptions(4);
  options.shard_failpoints = {"", "", "serve.topk.scan=crash", ""};
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  const auto store = ShardEmbedder(index_);

  auto got = router.TopK("source entity 12", 8);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->degraded);
  const TopKResult want = RangeReference(index_, store, "source entity 12",
                                         8, AliveRanges(router));
  ExpectCandidatesIdentical(got->candidates, want.candidates);

  router.SetShardFailpoints(2, "");
  router.CheckHealth();
  auto report = router.CheckHealth();
  ASSERT_EQ(report.alive, report.total);
  for (const std::string& q :
       {std::string("source entity 12"), std::string("unseen entity"),
        std::string("target entity 20")}) {
    ExpectFullFidelity(router, q, 8);
  }
  EXPECT_GE(router.degraded_answers(), 1u);
}

}  // namespace
}  // namespace ceaff::serve
