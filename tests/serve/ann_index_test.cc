// Format-v3 (ANN sections) container coverage: round-trips through the
// mmap and heap load paths, version stamping (non-ANN exports stay v2
// byte-for-byte), CRC/scrub coverage of the new sections, and the
// invariant checks that refuse partial or inconsistent ANN data.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "ceaff/common/failpoint.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/ann_build.h"
#include "serve/serve_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::FileSize;
using ::ceaff::testing::FlipBit;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::SmallIndex;
using ::ceaff::testing::SmallIndexInput;

AlignmentIndex SmallAnnIndex() {
  AlignmentIndex index = SmallIndex();
  AnnBuildOptions options;
  options.num_centroids = 2;
  const Status built = BuildAnnSections(&index, options);
  CEAFF_CHECK(built.ok()) << built.ToString();
  return index;
}

uint32_t VersionOf(const std::string& bytes) {
  CEAFF_CHECK(bytes.size() >= 12);
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + 8, sizeof(v));
  return v;
}

TEST(AnnBuildTest, TrainsConsistentSections) {
  const AlignmentIndex index = SmallAnnIndex();
  ASSERT_TRUE(index.has_ann());
  const size_t fused_dim =
      index.target_name_emb.cols() + index.target_struct_emb.cols();
  EXPECT_EQ(index.ann_centroids.rows(), 2u);
  EXPECT_EQ(index.ann_centroids.cols(), fused_dim);
  EXPECT_EQ(index.ann_lists.size(), 2u);
  EXPECT_EQ(index.ann_codes.rows(), index.num_targets());
  EXPECT_EQ(index.ann_codes.cols(), fused_dim);
  EXPECT_EQ(index.ann_scales.rows(), index.num_targets());
  EXPECT_EQ(index.ann_seed, AnnBuildOptions{}.ann_seed);
  // Deterministic: training the same index twice gives identical sections.
  const AlignmentIndex again = SmallAnnIndex();
  EXPECT_EQ(index.ann_lists, again.ann_lists);
  EXPECT_EQ(std::memcmp(index.ann_codes.data(), again.ann_codes.data(),
                        index.ann_codes.size()),
            0);
  EXPECT_EQ(index.content_crc, again.content_crc);
}

TEST(AnnBuildTest, NoDenseFeaturesIsFailedPrecondition) {
  auto input = SmallIndexInput();
  input.source_name_emb = la::Matrix();
  input.target_name_emb = la::Matrix();
  input.source_struct_emb = la::Matrix();
  input.target_struct_emb = la::Matrix();
  auto index = BuildAlignmentIndex(std::move(input));
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(BuildAnnSections(&index.value()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(index->has_ann());
}

TEST(AnnIndexVersionTest, AnnDrivesTheSerializedVersion) {
  auto plain = SerializeAlignmentIndex(SmallIndex());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(VersionOf(plain.value()), 2u);  // no ANN -> v2, byte-compatible

  auto ann = SerializeAlignmentIndex(SmallAnnIndex());
  ASSERT_TRUE(ann.ok());
  EXPECT_EQ(VersionOf(ann.value()), 3u);
  EXPECT_GT(ann->size(), plain->size());
  EXPECT_TRUE(ValidateAlignmentIndexBytes(ann.value()).ok());
}

void ExpectAnnSectionsEqual(const AlignmentIndex& a, const AlignmentIndex& b) {
  ASSERT_EQ(a.has_ann(), b.has_ann());
  EXPECT_EQ(a.ann_seed, b.ann_seed);
  EXPECT_EQ(a.ann_lists, b.ann_lists);
  ASSERT_EQ(a.ann_centroids.rows(), b.ann_centroids.rows());
  ASSERT_EQ(a.ann_centroids.cols(), b.ann_centroids.cols());
  EXPECT_EQ(std::memcmp(a.ann_centroids.data(), b.ann_centroids.data(),
                        a.ann_centroids.size() * sizeof(float)),
            0);
  ASSERT_EQ(a.ann_scales.rows(), b.ann_scales.rows());
  EXPECT_EQ(std::memcmp(a.ann_scales.data(), b.ann_scales.data(),
                        a.ann_scales.size() * sizeof(float)),
            0);
  ASSERT_EQ(a.ann_codes.rows(), b.ann_codes.rows());
  ASSERT_EQ(a.ann_codes.cols(), b.ann_codes.cols());
  EXPECT_EQ(
      std::memcmp(a.ann_codes.data(), b.ann_codes.data(), a.ann_codes.size()),
      0);
}

TEST(AnnIndexIoTest, V3RoundTripsThroughMmapAndHeapPaths) {
  ScratchDir dir("ann_idx_roundtrip");
  const std::string path = dir.File("run.idx");
  const AlignmentIndex index = SmallAnnIndex();
  ASSERT_TRUE(SaveAlignmentIndex(index, path).ok());

  auto mapped = LoadAlignmentIndex(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_NE(mapped->backing, nullptr);
  // v3 serves the ANN payloads zero-copy like the v2 matrix sections.
  EXPECT_TRUE(mapped->ann_centroids.is_view());
  EXPECT_TRUE(mapped->ann_codes.is_view());
  ExpectAnnSectionsEqual(index, *mapped);
  EXPECT_EQ(mapped->ComputeContentCrc(), mapped->content_crc);

  CEAFF_CHECK(failpoint::Configure("index.load.mmap=error").ok());
  auto heap = LoadAlignmentIndex(path);
  failpoint::Clear();
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_EQ(heap->backing, nullptr);
  EXPECT_FALSE(heap->ann_codes.is_view());
  ExpectAnnSectionsEqual(index, *heap);
  EXPECT_EQ(heap->content_crc, mapped->content_crc);
}

TEST(AnnIndexIoTest, BitFlipsInAnnSectionsAreDataLoss) {
  ScratchDir dir("ann_idx_flip");
  const std::string clean = dir.File("clean.idx");
  const AlignmentIndex index = SmallAnnIndex();
  ASSERT_TRUE(SaveAlignmentIndex(index, clean).ok());
  auto plain_bytes = SerializeAlignmentIndex(SmallIndex());
  ASSERT_TRUE(plain_bytes.ok());
  const size_t ann_begin = plain_bytes->size() - 4;  // first ANN byte
  const size_t size = FileSize(clean);
  ASSERT_GT(size, ann_begin);
  // Damage the ANN region specifically: its first bytes, the middle of the
  // code payload, and the last byte before the CRC footer.
  for (const size_t offset :
       {ann_begin, ann_begin + (size - ann_begin) / 2, size - 5}) {
    const std::string path = dir.File("flip_" + std::to_string(offset));
    ASSERT_TRUE(SaveAlignmentIndex(index, path).ok());
    FlipBit(path, offset, 2);
    auto loaded = LoadAlignmentIndex(path);
    ASSERT_FALSE(loaded.ok()) << "offset " << offset;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "offset " << offset << ": " << loaded.status().ToString();
  }
}

TEST(AnnIndexIoTest, ScrubCrcCoversTheAnnSections) {
  // In-memory corruption of an ANN code must change ComputeContentCrc —
  // that is what lets the background scrubber catch it.
  AlignmentIndex index = SmallAnnIndex();
  ASSERT_EQ(index.ComputeContentCrc(), index.content_crc);
  index.ann_codes.row(0)[0] = static_cast<int8_t>(index.ann_codes.row(0)[0] ^ 1);
  EXPECT_NE(index.ComputeContentCrc(), index.content_crc);
}

TEST(AnnIndexInvariantTest, PartialAnnSectionsAreRefused) {
  {
    AlignmentIndex index = SmallAnnIndex();
    index.ann_centroids = la::Matrix();  // codes/lists remain: partial
    EXPECT_EQ(index.Finalize().code(), StatusCode::kDataLoss);
  }
  {
    AlignmentIndex index = SmallAnnIndex();
    index.ann_lists.pop_back();  // list/centroid count mismatch
    EXPECT_EQ(index.Finalize().code(), StatusCode::kDataLoss);
  }
  {
    AlignmentIndex index = SmallAnnIndex();
    index.ann_lists.back().pop_back();  // no longer a partition
    EXPECT_EQ(index.Finalize().code(), StatusCode::kDataLoss);
  }
  {
    AlignmentIndex index = SmallAnnIndex();
    index.ann_lists.front().front() = 999;  // bad target reference
    EXPECT_EQ(index.Finalize().code(), StatusCode::kDataLoss);
  }
}

TEST(AnnIndexCompatTest, V2ArtifactsStillLoadAndServeWithoutAnn) {
  ScratchDir dir("ann_idx_v2");
  const std::string path = dir.File("v2.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  auto loaded = LoadAlignmentIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->has_ann());
  EXPECT_TRUE(loaded->ann_lists.empty());
}

}  // namespace
}  // namespace ceaff::serve
