// TopKScan edge cases and the ANN-path contracts: exhaustive and ANN
// answers agree bit-identically on overlapping targets, the shortlist
// recalls (nearly) all of the true top-k on a corpus with real token
// structure, and every leg of the fallback matrix actually falls back.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/ann_build.h"
#include "ceaff/serve/service.h"
#include "ceaff/serve/topk_scan.h"
#include "ceaff/text/name_embedding.h"
#include "ceaff/text/word_embedding.h"
#include "serve/serve_test_util.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::SmallIndex;

/// Synthetic corpus with genuine token structure: names are syllable
/// compounds, embeddings come from the same hash-fallback store the serving
/// path reconstructs, so semantically-near names share tokens and the IVF
/// cells carry real signal. Mirrors the export stage, scaled down.
AlignmentIndex SyntheticCorpus(size_t n, bool with_ann) {
  static const char* kSyllables[] = {"al", "be", "cor", "da", "el", "fi",
                                     "ga", "ho", "in", "ju", "ka", "lu"};
  AlignmentIndexInput input;
  input.dataset = "ann-scan-test";
  input.weights = {0.3, 0.4, 0.3};
  input.semantic_seed = 17;
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = Rng::SplitMix64(i + 1);
    std::string name;
    for (size_t s = 0; s < 3; ++s) name += kSyllables[(x >> (4 * s)) % 12];
    name += '_';
    name += std::to_string(i);
    input.source_names.push_back(name);
    input.target_names.push_back(name + "_t");
    input.pairs.push_back(
        {static_cast<uint32_t>(i), static_cast<uint32_t>(i), 1.0f});
  }
  const text::WordEmbeddingStore store(16, input.semantic_seed);
  input.source_name_emb = text::EmbedNames(store, input.source_names);
  input.target_name_emb = text::EmbedNames(store, input.target_names);
  input.source_name_emb.L2NormalizeRows();
  input.target_name_emb.L2NormalizeRows();
  Rng rng(2020);
  la::Matrix structural(n, 8);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      structural.at(r, c) = static_cast<float>(rng.NextGaussian());
    }
  }
  structural.L2NormalizeRows();
  input.source_struct_emb = structural;
  input.target_struct_emb = structural;

  auto index = BuildAlignmentIndex(std::move(input));
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  if (with_ann) {
    const Status built = BuildAnnSections(&index.value());
    CEAFF_CHECK(built.ok()) << built.ToString();
  }
  return std::move(index).value();
}

TopKScanRange FullRange(const AlignmentIndex& index) {
  return {0, index.num_targets()};
}

class AnnScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new AlignmentIndex(SyntheticCorpus(600, /*with_ann=*/true));
    embedder_ = new text::WordEmbeddingStore(
        index_->target_name_emb.cols(), index_->semantic_seed);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete embedder_;
    index_ = nullptr;
    embedder_ = nullptr;
  }
  static AlignmentIndex* index_;
  static text::WordEmbeddingStore* embedder_;
};

AlignmentIndex* AnnScanTest::index_ = nullptr;
text::WordEmbeddingStore* AnnScanTest::embedder_ = nullptr;

// ---------------------------------------------------------------------------
// Edge cases (exhaustive and ANN alike).

TEST_F(AnnScanTest, KZeroReturnsEmpty) {
  for (const bool enabled : {false, true}) {
    AnnOptions ann;
    ann.enabled = enabled;
    auto r = TopKScan(*index_, *embedder_, index_->source_names[0], 0, true,
                      nullptr, FullRange(*index_), ann);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->candidates.empty());
    EXPECT_FALSE(r->ann_used);  // shortlist >= k=0 but nothing to return
  }
}

TEST_F(AnnScanTest, EmptyRangeIsInvalidArgument) {
  for (const TopKScanRange range : {TopKScanRange{5, 5}, TopKScanRange{9, 3},
                                    TopKScanRange{601, 700}}) {
    auto r = TopKScan(*index_, *embedder_, index_->source_names[0], 10, true,
                      nullptr, range);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(AnnScanTest, KLargerThanRangeReturnsTheWholeRange) {
  const TopKScanRange range{10, 14};
  auto r = TopKScan(*index_, *embedder_, index_->source_names[0], 100, true,
                    nullptr, range);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->candidates.size(), 4u);
  // Ordered by combined descending, ties toward smaller id.
  for (size_t i = 1; i < r->candidates.size(); ++i) {
    EXPECT_GE(r->candidates[i - 1].combined, r->candidates[i].combined);
  }
}

// ---------------------------------------------------------------------------
// ANN-vs-exhaustive parity.

TEST_F(AnnScanTest, AnnShortlistRecallsTheExhaustiveTopK) {
  const size_t k = 10;
  AnnOptions ann;
  ann.enabled = true;
  ann.nprobe = 12;
  ann.shortlist = 256;
  double recall_sum = 0.0;
  size_t queries = 0;
  for (size_t i = 0; i < index_->num_sources(); i += 7) {
    const std::string& query = index_->source_names[i];
    auto exact = TopKScan(*index_, *embedder_, query, k, true, nullptr,
                          FullRange(*index_));
    auto approx = TopKScan(*index_, *embedder_, query, k, true, nullptr,
                           FullRange(*index_), ann);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    EXPECT_TRUE(approx->ann_used);
    EXPECT_GT(approx->ann_probes, 0u);
    ASSERT_EQ(exact->candidates.size(), k);
    ASSERT_EQ(approx->candidates.size(), k);
    size_t hits = 0;
    for (const Candidate& a : approx->candidates) {
      for (const Candidate& e : exact->candidates) {
        if (a.target == e.target) {
          ++hits;
          // Exact re-rank: a shortlisted target's score is bit-identical
          // to the exhaustive path's score for the same target.
          EXPECT_EQ(a.combined, e.combined) << "target " << a.target;
          EXPECT_EQ(a.semantic_score, e.semantic_score);
          EXPECT_EQ(a.structural_score, e.structural_score);
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) / static_cast<double>(k);
    ++queries;
  }
  ASSERT_GT(queries, 0u);
  EXPECT_GE(recall_sum / static_cast<double>(queries), 0.95);
}

TEST_F(AnnScanTest, AnnIsDeterministic) {
  AnnOptions ann;
  ann.enabled = true;
  const std::string& query = index_->source_names[3];
  auto a = TopKScan(*index_, *embedder_, query, 10, true, nullptr,
                    FullRange(*index_), ann);
  auto b = TopKScan(*index_, *embedder_, query, 10, true, nullptr,
                    FullRange(*index_), ann);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->candidates.size(), b->candidates.size());
  for (size_t i = 0; i < a->candidates.size(); ++i) {
    EXPECT_EQ(a->candidates[i].target, b->candidates[i].target);
    EXPECT_EQ(a->candidates[i].combined, b->candidates[i].combined);
  }
}

// ---------------------------------------------------------------------------
// Fallback matrix: each leg must quietly serve the exhaustive answer.

TEST_F(AnnScanTest, FallsBackWhenArtifactHasNoAnnSections) {
  const AlignmentIndex plain = SyntheticCorpus(300, /*with_ann=*/false);
  AnnOptions ann;
  ann.enabled = true;
  auto r = TopKScan(plain, *embedder_, plain.source_names[0], 5, true,
                    nullptr, FullRange(plain), ann);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->ann_used);
  EXPECT_EQ(r->candidates.size(), 5u);
}

TEST_F(AnnScanTest, FallsBackWhenShortlistCannotHoldK) {
  AnnOptions ann;
  ann.enabled = true;
  ann.shortlist = 4;
  auto r = TopKScan(*index_, *embedder_, index_->source_names[0], 10, true,
                    nullptr, FullRange(*index_), ann);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ann_used);
  EXPECT_EQ(r->candidates.size(), 10u);
}

TEST_F(AnnScanTest, FallsBackWhenRangeIsNoBiggerThanShortlist) {
  AnnOptions ann;
  ann.enabled = true;
  ann.shortlist = 64;
  auto r = TopKScan(*index_, *embedder_, index_->source_names[0], 10, true,
                    nullptr, TopKScanRange{0, 64}, ann);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ann_used);
  EXPECT_EQ(r->candidates.size(), 10u);
}

TEST_F(AnnScanTest, DisabledAnnNeverEngages) {
  auto r = TopKScan(*index_, *embedder_, index_->source_names[0], 10, true,
                    nullptr, FullRange(*index_));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ann_used);
  EXPECT_EQ(r->ann_probes, 0u);
  EXPECT_EQ(r->ann_shortlist, 0u);
}

// ---------------------------------------------------------------------------
// Service plumbing: the ANN option flows through and shows in STATS.

TEST(AnnServiceTest, ServiceCountsAnnQueriesAndFallbacks) {
  auto index = std::make_shared<const AlignmentIndex>(
      SyntheticCorpus(600, /*with_ann=*/true));
  ServiceOptions options;
  options.cache_capacity = 0;
  options.ann.enabled = true;
  options.ann.shortlist = 128;
  AlignmentService service(index, options);

  auto r = service.TopK(index->source_names[0], 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ann_used);
  const ServingSnapshot snap = service.Stats();
  EXPECT_EQ(snap.ann.queries, 1u);
  EXPECT_EQ(snap.ann.fallbacks, 0u);
  EXPECT_GT(snap.ann.probes, 0u);
  EXPECT_GE(snap.ann.shortlisted, 10u);
  EXPECT_NE(snap.ToJson().find("\"ann\""), std::string::npos);
}

TEST(AnnServiceTest, V2ArtifactWithAnnEnabledCountsFallbacks) {
  auto index =
      std::make_shared<const AlignmentIndex>(SmallIndex());  // no ANN
  ServiceOptions options;
  options.cache_capacity = 0;
  options.ann.enabled = true;
  AlignmentService service(index, options);
  auto r = service.TopK(index->source_names[0], 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->ann_used);
  const ServingSnapshot snap = service.Stats();
  EXPECT_EQ(snap.ann.queries, 0u);
  EXPECT_EQ(snap.ann.fallbacks, 1u);
}

}  // namespace
}  // namespace ceaff::serve
