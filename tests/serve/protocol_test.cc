#include "ceaff/serve/protocol.h"

#include <gtest/gtest.h>

namespace ceaff::serve {
namespace {

TEST(ParseRequestTest, ParsesPair) {
  auto r = ParseRequest("PAIR alpha one");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, RequestType::kPair);
  ASSERT_EQ(r->names.size(), 1u);
  EXPECT_EQ(r->names[0], "alpha one");  // names may contain spaces
}

TEST(ParseRequestTest, ParsesTopK) {
  auto r = ParseRequest("TOPK 5 beta two");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, RequestType::kTopK);
  EXPECT_EQ(r->k, 5u);
  ASSERT_EQ(r->names.size(), 1u);
  EXPECT_EQ(r->names[0], "beta two");
}

TEST(ParseRequestTest, ParsesBatchWithTabSeparatedNames) {
  auto r = ParseRequest("BATCH 3 alpha\tbeta two\t\tgamma ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, RequestType::kBatch);
  EXPECT_EQ(r->k, 3u);
  EXPECT_EQ(r->names,
            (std::vector<std::string>{"alpha", "beta two", "gamma"}));
}

TEST(ParseRequestTest, ParsesReloadStatsQuit) {
  auto reload = ParseRequest("RELOAD /tmp/new.idx");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->type, RequestType::kReload);
  EXPECT_EQ(reload->path, "/tmp/new.idx");

  auto stats = ParseRequest("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->type, RequestType::kStats);

  auto quit = ParseRequest("QUIT");
  ASSERT_TRUE(quit.ok());
  EXPECT_EQ(quit->type, RequestType::kQuit);
}

TEST(ParseRequestTest, BlankAndCommentLinesAreNotFound) {
  EXPECT_EQ(ParseRequest("").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseRequest("   ").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseRequest("# a comment").status().code(),
            StatusCode::kNotFound);
}

TEST(ParseRequestTest, ParsesHealthAndReady) {
  auto health = ParseRequest("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, RequestType::kHealth);

  auto ready = ParseRequest("READY");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->type, RequestType::kReady);
}

TEST(ParseRequestTest, MalformedRequestsAreInvalidArgument) {
  for (const char* line :
       {"PAIR", "TOPK", "TOPK five alpha", "TOPK 0 alpha", "TOPK -3 alpha",
        "TOPK 5", "BATCH 2", "BATCH 2 \t ", "RELOAD", "FROB alpha",
        "pair lowercase-verb", "health", "ready"}) {
    auto r = ParseRequest(line);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ParseRequestTest, UnknownVerbWithTrailingTokensNamesTheVerb) {
  auto r = ParseRequest("FROBNICATE 3 alpha\tbeta\textra junk");
  ASSERT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("FROBNICATE"), std::string::npos)
      << r.status().ToString();
}

TEST(ParseRequestTest, OverlongLineIsRejectedBeforeDispatch) {
  // One byte over the limit: rejected with a message naming both sizes.
  const std::string long_line =
      "PAIR " + std::string(kMaxRequestLineBytes - 4, 'a');
  ASSERT_GT(long_line.size(), kMaxRequestLineBytes);
  auto r = ParseRequest(long_line);
  ASSERT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("exceeds"), std::string::npos);
}

TEST(ParseRequestTest, LineAtExactLimitStillParses) {
  std::string line = "PAIR " + std::string(kMaxRequestLineBytes - 5, 'a');
  ASSERT_EQ(line.size(), kMaxRequestLineBytes);
  auto r = ParseRequest(line);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->type, RequestType::kPair);
  EXPECT_EQ(r->names[0].size(), kMaxRequestLineBytes - 5);
}

TEST(ParseRequestTest, EmbeddedNulIsRejected) {
  std::string line = "PAIR al";
  line.push_back('\0');
  line += "pha";
  auto r = ParseRequest(line);
  ASSERT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("NUL"), std::string::npos);
  // A NUL anywhere — even trailing — is rejected, not truncated-at.
  std::string trailing = "STATS";
  trailing.push_back('\0');
  EXPECT_EQ(ParseRequest(trailing).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FormatErrorResponseTest, CarriesCodeAndMessage) {
  std::string line =
      FormatErrorResponse(Status::DeadlineExceeded("too slow"));
  EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
  EXPECT_NE(line.find("DeadlineExceeded"), std::string::npos) << line;
  EXPECT_NE(line.find("too slow"), std::string::npos) << line;
}

}  // namespace
}  // namespace ceaff::serve
