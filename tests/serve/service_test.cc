#include "ceaff/serve/service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/serve/serving_stats.h"
#include "serve/serve_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::FileSize;
using ::ceaff::testing::FlipBit;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::SmallIndex;
using ::ceaff::testing::SmallIndexInput;

std::shared_ptr<const AlignmentIndex> SharedSmallIndex() {
  return std::make_shared<const AlignmentIndex>(SmallIndex());
}

ServiceOptions TestOptions() {
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 8;
  options.cache_capacity = 32;
  options.cache_shards = 2;
  return options;
}

TEST(AlignmentServiceTest, LookupPairFindsCommittedPair) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  auto answer = service.LookupPair("beta two");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->source_name, "beta two");
  EXPECT_EQ(answer->target_name, "beta dos");
  EXPECT_FLOAT_EQ(answer->score, 0.9f);
}

TEST(AlignmentServiceTest, LookupPairUnknownNameIsNotFound) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  EXPECT_EQ(service.LookupPair("nobody home").status().code(),
            StatusCode::kNotFound);
}

TEST(AlignmentServiceTest, LookupPairUnmatchedSourceIsNotFound) {
  auto input = SmallIndexInput();
  input.pairs.pop_back();  // "delta four" loses its committed pair
  auto index = BuildAlignmentIndex(std::move(input));
  ASSERT_TRUE(index.ok());
  AlignmentService service(
      std::make_shared<const AlignmentIndex>(std::move(index).value()),
      TestOptions());
  auto answer = service.LookupPair("delta four");
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
  EXPECT_NE(answer.status().message().find("no committed pair"),
            std::string::npos);
}

TEST(AlignmentServiceTest, TopKRanksGoldTargetFirstForKnownSources) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  const std::vector<std::pair<std::string, std::string>> gold = {
      {"alpha one", "alpha uno"},
      {"beta two", "beta dos"},
      {"gamma three", "gamma tres"},
      {"delta four", "delta quatro"},
  };
  for (const auto& [source, target] : gold) {
    auto result = service.TopK(source, 4);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->structural_used) << source;
    ASSERT_EQ(result->candidates.size(), 4u);
    EXPECT_EQ(result->candidates[0].target_name, target) << source;
    // Candidates come back in descending combined order.
    for (size_t i = 1; i < result->candidates.size(); ++i) {
      EXPECT_GE(result->candidates[i - 1].combined,
                result->candidates[i].combined);
    }
    // The gold pair shares its structural row, so its cosine is exactly 1.
    EXPECT_FLOAT_EQ(result->candidates[0].structural_score, 1.0f);
  }
}

TEST(AlignmentServiceTest, UnseenNameRedistributesStructuralWeight) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  // "alpha uno" is a *target* name, not a source, so the structural
  // feature cannot resolve it — but both textual features peg it to its
  // own row (string Dice and semantic cosine exactly 1).
  auto result = service.TopK("alpha uno", 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->structural_used);
  ASSERT_FALSE(result->candidates.empty());
  // With structural unusable, the index weights {0.5 struct, 0.25 sem,
  // 0.25 str} renormalise to 0.5/0.5 over the textual features.
  for (const Candidate& c : result->candidates) {
    EXPECT_EQ(c.structural_score, 0.0f);
    EXPECT_NEAR(c.combined, 0.5f * c.semantic_score + 0.5f * c.string_score,
                1e-5);
  }
  EXPECT_EQ(result->candidates[0].target_name, "alpha uno");
  EXPECT_NEAR(result->candidates[0].combined, 1.0f, 1e-5);
}

TEST(AlignmentServiceTest, KLargerThanIndexIsClamped) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  auto result = service.TopK("alpha one", 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 4u);
}

TEST(AlignmentServiceTest, ZeroKIsInvalidArgument) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  EXPECT_EQ(service.TopK("alpha one", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AlignmentServiceTest, RepeatQueryIsServedFromCache) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  auto first = service.TopK("alpha one", 3);
  auto second = service.TopK("alpha one", 3);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->candidates.size(), second->candidates.size());
  for (size_t i = 0; i < first->candidates.size(); ++i) {
    EXPECT_EQ(first->candidates[i].target, second->candidates[i].target);
    EXPECT_FLOAT_EQ(first->candidates[i].combined,
                    second->candidates[i].combined);
  }
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.topk.requests, 2u);
  EXPECT_EQ(stats.topk.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.topk.cache_hit_rate, 0.5);
  // Different k is a different cache entry.
  ASSERT_TRUE(service.TopK("alpha one", 2).ok());
  EXPECT_EQ(service.Stats().topk.cache_hits, 1u);
}

TEST(AlignmentServiceTest, DisabledCacheNeverHits) {
  ServiceOptions options = TestOptions();
  options.cache_capacity = 0;
  AlignmentService service(SharedSmallIndex(), options);
  ASSERT_TRUE(service.TopK("alpha one", 3).ok());
  ASSERT_TRUE(service.TopK("alpha one", 3).ok());
  EXPECT_EQ(service.Stats().topk.cache_hits, 0u);
}

TEST(AlignmentServiceTest, BatchTopKPreservesInputOrder) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  const std::vector<std::string> names = {"gamma three", "alpha one",
                                          "completely unseen", "beta two"};
  auto results = service.BatchTopK(names, 2);
  ASSERT_EQ(results.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].status().ToString();
    EXPECT_EQ(results[i]->query, names[i]);
  }
  EXPECT_EQ(results[0]->candidates[0].target_name, "gamma tres");
  EXPECT_EQ(results[3]->candidates[0].target_name, "beta dos");
  EXPECT_EQ(service.Stats().batch.requests, 1u);
}

TEST(AlignmentServiceTest, BatchTopKFailsSlotsIndependently) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  // k = 0 fails every slot identically, so instead mix an empty batch case:
  auto empty = service.BatchTopK({}, 3);
  EXPECT_TRUE(empty.empty());
  // Per-slot independence: the same batch under k=0 fails all four slots
  // while the service keeps serving.
  auto bad = service.BatchTopK({"alpha one", "beta two"}, 0);
  ASSERT_EQ(bad.size(), 2u);
  for (const auto& r : bad) {
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(service.TopK("alpha one", 1).ok());
}

TEST(AlignmentServiceTest, ExpiredDeadlineIsDeadlineExceeded) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  CancellationToken token;
  token.SetDeadlineAfterMillis(-1);  // expires immediately
  EXPECT_EQ(service.TopK("alpha one", 3, &token).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.LookupPair("alpha one", &token).status().code(),
            StatusCode::kDeadlineExceeded);
  // The failure is counted, and the service is unharmed for token-free use.
  EXPECT_GE(service.Stats().topk.errors, 1u);
  EXPECT_TRUE(service.TopK("alpha one", 3).ok());
}

TEST(AlignmentServiceTest, CancelledTokenIsCancelled) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  CancellationToken token;
  token.RequestCancel();
  EXPECT_EQ(service.TopK("alpha one", 3, &token).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(service.LookupPair("alpha one", &token).status().code(),
            StatusCode::kCancelled);
}

TEST(AlignmentServiceTest, OpenMissingFileIsIOError) {
  EXPECT_EQ(AlignmentService::Open("/nonexistent/nowhere.idx").status().code(),
            StatusCode::kIOError);
}

TEST(AlignmentServiceTest, OpenServesSavedIndex) {
  ScratchDir dir("svc_open");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  auto service = AlignmentService::Open(path, TestOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_TRUE((*service)->LookupPair("alpha one").ok());
}

TEST(AlignmentServiceTest, ReloadRefusesCorruptIndexAndKeepsServing) {
  ScratchDir dir("svc_reload_corrupt");
  const std::string bad = dir.File("bad.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), bad).ok());
  FlipBit(bad, FileSize(bad) / 2, 5);

  AlignmentService service(SharedSmallIndex(), TestOptions());
  auto before = service.snapshot();
  Status reload = service.Reload(bad);
  EXPECT_EQ(reload.code(), StatusCode::kDataLoss);
  // The old snapshot is still the live one and still answers.
  EXPECT_EQ(service.snapshot().get(), before.get());
  EXPECT_TRUE(service.LookupPair("alpha one").ok());
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.reload.requests, 1u);
  EXPECT_EQ(stats.reload.errors, 1u);
}

TEST(AlignmentServiceTest, ReloadSwapsValidIndexAndClearsCache) {
  ScratchDir dir("svc_reload_ok");
  const std::string path = dir.File("new.idx");
  auto input = SmallIndexInput();
  input.dataset = "reloaded";
  input.pairs.clear();
  for (uint32_t i = 0; i < 4; ++i) input.pairs.push_back({i, i, 0.5f});
  auto next = BuildAlignmentIndex(std::move(input));
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(SaveAlignmentIndex(next.value(), path).ok());

  AlignmentService service(SharedSmallIndex(), TestOptions());
  ASSERT_TRUE(service.TopK("alpha one", 3).ok());  // warm the cache
  ASSERT_TRUE(service.Reload(path).ok());
  EXPECT_EQ(service.snapshot()->dataset, "reloaded");
  auto answer = service.LookupPair("alpha one");
  ASSERT_TRUE(answer.ok());
  EXPECT_FLOAT_EQ(answer->score, 0.5f);
  // Cache was cleared on swap: the repeated query recomputes (no new hit).
  ASSERT_TRUE(service.TopK("alpha one", 3).ok());
  EXPECT_EQ(service.Stats().topk.cache_hits, 0u);
  EXPECT_EQ(service.Stats().reload.errors, 0u);
}

TEST(AlignmentServiceTest, StatsJsonListsEveryEndpoint) {
  AlignmentService service(SharedSmallIndex(), TestOptions());
  ASSERT_TRUE(service.TopK("alpha one", 2).ok());
  const std::string json = service.Stats().ToJson();
  for (const char* key :
       {"uptime_seconds", "\"pair\"", "\"topk\"", "\"batch\"", "\"reload\"",
        "cache_hit_rate", "\"shed\"", "\"rejected\"", "\"degradation\"",
        "\"tier\"", "\"served_full\"", "\"served_textual\"",
        "\"served_pair_only\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// Admission options that shed every uncached request after the first:
// target 0 arms the CoDel state on the first observation, interval 0 makes
// the shedding state (and its immediate first drop) due at once.
AdmissionController::Options ShedEverythingAfterFirst() {
  AdmissionController::Options admission;
  admission.target_delay_ns = 0;
  admission.interval_ns = 0;
  return admission;
}

TEST(AlignmentServiceTest, OverloadShedIsUnavailableAndCounted) {
  ServiceOptions options = TestOptions();
  options.cache_capacity = 0;
  options.admission = ShedEverythingAfterFirst();
  AlignmentService service(SharedSmallIndex(), options);
  ASSERT_TRUE(service.TopK("alpha one", 2).ok());
  auto shed = service.TopK("beta two", 2);
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.topk.shed, 1u);
  // Sheds are separate counters: they are neither "requests" nor "errors",
  // so the latency quantiles keep describing work the service actually did.
  EXPECT_EQ(stats.topk.requests, 1u);
  EXPECT_EQ(stats.topk.errors, 0u);
}

TEST(AlignmentServiceTest, ShedsStayOutOfTheLatencyHistogram) {
  ServiceOptions options = TestOptions();
  options.cache_capacity = 0;
  options.admission = ShedEverythingAfterFirst();
  AlignmentService service(SharedSmallIndex(), options);
  ASSERT_TRUE(service.TopK("alpha one", 2).ok());
  ServingSnapshot before = service.Stats();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(service.TopK("beta two", 2).status().code(),
              StatusCode::kUnavailable);
  }
  ServingSnapshot after = service.Stats();
  EXPECT_EQ(after.topk.shed, 50u);
  // A burst of near-instant sheds must not drag p50 toward zero.
  EXPECT_DOUBLE_EQ(after.topk.p50_ms, before.topk.p50_ms);
  EXPECT_EQ(after.topk.requests, before.topk.requests);
}

TEST(AlignmentServiceTest, CacheHitsBypassAdmissionControl) {
  ServiceOptions options = TestOptions();
  options.admission = ShedEverythingAfterFirst();
  AlignmentService service(SharedSmallIndex(), options);
  ASSERT_TRUE(service.TopK("alpha one", 2).ok());  // admitted + cached
  // Every repeat is a cache hit and must keep answering while uncached
  // traffic ("beta two") is being shed.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service.TopK("alpha one", 2).ok()) << i;
  }
  EXPECT_EQ(service.TopK("beta two", 2).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.Stats().topk.cache_hits, 10u);
}

DegradationOptions PinTier(ServiceTier tier) {
  // Zero enter thresholds pin a tier (the policy compares with >=).
  DegradationOptions degradation;
  degradation.enter_textual_delay_ns =
      tier == ServiceTier::kFull ? UINT64_MAX : 0;
  degradation.enter_pair_only_delay_ns =
      tier == ServiceTier::kPairOnly ? 0 : UINT64_MAX;
  return degradation;
}

TEST(AlignmentServiceTest, TextualOnlyTierDropsStructuralAndMarksDegraded) {
  ServiceOptions options = TestOptions();
  options.degradation = PinTier(ServiceTier::kTextualOnly);
  AlignmentService service(SharedSmallIndex(), options);
  // "alpha one" is a known source, so at full tier the structural feature
  // would fire — at the textual-only tier it must not.
  auto result = service.TopK("alpha one", 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->tier, ServiceTier::kTextualOnly);
  EXPECT_FALSE(result->structural_used);
  ASSERT_FALSE(result->candidates.empty());
  // Structural weight (0.5) renormalises over string+semantic (0.25 each).
  for (const Candidate& c : result->candidates) {
    EXPECT_EQ(c.structural_score, 0.0f);
    EXPECT_NEAR(c.combined, 0.5f * c.semantic_score + 0.5f * c.string_score,
                1e-5);
  }
  EXPECT_EQ(service.Stats().degradation.served_textual, 1u);
}

TEST(AlignmentServiceTest, PairOnlyTierServesCommittedPairsAndShedsRest) {
  ServiceOptions options = TestOptions();
  options.degradation = PinTier(ServiceTier::kPairOnly);
  AlignmentService service(SharedSmallIndex(), options);
  // A name with a committed pair still gets an answer: the O(1) lookup,
  // marked degraded, with the committed score.
  auto result = service.TopK("beta two", 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->tier, ServiceTier::kPairOnly);
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0].target_name, "beta dos");
  EXPECT_FLOAT_EQ(result->candidates[0].combined, 0.9f);
  // A name without a committed pair cannot be answered at this tier.
  auto shed = service.TopK("completely unseen", 4);
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.degradation.served_pair_only, 1u);
  EXPECT_GE(stats.topk.shed, 1u);
  EXPECT_EQ(stats.degradation.tier,
            static_cast<int>(ServiceTier::kPairOnly));
}

TEST(AlignmentServiceTest, DegradedAnswersAreNeverCached) {
  ServiceOptions options = TestOptions();
  options.degradation = PinTier(ServiceTier::kPairOnly);
  AlignmentService service(SharedSmallIndex(), options);
  ASSERT_TRUE(service.TopK("beta two", 4).ok());
  ASSERT_TRUE(service.TopK("beta two", 4).ok());
  // If the coarse answer were cached, the service would keep serving it
  // long after recovering to full scoring.
  EXPECT_EQ(service.Stats().topk.cache_hits, 0u);
}

TEST(AlignmentServiceTest, OverloadProtectionOffIgnoresPinnedDegradation) {
  ServiceOptions options = TestOptions();
  options.overload_protection = false;
  options.degradation = PinTier(ServiceTier::kPairOnly);
  options.admission = ShedEverythingAfterFirst();
  AlignmentService service(SharedSmallIndex(), options);
  for (int i = 0; i < 5; ++i) {
    auto result = service.TopK("alpha one", 4);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->degraded);
    EXPECT_EQ(result->tier, ServiceTier::kFull);
  }
  EXPECT_EQ(service.Stats().topk.shed, 0u);
}

TEST(AlignmentServiceTest, HopelessDeadlineIsRejectedAtAdmission) {
  ServiceOptions options = TestOptions();
  // An absurd headroom makes any finite deadline unmeetable once the
  // latency histogram has a single sample.
  options.admission.deadline_headroom = 1e9;
  AlignmentService service(SharedSmallIndex(), options);
  ASSERT_TRUE(service.TopK("alpha one", 2).ok());  // warms p99
  CancellationToken token;
  token.SetDeadlineAfterMillis(100);
  auto rejected = service.TopK("beta two", 2, &token);
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(rejected.status().message().find("rejected at admission"),
            std::string::npos)
      << rejected.status().ToString();
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.topk.rejected, 1u);
  EXPECT_EQ(stats.topk.requests, 1u);  // only the warming query did work
}

TEST(AlignmentServiceTest, ReloadBreakerOpensAfterRepeatedCorruptReloads) {
  ScratchDir dir("svc_reload_breaker");
  const std::string bad = dir.File("bad.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), bad).ok());
  FlipBit(bad, FileSize(bad) / 2, 5);

  ServiceOptions options = TestOptions();
  options.reload_breaker.failure_threshold = 2;
  options.reload_breaker.cooldown_ns = 3'600'000'000'000ull;  // 1 h
  AlignmentService service(SharedSmallIndex(), options);
  EXPECT_EQ(service.Reload(bad).code(), StatusCode::kDataLoss);
  EXPECT_EQ(service.Reload(bad).code(), StatusCode::kDataLoss);
  // Breaker is open: the file is not even re-read until the cooldown.
  Status refused = service.Reload(bad);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.message().find("circuit breaker"), std::string::npos);
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.reload.requests, 2u);  // the two real attempts
  EXPECT_EQ(stats.reload.errors, 2u);
  EXPECT_GE(stats.reload.rejected, 1u);  // the refusal
  // The service itself is unharmed.
  EXPECT_TRUE(service.LookupPair("alpha one").ok());
}

TEST(AlignmentServiceTest, CacheCapacityZeroWithDegradedTiersStaysSafe) {
  ServiceOptions options = TestOptions();
  options.cache_capacity = 0;
  options.degradation = PinTier(ServiceTier::kTextualOnly);
  AlignmentService service(SharedSmallIndex(), options);
  for (int i = 0; i < 4; ++i) {
    auto result = service.TopK("alpha one", 2);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->degraded);
  }
  EXPECT_EQ(service.Stats().topk.cache_hits, 0u);
}

TEST(LatencyHistogramTest, QuantilesLandNearRecordedValues) {
  LatencyHistogram h;
  EXPECT_EQ(h.QuantileMillis(0.5), 0.0);  // empty
  for (int i = 0; i < 50; ++i) h.Record(1'000'000);      // ~1 ms
  for (int i = 0; i < 50; ++i) h.Record(1'000'000'000);  // ~1 s
  EXPECT_EQ(h.TotalCount(), 100u);
  // Bucketed quantiles are ~±40% (power-of-two buckets); p50 must sit near
  // 1 ms and p99 near 1 s.
  const double p50 = h.QuantileMillis(0.5);
  EXPECT_GT(p50, 0.5);
  EXPECT_LT(p50, 2.0);
  const double p99 = h.QuantileMillis(0.99);
  EXPECT_GT(p99, 500.0);
  EXPECT_LT(p99, 2000.0);
}

}  // namespace
}  // namespace ceaff::serve
