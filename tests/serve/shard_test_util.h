#ifndef CEAFF_TESTS_SERVE_SHARD_TEST_UTIL_H_
#define CEAFF_TESTS_SERVE_SHARD_TEST_UTIL_H_

/// Shared fixtures for the shard-router tests: a synthetic index large
/// enough that a 3-4 way split leaves several targets per shard, plus
/// reference implementations of the scatter/gather merge built directly on
/// TopKScan — what the router must reproduce bit-for-bit.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ceaff/common/logging.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/service_types.h"
#include "ceaff/serve/topk_scan.h"
#include "ceaff/text/name_embedding.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::testing {

/// `n`-entity index in the same shape as SmallIndex: gold pairs on the
/// diagonal, hash-fallback name embeddings, identity-like structural
/// embeddings.
inline serve::AlignmentIndex ShardIndex(size_t n) {
  serve::AlignmentIndexInput input;
  input.dataset = "shard-test";
  for (size_t i = 0; i < n; ++i) {
    input.source_names.push_back("source entity " + std::to_string(i));
    input.target_names.push_back("target entity " + std::to_string(i));
    input.pairs.push_back(
        {static_cast<uint32_t>(i), static_cast<uint32_t>(i), 0.8f});
  }
  input.weights = {0.4, 0.3, 0.3};
  input.semantic_seed = 17;

  const text::WordEmbeddingStore store(16, input.semantic_seed);
  input.source_name_emb = text::EmbedNames(store, input.source_names);
  input.target_name_emb = text::EmbedNames(store, input.target_names);
  input.source_name_emb.L2NormalizeRows();
  input.target_name_emb.L2NormalizeRows();

  la::Matrix structural(n, n);
  for (size_t i = 0; i < n; ++i) structural.at(i, i) = 1.0f;
  input.source_struct_emb = structural;
  input.target_struct_emb = structural;

  auto index = serve::BuildAlignmentIndex(std::move(input));
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

/// The query-side embedder the workers reconstruct from the index.
inline text::WordEmbeddingStore ShardEmbedder(
    const serve::AlignmentIndex& index) {
  const size_t dim = index.target_name_emb.cols() > 0
                         ? index.target_name_emb.cols()
                         : index.source_name_emb.cols();
  return text::WordEmbeddingStore(dim, index.semantic_seed);
}

/// Reference merge: per-range top-k via TopKScan, concatenated, sorted by
/// the router's comparator (combined desc, target id asc), truncated to k.
/// With the full [0, n) range this is exactly the single-process answer.
inline serve::TopKResult RangeReference(
    const serve::AlignmentIndex& index, const text::WordEmbeddingStore& store,
    const std::string& query, size_t k,
    const std::vector<std::pair<size_t, size_t>>& ranges,
    const serve::AnnOptions& ann = {}) {
  serve::TopKResult merged;
  merged.query = query;
  for (const auto& [begin, end] : ranges) {
    serve::TopKScanRange range{begin, end};
    auto part = serve::TopKScan(index, store, query, k,
                                /*allow_structural=*/true,
                                /*cancel=*/nullptr, range, ann);
    CEAFF_CHECK(part.ok()) << part.status().ToString();
    merged.structural_used = part->structural_used;
    merged.candidates.insert(merged.candidates.end(),
                             part->candidates.begin(),
                             part->candidates.end());
  }
  std::sort(merged.candidates.begin(), merged.candidates.end(),
            [](const serve::Candidate& a, const serve::Candidate& b) {
              if (a.combined != b.combined) return a.combined > b.combined;
              return a.target < b.target;
            });
  if (merged.candidates.size() > k) merged.candidates.resize(k);
  return merged;
}

/// Bitwise equality over two candidate lists (float payloads compared as
/// exact values — the merge must not perturb a single ulp).
inline void ExpectCandidatesIdentical(
    const std::vector<serve::Candidate>& got,
    const std::vector<serve::Candidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].target, want[i].target) << "rank " << i;
    EXPECT_EQ(got[i].target_name, want[i].target_name) << "rank " << i;
    EXPECT_EQ(got[i].combined, want[i].combined) << "rank " << i;
    EXPECT_EQ(got[i].string_score, want[i].string_score) << "rank " << i;
    EXPECT_EQ(got[i].semantic_score, want[i].semantic_score) << "rank " << i;
    EXPECT_EQ(got[i].structural_score, want[i].structural_score)
        << "rank " << i;
  }
}

}  // namespace ceaff::testing

#endif  // CEAFF_TESTS_SERVE_SHARD_TEST_UTIL_H_
