#include "ceaff/serve/alignment_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/serve_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::FileSize;
using ::ceaff::testing::FlipBit;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::SmallIndex;
using ::ceaff::testing::SmallIndexInput;
using ::ceaff::testing::TruncateFile;
using ::ceaff::testing::TruncateTail;
using ::ceaff::testing::WriteText;
using ::ceaff::testing::ZeroFile;

TEST(NameTrigramsTest, PadsDeduplicatesAndSorts) {
  // "ab" -> padded "^^ab$$" -> ^^a ^ab ab$ b$$, sorted.
  std::vector<std::string> grams = NameTrigrams("ab");
  EXPECT_EQ(grams, (std::vector<std::string>{"^^a", "^ab", "ab$", "b$$"}));
  EXPECT_TRUE(NameTrigrams("").empty());
  // Set semantics: repeated trigrams of "aaaa" collapse.
  grams = NameTrigrams("aaaa");
  EXPECT_EQ(grams, (std::vector<std::string>{"^^a", "^aa", "a$$", "aa$",
                                             "aaa"}));
}

TEST(BuildAlignmentIndexTest, BuildsTrigramTablesAndMaps) {
  AlignmentIndex index = SmallIndex();
  EXPECT_EQ(index.num_sources(), 4u);
  EXPECT_EQ(index.num_targets(), 4u);
  EXPECT_EQ(index.pairs.size(), 4u);
  EXPECT_NEAR(index.weight_structural + index.weight_semantic +
                  index.weight_string,
              1.0, 1e-9);
  EXPECT_EQ(index.target_trigram_counts.size(), 4u);
  EXPECT_EQ(index.trigram_keys.size(), index.trigram_postings.size());
  EXPECT_FALSE(index.trigram_keys.empty());
  // Derived maps answer lookups.
  ASSERT_TRUE(index.source_by_name.count("beta two"));
  EXPECT_EQ(index.source_by_name.at("beta two"), 1u);
  ASSERT_TRUE(index.pair_by_source.count(1));
  EXPECT_EQ(index.pairs[index.pair_by_source.at(1)].target, 1u);
  // Postings reference valid targets and stay sorted.
  for (const auto& postings : index.trigram_postings) {
    for (size_t i = 1; i < postings.size(); ++i) {
      EXPECT_LT(postings[i - 1], postings[i]);
    }
  }
}

TEST(BuildAlignmentIndexTest, RejectsInvalidInput) {
  {
    auto input = SmallIndexInput();
    input.weights = {0.5, 0.5};  // wrong arity
    EXPECT_EQ(BuildAlignmentIndex(std::move(input)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto input = SmallIndexInput();
    input.weights = {0.0, 0.0, 0.0};
    EXPECT_EQ(BuildAlignmentIndex(std::move(input)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto input = SmallIndexInput();
    input.pairs.push_back({99, 0, 1.0f});  // source out of range
    EXPECT_EQ(BuildAlignmentIndex(std::move(input)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto input = SmallIndexInput();
    input.pairs.push_back({0, 1, 0.5f});  // duplicate source
    EXPECT_EQ(BuildAlignmentIndex(std::move(input)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto input = SmallIndexInput();
    input.source_name_emb = la::Matrix(3, 16);  // wrong row count
    EXPECT_EQ(BuildAlignmentIndex(std::move(input)).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(AlignmentIndexIoTest, SaveLoadRoundTripsEverything) {
  ScratchDir dir("idx_roundtrip");
  const std::string path = dir.File("run.idx");
  AlignmentIndex index = SmallIndex();
  ASSERT_TRUE(SaveAlignmentIndex(index, path).ok());

  auto loaded_or = LoadAlignmentIndex(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const AlignmentIndex& loaded = loaded_or.value();
  EXPECT_EQ(loaded.dataset, index.dataset);
  EXPECT_EQ(loaded.source_names, index.source_names);
  EXPECT_EQ(loaded.target_names, index.target_names);
  EXPECT_EQ(loaded.pairs, index.pairs);
  EXPECT_DOUBLE_EQ(loaded.weight_structural, index.weight_structural);
  EXPECT_DOUBLE_EQ(loaded.weight_semantic, index.weight_semantic);
  EXPECT_DOUBLE_EQ(loaded.weight_string, index.weight_string);
  EXPECT_EQ(loaded.semantic_seed, index.semantic_seed);
  EXPECT_EQ(loaded.trigram_keys, index.trigram_keys);
  EXPECT_EQ(loaded.trigram_postings, index.trigram_postings);
  EXPECT_EQ(loaded.target_trigram_counts, index.target_trigram_counts);
  ASSERT_EQ(loaded.source_name_emb.rows(), index.source_name_emb.rows());
  ASSERT_EQ(loaded.source_name_emb.cols(), index.source_name_emb.cols());
  for (size_t r = 0; r < loaded.source_name_emb.rows(); ++r) {
    for (size_t c = 0; c < loaded.source_name_emb.cols(); ++c) {
      EXPECT_EQ(loaded.source_name_emb.at(r, c), index.source_name_emb.at(r, c));
    }
  }
  // Derived maps were rebuilt by the loader.
  EXPECT_EQ(loaded.source_by_name.size(), index.source_by_name.size());
  EXPECT_EQ(loaded.trigram_index.size(), index.trigram_index.size());
}

TEST(AlignmentIndexIoTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadAlignmentIndex("/nonexistent/nowhere.idx").status().code(),
            StatusCode::kIOError);
}

TEST(AlignmentIndexIoTest, TruncationIsDataLoss) {
  ScratchDir dir("idx_trunc");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  TruncateTail(path, FileSize(path) / 2);
  auto loaded = LoadAlignmentIndex(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(AlignmentIndexIoTest, EveryBitFlipRegionIsDataLoss) {
  ScratchDir dir("idx_flip");
  // Flip a bit in several regions of the artifact — header, early body,
  // middle (matrix payload), tail — every one must fail the whole-file CRC.
  const std::string clean = dir.File("clean.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), clean).ok());
  const size_t size = FileSize(clean);
  for (size_t offset : {size_t{9}, size_t{40}, size / 2, size - 8}) {
    const std::string path = dir.File("flip_" + std::to_string(offset));
    ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
    FlipBit(path, offset, 3);
    auto loaded = LoadAlignmentIndex(path);
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "offset " << offset << ": " << loaded.status().ToString();
  }
}

TEST(AlignmentIndexIoTest, ForeignAndEmptyFilesAreDataLoss) {
  ScratchDir dir("idx_foreign");
  const std::string path = dir.File("bogus.idx");
  WriteText(path, "this is not an alignment index at all, sorry");
  auto loaded = LoadAlignmentIndex(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);

  ZeroFile(path);
  EXPECT_EQ(LoadAlignmentIndex(path).status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Table-driven torn-write coverage: damage the artifact at every section
// boundary of the CEAFFIDX layout. The boundary table mirrors the writer's
// size arithmetic and is cross-checked against the real file size, so a
// format change that shifts any section makes the table (and the test)
// fail loudly instead of silently drilling the wrong bytes.

struct IndexSectionBoundary {
  std::string name;
  size_t offset;  // first byte of the section in the serialized artifact
};

std::vector<IndexSectionBoundary> IndexSectionBoundaries(
    const AlignmentIndex& index) {
  std::vector<IndexSectionBoundary> table;
  size_t off = 0;
  auto add = [&](const std::string& name) { table.push_back({name, off}); };
  add("magic");
  off += 8;
  add("version");
  off += 4;
  add("reserved");
  off += 4;
  add("dataset");
  off += 4 + index.dataset.size();
  add("entity_counts");
  off += 3 * 8;  // n_src, n_tgt, n_pairs
  add("weights");
  off += 3 * 8;  // three f64 fusion weights
  add("semantic_seed");
  off += 8;
  add("source_names");
  for (const std::string& n : index.source_names) off += 4 + n.size();
  add("target_names");
  for (const std::string& n : index.target_names) off += 4 + n.size();
  add("pairs");
  off += index.pairs.size() * 12;  // u32 source, u32 target, f32 score
  const la::Matrix* mats[] = {&index.source_name_emb, &index.target_name_emb,
                              &index.source_struct_emb,
                              &index.target_struct_emb};
  const char* mat_names[] = {"source_name_emb", "target_name_emb",
                             "source_struct_emb", "target_struct_emb"};
  for (int i = 0; i < 4; ++i) {
    // Format v2 zero-pads each matrix section to a 4-byte file offset so
    // the float payload can be mmap-served without misaligned reads.
    off = (off + 3) & ~size_t{3};
    table.push_back({mat_names[i], off});
    off += 16 + mats[i]->size() * sizeof(float);  // u64 rows, u64 cols, data
  }
  add("trigram_table");
  off += 8;  // key count
  for (size_t i = 0; i < index.trigram_keys.size(); ++i) {
    off += 4 + index.trigram_keys[i].size();       // key string
    off += 4 + index.trigram_postings[i].size() * 4;  // postings list
  }
  add("trigram_counts");
  off += index.target_trigram_counts.size() * 4;
  add("crc_footer");
  return table;
}

TEST(AlignmentIndexTornWriteTest, BoundaryTableMatchesTheRealArtifact) {
  ScratchDir dir("idx_table");
  const std::string path = dir.File("run.idx");
  const AlignmentIndex index = SmallIndex();
  ASSERT_TRUE(SaveAlignmentIndex(index, path).ok());
  const auto table = IndexSectionBoundaries(index);
  ASSERT_FALSE(table.empty());
  EXPECT_EQ(table.back().name, "crc_footer");
  // The CRC footer is the last 4 bytes; if the table's arithmetic drifts
  // from the writer, this is the assertion that catches it.
  EXPECT_EQ(table.back().offset + 4, FileSize(path));
}

TEST(AlignmentIndexTornWriteTest, TruncationAtEverySectionBoundaryIsDataLoss) {
  ScratchDir dir("idx_torn_trunc");
  const AlignmentIndex index = SmallIndex();
  const std::string clean = dir.File("clean.idx");
  ASSERT_TRUE(SaveAlignmentIndex(index, clean).ok());
  const size_t size = FileSize(clean);
  for (const IndexSectionBoundary& b : IndexSectionBoundaries(index)) {
    // Torn exactly AT the boundary (section entirely missing) and one byte
    // INTO it (section partially written).
    for (const size_t cut : {b.offset, b.offset + 1}) {
      if (cut >= size) continue;
      const std::string path =
          dir.File("cut_" + b.name + "_" + std::to_string(cut));
      ASSERT_TRUE(SaveAlignmentIndex(index, path).ok());
      TruncateFile(path, cut);
      auto loaded = LoadAlignmentIndex(path);
      ASSERT_FALSE(loaded.ok()) << b.name << " cut at " << cut;
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << b.name << " cut at " << cut << ": "
          << loaded.status().ToString();
    }
  }
}

TEST(AlignmentIndexTornWriteTest, BitFlipAtEverySectionBoundaryIsDataLoss) {
  ScratchDir dir("idx_torn_flip");
  const AlignmentIndex index = SmallIndex();
  for (const IndexSectionBoundary& b : IndexSectionBoundaries(index)) {
    for (const int bit : {0, 7}) {
      const std::string path =
          dir.File("flip_" + b.name + "_" + std::to_string(bit));
      ASSERT_TRUE(SaveAlignmentIndex(index, path).ok());
      FlipBit(path, b.offset, bit);
      auto loaded = LoadAlignmentIndex(path);
      ASSERT_FALSE(loaded.ok()) << b.name << " bit " << bit;
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << b.name << " bit " << bit << ": " << loaded.status().ToString();
    }
  }
}

TEST(AlignmentIndexIoTest, SaveIsAtomicNoTmpLeftBehind) {
  ScratchDir dir("idx_atomic");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Overwrite in place keeps the artifact loadable.
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  EXPECT_TRUE(LoadAlignmentIndex(path).ok());
}

TEST(AlignmentIndexBytesTest, SerializeValidateRoundTrip) {
  auto bytes = SerializeAlignmentIndex(SmallIndex());
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_TRUE(ValidateAlignmentIndexBytes(bytes.value()).ok());
  // Any flipped bit fails validation (whole-container CRC).
  std::string corrupt = bytes.value();
  corrupt[corrupt.size() / 2] ^= 0x10;
  EXPECT_EQ(ValidateAlignmentIndexBytes(corrupt).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(ValidateAlignmentIndexBytes("").code(), StatusCode::kDataLoss);
}

TEST(AlignmentIndexGenerationalTest, DirectoryRoundTripAndHistory) {
  ScratchDir dir("idx_gen");
  const std::string store_dir = dir.File("store");
  const AlignmentIndex index = SmallIndex();
  // Explicit generational save creates the directory.
  ASSERT_TRUE(SaveAlignmentIndexGenerational(index, store_dir).ok());
  // SaveAlignmentIndex on the now-existing directory routes generationally:
  // a second generation appears instead of a file named like the directory.
  ASSERT_TRUE(SaveAlignmentIndex(index, store_dir).ok());
  EXPECT_TRUE(std::filesystem::exists(store_dir + "/MANIFEST"));
  EXPECT_TRUE(std::filesystem::exists(store_dir + "/index.g2"));

  auto loaded = LoadAlignmentIndex(store_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->source_names, index.source_names);
  EXPECT_EQ(loaded->pairs, index.pairs);
}

TEST(AlignmentIndexGenerationalTest, CorruptNewestFallsBackToPrevious) {
  ScratchDir dir("idx_gen_fallback");
  const std::string store_dir = dir.File("store");
  const AlignmentIndex index = SmallIndex();
  ASSERT_TRUE(SaveAlignmentIndexGenerational(index, store_dir).ok());
  ASSERT_TRUE(SaveAlignmentIndexGenerational(index, store_dir).ok());
  // Corrupt the newest generation on disk; the manifest still lists it.
  const std::string newest = store_dir + "/index.g2";
  ASSERT_TRUE(std::filesystem::exists(newest));
  FlipBit(newest, FileSize(newest) / 2);

  auto loaded = LoadAlignmentIndex(store_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->source_names, index.source_names);
  // The corrupt generation was quarantined, not served.
  EXPECT_FALSE(std::filesystem::exists(newest));
  EXPECT_TRUE(std::filesystem::exists(newest + ".corrupt"));
}

TEST(AlignmentIndexGenerationalTest, AllGenerationsCorruptIsDataLoss) {
  ScratchDir dir("idx_gen_allbad");
  const std::string store_dir = dir.File("store");
  ASSERT_TRUE(SaveAlignmentIndexGenerational(SmallIndex(), store_dir).ok());
  const std::string only = store_dir + "/index.g1";
  ASSERT_TRUE(std::filesystem::exists(only));
  FlipBit(only, FileSize(only) / 2);
  EXPECT_EQ(LoadAlignmentIndex(store_dir).status().code(),
            StatusCode::kDataLoss);
}

TEST(AlignmentIndexGenerationalTest, KeepWindowBoundsHistory) {
  ScratchDir dir("idx_gen_keep");
  const std::string store_dir = dir.File("store");
  const AlignmentIndex index = SmallIndex();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        SaveAlignmentIndexGenerational(index, store_dir, /*keep=*/2).ok());
  }
  // Only the two newest generations survive the GC window.
  EXPECT_FALSE(std::filesystem::exists(store_dir + "/index.g2"));
  EXPECT_TRUE(std::filesystem::exists(store_dir + "/index.g3"));
  EXPECT_TRUE(std::filesystem::exists(store_dir + "/index.g4"));
  EXPECT_TRUE(LoadAlignmentIndex(store_dir).ok());
}

}  // namespace
}  // namespace ceaff::serve
