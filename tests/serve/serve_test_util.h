#ifndef CEAFF_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define CEAFF_TESTS_SERVE_SERVE_TEST_UTIL_H_

/// Shared fixture data for the serving tests: a small, fully populated
/// AlignmentIndex whose structural embeddings are identical for gold pairs
/// (structural cosine 1 on the diagonal), with name embeddings produced by
/// the same hash-fallback store the service reconstructs at query time.

#include <string>
#include <vector>

#include "ceaff/common/logging.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/text/name_embedding.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::testing {

inline serve::AlignmentIndexInput SmallIndexInput() {
  serve::AlignmentIndexInput input;
  input.dataset = "unit-test";
  input.source_names = {"alpha one", "beta two", "gamma three", "delta four"};
  input.target_names = {"alpha uno", "beta dos", "gamma tres", "delta quatro"};
  for (uint32_t i = 0; i < 4; ++i) input.pairs.push_back({i, i, 0.9f});
  input.weights = {0.5, 0.25, 0.25};
  input.semantic_seed = 17;

  const text::WordEmbeddingStore store(16, input.semantic_seed);
  input.source_name_emb = text::EmbedNames(store, input.source_names);
  input.target_name_emb = text::EmbedNames(store, input.target_names);
  input.source_name_emb.L2NormalizeRows();
  input.target_name_emb.L2NormalizeRows();

  // Identity-like structural embeddings: gold pairs share a row, so their
  // structural cosine is exactly 1 and everything else is 0.
  la::Matrix structural(4, 4);
  for (size_t i = 0; i < 4; ++i) structural.at(i, i) = 1.0f;
  input.source_struct_emb = structural;
  input.target_struct_emb = structural;
  return input;
}

inline serve::AlignmentIndex SmallIndex() {
  auto index = serve::BuildAlignmentIndex(SmallIndexInput());
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

}  // namespace ceaff::testing

#endif  // CEAFF_TESTS_SERVE_SERVE_TEST_UTIL_H_
