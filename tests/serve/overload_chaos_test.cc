#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/serve/service.h"
#include "serve/serve_test_util.h"
#include "testing/fault_injection.h"

// Chaos tests for the overload-protection path: the "serve.topk.scan"
// failpoint (evaluated at the start of every uncached candidate scan)
// slows scoring down — simulating it suddenly getting expensive — while
// concurrent callers hammer the service, and the tests assert the
// protective behaviours — shedding, degradation, recovery, batch
// retry/hedging — rather than exact latencies. Run under TSan by
// run_checks.sh: the interesting bugs here are data races between the
// admission/degradation state and the worker threads.

namespace ceaff::serve {
namespace {

using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::SmallIndex;
using ::ceaff::testing::SmallIndexInput;

constexpr auto kTestDeadline = std::chrono::seconds(20);
constexpr char kScanSite[] = "serve.topk.scan";

/// Arms the scan-delay failpoint for one test and guarantees disarm on the
/// way out (including early ASSERT exits), so tests cannot leak arms into
/// each other through the process-global registry.
class ScopedScanDelay {
 public:
  ScopedScanDelay() { ceaff::failpoint::ResetHitCounts(); }
  ~ScopedScanDelay() { ceaff::failpoint::Clear(); }

  void SetMillis(int ms) {
    const std::string spec =
        ms > 0 ? std::string(kScanSite) + "=delay:" + std::to_string(ms) : "";
    ASSERT_TRUE(ceaff::failpoint::Configure(spec).ok());
  }

  uint64_t invocations() const { return ceaff::failpoint::HitCount(kScanSite); }
};

std::shared_ptr<const AlignmentIndex> SharedSmallIndex() {
  return std::make_shared<const AlignmentIndex>(SmallIndex());
}

bool DeadlinePassed(std::chrono::steady_clock::time_point start) {
  return std::chrono::steady_clock::now() - start > kTestDeadline;
}

TEST(OverloadChaosTest, SlowScansUnderConcurrencyShedThenRecover) {
  ScopedScanDelay chaos;
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  options.cache_capacity = 0;  // every request must scan
  // Sensitive admission control; degradation out of the picture.
  options.admission.target_delay_ns = 100'000;   // 100 us
  options.admission.interval_ns = 2'000'000;     // 2 ms
  options.degradation.enter_textual_delay_ns = UINT64_MAX;
  options.degradation.enter_pair_only_delay_ns = UINT64_MAX;
  AlignmentService service(SharedSmallIndex(), options);

  chaos.SetMillis(2);
  std::atomic<bool> saw_shed{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> hammer;
  for (int t = 0; t < 4; ++t) {
    hammer.emplace_back([&service, &saw_shed, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = service.TopK("alpha one", 2);
        if (!r.ok() && r.status().IsUnavailable()) {
          saw_shed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  while (!saw_shed.load(std::memory_order_relaxed) &&
         !DeadlinePassed(start)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : hammer) t.join();

  EXPECT_TRUE(saw_shed.load()) << "no shed within the deadline";
  EXPECT_GT(chaos.invocations(), 0u);
  EXPECT_GE(service.Stats().topk.shed, 1u);

  // Chaos over: the very next uncontended request must be admitted (a
  // healthy delay estimate resets the CoDel state on the spot).
  chaos.SetMillis(0);
  auto recovered = service.TopK("alpha one", 2);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(OverloadChaosTest, SustainedSlowScansDegradeToPairOnlyThenRecover) {
  ScopedScanDelay chaos;
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  options.cache_capacity = 0;
  // Admission out of the picture; sensitive degradation with a short
  // window and dwell so recovery fits in a unit test.
  options.admission.target_delay_ns = UINT64_MAX;
  options.degradation.enter_textual_delay_ns = 200'000;      // 200 us
  options.degradation.enter_pair_only_delay_ns = 2'000'000;  // 2 ms
  options.degradation.window_ns = 100'000'000;               // 100 ms
  options.degradation.min_dwell_ns = 20'000'000;             // 20 ms
  AlignmentService service(SharedSmallIndex(), options);

  chaos.SetMillis(2);
  std::atomic<bool> saw_pair_only_answer{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> hammer;
  for (int t = 0; t < 4; ++t) {
    hammer.emplace_back([&service, &saw_pair_only_answer, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        // A known source: answerable at every tier, including pair-only.
        auto r = service.TopK("beta two", 3);
        if (r.ok() && r->tier == ServiceTier::kPairOnly) {
          EXPECT_TRUE(r->degraded);
          ASSERT_EQ(r->candidates.size(), 1u);
          EXPECT_EQ(r->candidates[0].target_name, "beta dos");
          saw_pair_only_answer.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  while (!saw_pair_only_answer.load(std::memory_order_relaxed) &&
         !DeadlinePassed(start)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : hammer) t.join();
  ASSERT_TRUE(saw_pair_only_answer.load())
      << "never reached the pair-only tier within the deadline";
  EXPECT_GE(service.Stats().degradation.served_pair_only, 1u);

  // Load vanishes: light sequential traffic must walk the service back to
  // full scoring (one tier at a time, after each dwell).
  chaos.SetMillis(0);
  const auto recovery_start = std::chrono::steady_clock::now();
  bool recovered = false;
  while (!DeadlinePassed(recovery_start)) {
    auto r = service.TopK("beta two", 3);
    if (r.ok() && !r->degraded) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(recovered) << "tier never returned to full";
  EXPECT_EQ(service.tier(), ServiceTier::kFull);
}

TEST(OverloadChaosTest, SaturatedBatchQueueShedsThenHedgingFillsEverySlot) {
  ScopedScanDelay chaos;
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;  // almost no queue: submissions must shed
  options.cache_capacity = 0;
  options.admission.target_delay_ns = UINT64_MAX;
  options.degradation.enter_textual_delay_ns = UINT64_MAX;
  options.degradation.enter_pair_only_delay_ns = UINT64_MAX;
  options.batch_retry.max_attempts = 2;
  options.batch_retry.initial_backoff_ms = 1;
  options.batch_retry.max_backoff_ms = 2;
  options.hedge_batch_sheds = true;
  AlignmentService service(SharedSmallIndex(), options);

  // The single worker holds each task ~20 ms, far longer than the retry
  // budget (~2 attempts x 2 ms), so most of the 8 submissions exhaust
  // their retries and shed — and the hedged inline attempt answers them.
  chaos.SetMillis(20);
  const std::vector<std::string> names = {
      "alpha one", "beta two",    "gamma three", "delta four",
      "alpha one", "gamma three", "beta two",    "delta four"};
  auto results = service.BatchTopK(names, 2);
  ASSERT_EQ(results.size(), names.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << i << ": " << results[i].status().ToString();
    EXPECT_EQ(results[i]->query, names[i]);
  }
  // The queue really did saturate (otherwise this test tested nothing).
  EXPECT_GE(service.Stats().topk.shed, 1u);
}

TEST(OverloadChaosTest, ReloadWhileDrainingSlowBatchKeepsEverySlotAnswered) {
  ScratchDir dir("chaos_reload");
  const std::string good = dir.File("good.idx");
  {
    auto input = SmallIndexInput();
    input.dataset = "reloaded-under-chaos";
    auto index = BuildAlignmentIndex(std::move(input));
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(SaveAlignmentIndex(index.value(), good).ok());
  }

  ScopedScanDelay chaos;
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 64;
  options.cache_capacity = 16;
  AlignmentService service(SharedSmallIndex(), options);

  // A slow 32-query batch keeps the pool busy draining while the index is
  // hot-swapped underneath it (both file reload and in-process adopt).
  chaos.SetMillis(1);
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    names.insert(names.end(),
                 {"alpha one", "beta two", "gamma three", "delta four"});
  }
  std::vector<StatusOr<TopKResult>> results;
  std::thread batch([&service, &names, &results] {
    results = service.BatchTopK(names, 2);
  });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.Reload(good).ok());
    service.AdoptIndex(SharedSmallIndex());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  batch.join();

  // Every slot answered — in-flight requests keep whichever snapshot they
  // started with alive, so a swap mid-drain is invisible to them.
  ASSERT_EQ(results.size(), names.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << i << ": " << results[i].status().ToString();
    ASSERT_FALSE(results[i]->candidates.empty());
  }
  EXPECT_EQ(service.Stats().reload.errors, 0u);
}

}  // namespace
}  // namespace ceaff::serve
