#include "ceaff/serve/degradation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace ceaff::serve {
namespace {

// Virtual-time tests: the policy never reads a clock.

DegradationOptions SmallOptions() {
  DegradationOptions options;
  options.enter_textual_delay_ns = 1'000;
  options.enter_pair_only_delay_ns = 10'000;
  options.exit_fraction = 0.5;
  options.window_ns = 100;     // tiny window: old samples age out fast
  options.min_dwell_ns = 100;  // short dwell keeps tests compact
  return options;
}

TEST(DegradationPolicyTest, StaysFullUnderLightLoad) {
  DegradationPolicy policy(SmallOptions());
  for (uint64_t t = 0; t < 50; ++t) {
    EXPECT_EQ(policy.Observe(/*queue_delay_ns=*/0, /*now_ns=*/t),
              ServiceTier::kFull);
  }
  EXPECT_EQ(policy.tier(), ServiceTier::kFull);
  EXPECT_EQ(policy.SmoothedDelayNanos(), 0u);
}

TEST(DegradationPolicyTest, StepsDownWhenWindowedMeanCrossesThreshold) {
  DegradationPolicy policy(SmallOptions());
  EXPECT_EQ(policy.Observe(2'000, 0), ServiceTier::kTextualOnly);
  EXPECT_EQ(policy.tier(), ServiceTier::kTextualOnly);
}

TEST(DegradationPolicyTest, SkipsStraightToPairOnlyOnASpike) {
  DegradationPolicy policy(SmallOptions());
  // Degrading is immediate and may skip a tier: protection must not walk
  // down one request at a time while the queue explodes.
  EXPECT_EQ(policy.Observe(50'000, 0), ServiceTier::kPairOnly);
}

TEST(DegradationPolicyTest, MeanNotSingleSampleDrivesTheTier) {
  DegradationPolicy policy(SmallOptions());
  // Two samples inside one window: (0 + 2400) / 2 = 1200 >= 1000.
  EXPECT_EQ(policy.Observe(0, 0), ServiceTier::kFull);
  EXPECT_EQ(policy.Observe(2'400, 10), ServiceTier::kTextualOnly);
  EXPECT_EQ(policy.SmoothedDelayNanos(), 1'200u);
}

TEST(DegradationPolicyTest, RecoversOneTierAtATimeAfterDwell) {
  DegradationPolicy policy(SmallOptions());
  ASSERT_EQ(policy.Observe(50'000, 0), ServiceTier::kPairOnly);
  // Load vanishes, but recovery waits out the dwell — and then steps to
  // textual-only, not straight back to full.
  EXPECT_EQ(policy.Observe(0, 50), ServiceTier::kPairOnly);  // dwell not met
  EXPECT_EQ(policy.Observe(0, 200), ServiceTier::kTextualOnly);
  // One more dwell at textual-only before full service resumes.
  EXPECT_EQ(policy.Observe(0, 250), ServiceTier::kTextualOnly);
  EXPECT_EQ(policy.Observe(0, 400), ServiceTier::kFull);
}

TEST(DegradationPolicyTest, ExitFractionBlocksRecoveryNearTheThreshold) {
  DegradationPolicy policy(SmallOptions());
  ASSERT_EQ(policy.Observe(2'000, 0), ServiceTier::kTextualOnly);
  // 600 ns is under the 1000 ns enter threshold but above the 500 ns exit
  // bar (0.5 x enter): without this hysteresis the tier would flap.
  EXPECT_EQ(policy.Observe(600, 200), ServiceTier::kTextualOnly);
  EXPECT_EQ(policy.Observe(600, 400), ServiceTier::kTextualOnly);
  // Clearly below the exit bar: recovery proceeds.
  EXPECT_EQ(policy.Observe(0, 600), ServiceTier::kFull);
}

TEST(DegradationPolicyTest, ZeroThresholdsPinTheDegradedTier) {
  // A zero enter threshold means "always at least this tier" (>= compare)
  // — the service tests use this to pin a tier deterministically.
  DegradationOptions pin_pair = SmallOptions();
  pin_pair.enter_textual_delay_ns = 0;
  pin_pair.enter_pair_only_delay_ns = 0;
  DegradationPolicy pair(pin_pair);
  EXPECT_EQ(pair.Observe(0, 0), ServiceTier::kPairOnly);

  DegradationOptions pin_textual = SmallOptions();
  pin_textual.enter_textual_delay_ns = 0;
  pin_textual.enter_pair_only_delay_ns = UINT64_MAX;
  DegradationPolicy textual(pin_textual);
  EXPECT_EQ(textual.Observe(0, 0), ServiceTier::kTextualOnly);
}

TEST(DegradationPolicyTest, TierNanosAccountsOccupancy) {
  DegradationPolicy policy(SmallOptions());
  ASSERT_EQ(policy.Observe(0, 0), ServiceTier::kFull);
  ASSERT_EQ(policy.Observe(50'000, 1'000), ServiceTier::kPairOnly);
  ASSERT_EQ(policy.Observe(50'000, 2'000), ServiceTier::kPairOnly);
  const auto nanos = policy.TierNanos(/*now_ns=*/3'000);
  EXPECT_EQ(nanos[static_cast<size_t>(ServiceTier::kFull)], 1'000u);
  EXPECT_EQ(nanos[static_cast<size_t>(ServiceTier::kTextualOnly)], 0u);
  EXPECT_EQ(nanos[static_cast<size_t>(ServiceTier::kPairOnly)], 2'000u);
}

TEST(ServiceTierNameTest, StableNames) {
  EXPECT_STREQ(ServiceTierName(ServiceTier::kFull), "full");
  EXPECT_STREQ(ServiceTierName(ServiceTier::kTextualOnly), "textual_only");
  EXPECT_STREQ(ServiceTierName(ServiceTier::kPairOnly), "pair_only");
}

}  // namespace
}  // namespace ceaff::serve
