// Kill-the-process recovery drills for the alignment-index export path:
// crash a child at every step of the atomic write protocol while it
// replaces a served index artifact, and assert the artifact on disk is
// always loadable and always a complete generation — the old one before
// the rename, the new one after — never a torn file.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/service.h"
#include "serve/serve_test_util.h"
#include "testing/crash_harness.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

namespace ft = ceaff::testing;

AlignmentIndex NamedIndex(const std::string& dataset) {
  auto input = ft::SmallIndexInput();
  input.dataset = dataset;
  auto index = BuildAlignmentIndex(std::move(input));
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

TEST(IndexCrashTest, ExportCrashAlwaysLeavesALoadableGeneration) {
  ft::ScratchDir scratch("crash_index");
  const std::string path = scratch.File("run.idx");
  const AlignmentIndex old_gen = NamedIndex("gen-old");
  const AlignmentIndex new_gen = NamedIndex("gen-new");

  auto prepare = [&] {
    std::filesystem::remove(path);
    CEAFF_CHECK(SaveAlignmentIndex(old_gen, path).ok());
  };
  auto operation = [&]() -> Status {
    return SaveAlignmentIndex(new_gen, path);
  };
  auto verify = [&](const std::string& site, bool crashed) {
    auto loaded = LoadAlignmentIndex(path);
    ASSERT_TRUE(loaded.ok())
        << "after crash at " << site << ": " << loaded.status().ToString();
    // The rename is the publish: a crash before it must leave the old
    // artifact, a crash after it the complete new one. No third outcome.
    const bool past_rename = site == "index.before_dir_fsync";
    const std::string expected =
        (!crashed || past_rename) ? "gen-new" : "gen-old";
    EXPECT_EQ(loaded->dataset, expected) << "crash at " << site;
    // Whichever generation survived, a service can serve it.
    auto service = AlignmentService::Open(path, ServiceOptions{});
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_TRUE((*service)->LookupPair("alpha one").ok());
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "index.";
  options.iterations = ft::CrashIterationsFromEnv(5);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

// The same drill for a fresh export (no previous artifact): a crash
// before the rename leaves nothing, after it the complete artifact — a
// loader must never see a torn file under the final name.
TEST(IndexCrashTest, FirstExportCrashLeavesNothingOrEverything) {
  ft::ScratchDir scratch("crash_index_fresh");
  const std::string path = scratch.File("fresh.idx");
  const AlignmentIndex index = NamedIndex("fresh-gen");

  auto prepare = [&] { std::filesystem::remove(path); };
  auto operation = [&]() -> Status { return SaveAlignmentIndex(index, path); };
  auto verify = [&](const std::string& site, bool crashed) {
    const bool past_rename = site == "index.before_dir_fsync";
    if (!crashed || past_rename) {
      auto loaded = LoadAlignmentIndex(path);
      ASSERT_TRUE(loaded.ok())
          << "after crash at " << site << ": " << loaded.status().ToString();
      EXPECT_EQ(loaded->dataset, "fresh-gen");
    } else {
      // Nothing was published; the only acceptable state is "no file" —
      // a torn file under the final name would be a protocol violation.
      EXPECT_FALSE(std::filesystem::exists(path)) << "crash at " << site;
    }
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "index.";
  options.iterations = ft::CrashIterationsFromEnv(5);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

}  // namespace
}  // namespace ceaff::serve
