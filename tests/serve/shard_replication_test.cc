/// Drills for the self-healing replicated fleet (R-way replication, rolling
/// reload, canary rollback — DESIGN.md §14). The invariants: with R >= 2,
/// losing any single worker yields answers BIT-IDENTICAL to single-process
/// mode and never marked degraded; a rolling RELOAD keeps every range
/// served with zero failed queries and never mixes generations in one
/// merge; a generation that corrupts replies under the post-reload canary
/// is automatically quarantined and the fleet rolled back.

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/router.h"
#include "ceaff/serve/topk_scan.h"
#include "serve/shard_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::ExpectCandidatesIdentical;
using ::ceaff::testing::RangeReference;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::ShardEmbedder;
using ::ceaff::testing::ShardIndex;

class ShardReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("shard_replication");
    index_ = ShardIndex(24);
    index_path_ = dir_->File("shard.idx");
    ASSERT_TRUE(SaveAlignmentIndex(index_, index_path_).ok());
  }

  ShardRouterOptions ReplicatedOptions(size_t shards, size_t replicas) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.num_replicas = replicas;
    options.respawn_breaker.failure_threshold = 3;
    options.respawn_breaker.cooldown_ns = 200'000'000;  // 200 ms
    return options;
  }

  /// Full-fidelity check against the single-process reference: ok, not
  /// degraded, candidates bit-identical.
  void ExpectFullFidelity(ShardRouter& router, const AlignmentIndex& index,
                          const std::string& query, size_t k) {
    const auto store = ShardEmbedder(index);
    auto got = router.TopK(query, k);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->degraded) << query;
    const TopKResult want =
        RangeReference(index, store, query, k, {{0, index.num_targets()}});
    ExpectCandidatesIdentical(got->candidates, want.candidates);
  }

  std::unique_ptr<ScratchDir> dir_;
  AlignmentIndex index_;
  std::string index_path_;
};

// === Tentpole 1: R-way replication — single-worker loss is invisible ====

TEST_F(ShardReplicationTest, KillAnySingleWorkerStaysBitIdentical) {
  auto router_or =
      ShardRouter::Start(index_path_, ReplicatedOptions(3, 2));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  ASSERT_EQ(router.num_ranges(), 3u);
  ASSERT_EQ(router.num_shards(), 6u);

  // SIGKILL every worker in turn (so each range loses its replica 0 and
  // its replica 1 once). Every query issued while a worker is down must be
  // bit-identical to single-process mode and NOT degraded: the scatter
  // fails over to the surviving replica of the range.
  for (size_t victim = 0; victim < router.num_shards(); ++victim) {
    ASSERT_TRUE(router.shard_alive(victim));
    ::kill(router.shard_pid(victim), SIGKILL);
    ExpectFullFidelity(router, index_, "source entity 7", 5);
    ExpectFullFidelity(router, index_, "never seen before", 4);
    // Heal the fleet before the next round so exactly one worker is ever
    // down (CheckHealth reaps, then respawns through the breaker).
    router.CheckHealth();
    ASSERT_TRUE(router.shard_alive(victim)) << "victim " << victim;
  }
  EXPECT_EQ(router.degraded_answers(), 0u);
  EXPECT_GT(router.failovers(), 0u);
}

TEST_F(ShardReplicationTest, WholeReplicaSetDownDegradesThenRecovers) {
  auto router_or =
      ShardRouter::Start(index_path_, ReplicatedOptions(3, 2));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  // Kill BOTH replicas of range 1: failover has nowhere to go, so the
  // survivor merge kicks in — degraded, but exactly the surviving-range
  // reference (never silently wrong).
  ::kill(router.shard_pid(router.worker_index(1, 0)), SIGKILL);
  ::kill(router.shard_pid(router.worker_index(1, 1)), SIGKILL);
  auto got = router.TopK("source entity 3", 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->degraded);
  std::vector<std::pair<size_t, size_t>> survivors;
  for (size_t w = 0; w < router.num_shards(); ++w) {
    if (router.shard_alive(w)) survivors.push_back(router.shard_range(w));
  }
  const auto store = ShardEmbedder(index_);
  const TopKResult want = RangeReference(
      index_, store, "source entity 3", 5,
      {{survivors[0].first, survivors[0].second},
       {survivors[2].first, survivors[2].second}});
  ExpectCandidatesIdentical(got->candidates, want.candidates);

  // The breakers respawn the pair; full fidelity returns.
  router.CheckHealth();
  ExpectFullFidelity(router, index_, "source entity 3", 5);
}

TEST_F(ShardReplicationTest, PairLookupSurvivesReplicaLoss) {
  auto router_or =
      ShardRouter::Start(index_path_, ReplicatedOptions(2, 2));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  auto before = router.LookupPair("source entity 4");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  for (size_t victim = 0; victim < 3; ++victim) {
    ::kill(router.shard_pid(victim), SIGKILL);
  }
  // Three of four workers dead, no HEALTH pass in between: PAIR stays
  // exact off the last survivor.
  auto after = router.LookupPair("source entity 4");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->target_name, before->target_name);
  EXPECT_EQ(after->score, before->score);
}

// === Tentpole 2: rolling reload ========================================

TEST_F(ShardReplicationTest, RollingReloadServesEveryQueryMidCycle) {
  // Generational store directory so both generations stay on disk.
  const std::string store_dir = dir_->File("store");
  std::filesystem::create_directories(store_dir);
  ASSERT_TRUE(SaveAlignmentIndex(index_, store_dir).ok());

  auto router_or =
      ShardRouter::Start(store_dir, ReplicatedOptions(2, 2));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  const uint64_t gen_before = router.current_generation();
  ExpectFullFidelity(router, index_, "source entity 1", 4);

  const AlignmentIndex next_index = ShardIndex(30);
  ASSERT_TRUE(SaveAlignmentIndex(next_index, store_dir).ok());

  // Between every cycled worker, issue queries: each must succeed, never
  // be degraded, and be bit-identical to the single-process reference of
  // WHICHEVER generation the scatter pinned — never a mix.
  const auto store_a = ShardEmbedder(index_);
  const auto store_b = ShardEmbedder(next_index);
  size_t hook_queries = 0;
  size_t on_old = 0;
  size_t on_new = 0;
  router.SetReloadCycleHook([&](size_t) {
    auto got = router.TopK("source entity 2", 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->degraded);
    if (got->generation == gen_before) {
      ++on_old;
      const TopKResult want = RangeReference(
          index_, store_a, "source entity 2", 5,
          {{0, index_.num_targets()}});
      ExpectCandidatesIdentical(got->candidates, want.candidates);
    } else {
      ++on_new;
      const TopKResult want = RangeReference(
          next_index, store_b, "source entity 2", 5,
          {{0, next_index.num_targets()}});
      ExpectCandidatesIdentical(got->candidates, want.candidates);
    }
    ++hook_queries;
  });
  ASSERT_TRUE(router.Reload(store_dir).ok());
  router.SetReloadCycleHook(nullptr);

  EXPECT_EQ(hook_queries, 4u);  // one per cycled worker
  // The replica-major cycle keeps the OLD generation complete until its
  // last replica set is drained, and the NEW one takes over the moment it
  // covers every range — both sides of the pin must have served.
  EXPECT_GT(on_old, 0u);
  EXPECT_GT(on_new, 0u);
  EXPECT_EQ(router.reloads(), 1u);
  EXPECT_GT(router.current_generation(), gen_before);
  for (size_t w = 0; w < router.num_shards(); ++w) {
    EXPECT_TRUE(router.shard_alive(w));
    EXPECT_EQ(router.shard_generation(w), router.current_generation());
  }
  ExpectFullFidelity(router, next_index, "source entity 27", 5);
  EXPECT_EQ(router.degraded_answers(), 0u);
}

// === Satellite: RELOAD-vs-HEALTH-reap race =============================

TEST_F(ShardReplicationTest, WorkerDeathMidReloadDoesNotWedgeOrDoubleSpawn) {
  const std::string store_dir = dir_->File("store");
  std::filesystem::create_directories(store_dir);
  ASSERT_TRUE(SaveAlignmentIndex(index_, store_dir).ok());

  auto router_or =
      ShardRouter::Start(store_dir, ReplicatedOptions(2, 2));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  ASSERT_TRUE(SaveAlignmentIndex(ShardIndex(30), store_dir).ok());

  // After the FIRST worker is cycled, SIGKILL a not-yet-cycled worker and
  // run the health pass the serving loop would run. The reap must land
  // (the death is observed) but the respawn must NOT: the rolling cycle
  // owns every worker transition, and a concurrent respawn would
  // double-spawn the slot the cycle is about to fill.
  const size_t victim = router.worker_index(0, 1);  // cycled last but one
  bool injected = false;
  router.SetReloadCycleHook([&](size_t cycled) {
    if (injected) return;
    injected = true;
    ASSERT_NE(cycled, victim);
    ::kill(router.shard_pid(victim), SIGKILL);
    // SIGKILL lands asynchronously; poll the health pass (reap-and-report
    // only during a reload) until the death is observed.
    ShardRouter::HealthReport health;
    for (int i = 0; i < 500 && router.shard_alive(victim); ++i) {
      health = router.CheckHealth();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(health.alive, router.num_shards() - 1);
    // Reaped, reported — and left down for the cycle to pick up.
    EXPECT_FALSE(router.shard_alive(victim));
  });
  ASSERT_TRUE(router.Reload(store_dir).ok());
  router.SetReloadCycleHook(nullptr);

  // The cycle itself healed the victim onto the new generation — exactly
  // one (re)spawn per worker, no double-respawn, nothing wedged.
  ASSERT_TRUE(injected);
  for (size_t w = 0; w < router.num_shards(); ++w) {
    EXPECT_TRUE(router.shard_alive(w)) << "worker " << w;
    EXPECT_EQ(router.shard_generation(w), router.current_generation());
  }
  EXPECT_EQ(router.StatsJson().find("\"respawns\": 2"), std::string::npos);
  auto health = router.CheckHealth();
  EXPECT_EQ(health.alive, router.num_shards());
  EXPECT_FALSE(health.degraded);
  ExpectFullFidelity(router, ShardIndex(30), "source entity 9", 5);
}

// === Tentpole 3: canary + automatic rollback ===========================

TEST_F(ShardReplicationTest, CanaryRollsBackAndQuarantinesBadGeneration) {
  const std::string store_dir = dir_->File("store");
  std::filesystem::create_directories(store_dir);
  ASSERT_TRUE(SaveAlignmentIndex(index_, store_dir).ok());

  ShardRouterOptions options = ReplicatedOptions(2, 2);
  options.canary_window = 8;
  auto router_or = ShardRouter::Start(store_dir, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  const uint64_t good_gen = router.current_generation();
  for (int i = 0; i < 4; ++i) {
    ExpectFullFidelity(router, index_, "source entity 6", 4);
  }

  // Publish generation 2, and arm every FUTURE worker spawn with a
  // corrupt-reply failpoint (send #1 is the handshake Pong, send #2 — the
  // first query reply — flips the frame CRC): the new generation passes
  // every load-time checksum but corrupts answers in production. This is
  // exactly the failure class only a canary can catch.
  ASSERT_TRUE(SaveAlignmentIndex(ShardIndex(30), store_dir).ok());
  for (size_t w = 0; w < router.num_shards(); ++w) {
    router.SetShardFailpoints(w, "shard.ipc.corrupt_reply=1in2");
  }
  ASSERT_TRUE(router.Reload(store_dir).ok());
  EXPECT_TRUE(router.canary_active());
  EXPECT_NE(router.current_generation(), good_gen);
  // Disarm for spawns AFTER the bad fleet, so the rollback's replacement
  // workers come up clean.
  for (size_t w = 0; w < router.num_shards(); ++w) {
    router.SetShardFailpoints(w, "");
  }

  // First query against the canary generation: every replica's reply is
  // corrupt (kDataLoss), the strongest rollback signal — the router
  // quarantines the generation and rolls the fleet back.
  auto poisoned = router.TopK("source entity 2", 5);
  EXPECT_FALSE(poisoned.ok());
  EXPECT_EQ(router.rollbacks(), 1u);
  EXPECT_FALSE(router.canary_active());
  EXPECT_EQ(router.current_generation(), good_gen);

  // The bad store generation is quarantined on disk: the store serves
  // generation 1 again and the `.corrupt` tombstone exists.
  auto store_gen = AlignmentIndexDirGeneration(store_dir);
  ASSERT_TRUE(store_gen.ok()) << store_gen.status().ToString();
  EXPECT_EQ(store_gen.value(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(store_dir + "/index.g2.corrupt"));

  // The restored fleet serves the GOOD generation, full fidelity; the
  // event is surfaced in STATS.
  ExpectFullFidelity(router, index_, "source entity 6", 4);
  const std::string stats = router.StatsJson();
  EXPECT_NE(stats.find("\"rollbacks\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("data-loss"), std::string::npos) << stats;
}

TEST_F(ShardReplicationTest, CanaryPassPromotesGeneration) {
  const std::string store_dir = dir_->File("store");
  std::filesystem::create_directories(store_dir);
  ASSERT_TRUE(SaveAlignmentIndex(index_, store_dir).ok());

  ShardRouterOptions options = ReplicatedOptions(2, 2);
  options.canary_window = 4;
  auto router_or = ShardRouter::Start(store_dir, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  ExpectFullFidelity(router, index_, "source entity 1", 3);

  const AlignmentIndex next_index = ShardIndex(30);
  ASSERT_TRUE(SaveAlignmentIndex(next_index, store_dir).ok());
  ASSERT_TRUE(router.Reload(store_dir).ok());
  EXPECT_TRUE(router.canary_active());
  // A healthy generation rides out the window and is promoted — no
  // rollback, canary disarmed.
  for (int i = 0; i < 4; ++i) {
    ExpectFullFidelity(router, next_index, "source entity 3", 4);
  }
  EXPECT_FALSE(router.canary_active());
  EXPECT_EQ(router.rollbacks(), 0u);
  EXPECT_NE(router.StatsJson().find("\"canary_passes\": 1"),
            std::string::npos);
}

// === Generation plumbing ===============================================

TEST_F(ShardReplicationTest, AnswersCarryTheGenerationTheyWereComputedOn) {
  auto router_or =
      ShardRouter::Start(index_path_, ReplicatedOptions(2, 2));
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;
  auto got = router.TopK("source entity 1", 3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->generation, router.current_generation());

  const std::string next = dir_->File("next.idx");
  ASSERT_TRUE(SaveAlignmentIndex(ShardIndex(30), next).ok());
  ASSERT_TRUE(router.Reload(next).ok());
  auto after = router.TopK("source entity 1", 3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, router.current_generation());
  EXPECT_GT(after->generation, got->generation);
}

}  // namespace
}  // namespace ceaff::serve
