// Zero-copy (mmap) index loading: the v2 artifact's matrix payloads are
// served as read-only views into the file mapping. These tests pin the
// three contracts that make that safe: the mmap and heap-fallback paths
// produce identical indexes, version-1 (unpadded) artifacts still load,
// and corruption fails the load on the mmap path exactly as it does on the
// heap path.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "ceaff/common/crc32.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/serve/alignment_index.h"
#include "serve/serve_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::FileSize;
using ::ceaff::testing::FlipBit;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::SmallIndex;

/// Forces LoadAlignmentIndex down the heap-copy fallback for the scope of
/// one test block.
class ForceHeapLoad {
 public:
  ForceHeapLoad() {
    CEAFF_CHECK(failpoint::Configure("index.load.mmap=error").ok());
  }
  ~ForceHeapLoad() { failpoint::Clear(); }
};

void ExpectIndexesEqual(const AlignmentIndex& a, const AlignmentIndex& b) {
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.source_names, b.source_names);
  EXPECT_EQ(a.target_names, b.target_names);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_DOUBLE_EQ(a.weight_structural, b.weight_structural);
  EXPECT_DOUBLE_EQ(a.weight_semantic, b.weight_semantic);
  EXPECT_DOUBLE_EQ(a.weight_string, b.weight_string);
  EXPECT_EQ(a.semantic_seed, b.semantic_seed);
  EXPECT_EQ(a.trigram_keys, b.trigram_keys);
  EXPECT_EQ(a.trigram_postings, b.trigram_postings);
  EXPECT_EQ(a.target_trigram_counts, b.target_trigram_counts);
  EXPECT_EQ(a.content_crc, b.content_crc);
  const la::Matrix* mats_a[] = {&a.source_name_emb, &a.target_name_emb,
                                &a.source_struct_emb, &a.target_struct_emb};
  const la::Matrix* mats_b[] = {&b.source_name_emb, &b.target_name_emb,
                                &b.source_struct_emb, &b.target_struct_emb};
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(mats_a[i]->rows(), mats_b[i]->rows()) << "matrix " << i;
    ASSERT_EQ(mats_a[i]->cols(), mats_b[i]->cols()) << "matrix " << i;
    if (mats_a[i]->size() > 0) {
      EXPECT_EQ(std::memcmp(mats_a[i]->data(), mats_b[i]->data(),
                            mats_a[i]->size() * sizeof(float)),
                0)
          << "matrix " << i;
    }
  }
}

TEST(IndexMmapTest, MmapLoadServesMatrixPayloadsAsViews) {
  ScratchDir dir("idx_mmap_views");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());

  auto loaded = LoadAlignmentIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const AlignmentIndex& index = *loaded;
  // The default path maps the file and keeps the mapping alive alongside
  // the views into it.
  EXPECT_NE(index.backing, nullptr);
  EXPECT_TRUE(index.source_name_emb.is_view());
  EXPECT_TRUE(index.target_name_emb.is_view());
  // The view payloads point inside the mapping.
  const char* begin = index.backing->data();
  const char* end = begin + index.backing->size();
  const char* payload =
      reinterpret_cast<const char*>(index.source_name_emb.data());
  EXPECT_GE(payload, begin);
  EXPECT_LT(payload, end);
  // The scrubber's recomputation reads through the mapping and agrees with
  // the stamp.
  EXPECT_EQ(index.ComputeContentCrc(), index.content_crc);
}

TEST(IndexMmapTest, HeapFallbackProducesAnIdenticalIndex) {
  ScratchDir dir("idx_mmap_parity");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());

  auto mapped = LoadAlignmentIndex(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_NE(mapped->backing, nullptr);

  ForceHeapLoad heap_only;
  auto heap = LoadAlignmentIndex(path);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_EQ(heap->backing, nullptr);
  EXPECT_FALSE(heap->source_name_emb.is_view());
  ExpectIndexesEqual(*mapped, *heap);
}

TEST(IndexMmapTest, CopyingAMappedIndexMaterialisesTheViews) {
  ScratchDir dir("idx_mmap_copy");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  auto loaded = LoadAlignmentIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const AlignmentIndex& index = *loaded;
  ASSERT_TRUE(index.source_name_emb.is_view());

  la::Matrix copy = index.source_name_emb;
  EXPECT_FALSE(copy.is_view());
  ASSERT_EQ(copy.rows(), index.source_name_emb.rows());
  EXPECT_EQ(std::memcmp(copy.data(), index.source_name_emb.data(),
                        copy.size() * sizeof(float)),
            0);
}

/// Serialises `index` in the retired v1 container layout (same field
/// order, no alignment pads before matrix sections) so the loader's
/// backwards-compat path can be exercised against a genuine v1 file.
std::string SerializeV1(const AlignmentIndex& index) {
  std::string out;
  auto bytes = [&](const void* p, size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  auto u32 = [&](uint32_t v) { bytes(&v, sizeof(v)); };
  auto u64 = [&](uint64_t v) { bytes(&v, sizeof(v)); };
  auto f32 = [&](float v) { bytes(&v, sizeof(v)); };
  auto f64 = [&](double v) { bytes(&v, sizeof(v)); };
  auto str = [&](const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
  };

  out.append("CEAFFIDX", 8);
  u32(1);  // version
  u32(0);  // reserved
  str(index.dataset);
  u64(index.source_names.size());
  u64(index.target_names.size());
  u64(index.pairs.size());
  f64(index.weight_structural);
  f64(index.weight_semantic);
  f64(index.weight_string);
  u64(index.semantic_seed);
  for (const std::string& name : index.source_names) str(name);
  for (const std::string& name : index.target_names) str(name);
  for (const AlignedPair& p : index.pairs) {
    u32(p.source);
    u32(p.target);
    f32(p.score);
  }
  for (const la::Matrix* m :
       {&index.source_name_emb, &index.target_name_emb,
        &index.source_struct_emb, &index.target_struct_emb}) {
    u64(m->rows());
    u64(m->cols());
    if (m->size() > 0) bytes(m->data(), m->size() * sizeof(float));
  }
  u64(index.trigram_keys.size());
  for (size_t i = 0; i < index.trigram_keys.size(); ++i) {
    str(index.trigram_keys[i]);
    u32(static_cast<uint32_t>(index.trigram_postings[i].size()));
    for (uint32_t id : index.trigram_postings[i]) u32(id);
  }
  for (uint32_t c : index.target_trigram_counts) u32(c);

  const uint32_t crc = Crc32Of(out.data(), out.size());
  bytes(&crc, sizeof(crc));
  return out;
}

TEST(IndexMmapTest, VersionOneArtifactsStillLoad) {
  ScratchDir dir("idx_mmap_v1");
  const std::string v1_path = dir.File("v1.idx");
  const std::string v2_path = dir.File("v2.idx");
  const AlignmentIndex index = SmallIndex();
  ASSERT_TRUE(SaveAlignmentIndex(index, v2_path).ok());
  {
    std::ofstream out(v1_path, std::ios::binary);
    const std::string v1_bytes = SerializeV1(index);
    out.write(v1_bytes.data(),
              static_cast<std::streamsize>(v1_bytes.size()));
    ASSERT_TRUE(out.good());
  }

  auto v1 = LoadAlignmentIndex(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  // v1 files never serve views: unpadded payloads cannot be safely aliased.
  EXPECT_EQ(v1->backing, nullptr);
  EXPECT_FALSE(v1->source_name_emb.is_view());

  auto v2 = LoadAlignmentIndex(v2_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ExpectIndexesEqual(*v1, *v2);
}

TEST(IndexMmapTest, CorruptionFailsTheMmapPathToo) {
  ScratchDir dir("idx_mmap_corrupt");
  const std::string path = dir.File("run.idx");
  ASSERT_TRUE(SaveAlignmentIndex(SmallIndex(), path).ok());
  // Flip a bit in the middle of the artifact (matrix payload territory).
  FlipBit(path, FileSize(path) / 2, 2);
  auto loaded = LoadAlignmentIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(IndexMmapTest, MissingFileIsIOErrorOnBothPaths) {
  const std::string path = "/nonexistent/nowhere.idx";
  EXPECT_EQ(LoadAlignmentIndex(path).status().code(), StatusCode::kIOError);
  ForceHeapLoad heap_only;
  EXPECT_EQ(LoadAlignmentIndex(path).status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ceaff::serve
