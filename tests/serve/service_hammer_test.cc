/// Concurrency hammer for the serving subsystem: several query threads
/// hit TopK / LookupPair / BatchTopK continuously while the main thread
/// hot-reloads the service, alternating valid and deliberately corrupted
/// index artifacts. Run under ASan/UBSan (and TSan via -DCEAFF_TSAN=ON) —
/// the assertions here are deliberately weak (served answers are always
/// internally consistent); the sanitizers carry the real load.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/service.h"
#include "serve/serve_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::FileSize;
using ::ceaff::testing::FlipBit;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::SmallIndexInput;

AlignmentIndex GenerationIndex(const std::string& dataset, float score) {
  auto input = SmallIndexInput();
  input.dataset = dataset;
  input.pairs.clear();
  for (uint32_t i = 0; i < 4; ++i) input.pairs.push_back({i, i, score});
  auto index = BuildAlignmentIndex(std::move(input));
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

TEST(ServeHammerTest, QueriesSurviveConcurrentValidAndCorruptReloads) {
  ScratchDir dir("serve_hammer");
  const std::string gen_a = dir.File("gen_a.idx");
  const std::string gen_b = dir.File("gen_b.idx");
  const std::string corrupt = dir.File("corrupt.idx");
  ASSERT_TRUE(SaveAlignmentIndex(GenerationIndex("gen-a", 0.9f), gen_a).ok());
  ASSERT_TRUE(SaveAlignmentIndex(GenerationIndex("gen-b", 0.5f), gen_b).ok());
  ASSERT_TRUE(
      SaveAlignmentIndex(GenerationIndex("gen-x", 0.1f), corrupt).ok());
  FlipBit(corrupt, FileSize(corrupt) / 2, 4);

  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 16;
  options.cache_capacity = 64;
  options.cache_shards = 2;
  auto service_or = AlignmentService::Open(gen_a, options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  AlignmentService& service = **service_or;

  const std::vector<std::string> sources = {"alpha one", "beta two",
                                            "gamma three", "delta four"};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<int> failures{0};

  auto record_failure = [&failures](const std::string& what) {
    if (failures.fetch_add(1) < 5) ADD_FAILURE() << what;
  };

  constexpr int kQueryThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      CancellationToken token;
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string& name = sources[(i + t) % sources.size()];
        switch (i % 4) {
          case 0: {
            auto r = service.TopK(name, 3);
            if (!r.ok()) {
              record_failure("TopK: " + r.status().ToString());
            } else if (r->candidates.empty() ||
                       r->candidates[0].target_name.empty()) {
              record_failure("TopK returned an inconsistent result");
            }
            break;
          }
          case 1: {
            auto r = service.LookupPair(name);
            if (!r.ok()) {
              record_failure("LookupPair: " + r.status().ToString());
            } else if (r->score != 0.9f && r->score != 0.5f) {
              // Answers must come from one of the two valid generations —
              // never from the corrupt artifact (score 0.1) or torn state.
              record_failure("LookupPair saw an impossible score");
            }
            break;
          }
          case 2: {
            auto results = service.BatchTopK({sources[0], name}, 2);
            for (const auto& r : results) {
              if (!r.ok()) record_failure("BatchTopK: " +
                                          r.status().ToString());
            }
            break;
          }
          default: {
            // A query with an already-expired deadline exercises the
            // cancellation path without ever corrupting shared state.
            token.Reset();
            token.SetDeadlineAfterMillis(-1);
            auto r = service.TopK(name, 3, &token);
            if (r.ok() &&
                service.Stats().topk.requests == 0) {
              record_failure("stats went backwards");
            }
            break;
          }
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kReloadRounds = 30;
  for (int round = 0; round < kReloadRounds; ++round) {
    switch (round % 3) {
      case 0:
        EXPECT_TRUE(service.Reload(gen_a).ok());
        break;
      case 1:
        EXPECT_TRUE(service.Reload(gen_b).ok());
        break;
      default: {
        Status refused = service.Reload(corrupt);
        EXPECT_EQ(refused.code(), StatusCode::kDataLoss);
        // The refused swap left a valid generation serving.
        const std::string dataset = service.snapshot()->dataset;
        EXPECT_TRUE(dataset == "gen-a" || dataset == "gen-b") << dataset;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queries.load(), 0u);
  // Reload stats saw every round, split success / refused exactly as driven.
  ServingSnapshot stats = service.Stats();
  EXPECT_EQ(stats.reload.requests, static_cast<uint64_t>(kReloadRounds));
  EXPECT_EQ(stats.reload.errors, static_cast<uint64_t>(kReloadRounds / 3));
  // Queries on live threads finished after the last swap: the final
  // snapshot is one of the valid generations.
  const std::string final_dataset = service.snapshot()->dataset;
  EXPECT_TRUE(final_dataset == "gen-a" || final_dataset == "gen-b");
}

TEST(ServeHammerTest, ScrubberDetectsBitFlippedSnapshotAndRecoversFromDisk) {
  ScratchDir dir("scrub_hammer");
  const std::string artifact = dir.File("index.idx");
  ASSERT_TRUE(
      SaveAlignmentIndex(GenerationIndex("scrub-gen", 0.9f), artifact).ok());

  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 16;
  options.cache_capacity = 64;
  auto service_or = AlignmentService::Open(artifact, options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  AlignmentService& service = **service_or;

  // A clean pass is a no-op.
  ASSERT_TRUE(service.ScrubOnce().ok());
  EXPECT_FALSE(service.poisoned());

  // Flip one trigram count of the live snapshot — in-memory corruption the
  // CRC stamped at Finalize no longer matches. (The embedding matrices are
  // zero-copy views into a read-only file mapping and literally cannot be
  // scribbled on, so the simulated bad-RAM hit lands on a heap-resident
  // field that the content CRC equally covers.) Done before the query
  // threads start, so the write happens-before every read.
  {
    auto snap = service.snapshot();
    auto* corrupt = const_cast<AlignmentIndex*>(snap.get());
    ASSERT_FALSE(corrupt->target_trigram_counts.empty());
    corrupt->target_trigram_counts[0] += 1;
  }

  const std::vector<std::string> sources = {"alpha one", "beta two",
                                            "gamma three", "delta four"};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        // Known sources: answerable at every tier, poisoned included. The
        // only acceptable non-OK answer is a shed (kUnavailable) — a crash
        // or any other error while the scrubber swaps snapshots is a bug.
        auto r = service.TopK(sources[(i + t) % sources.size()], 3);
        if (!r.ok() && !r.status().IsUnavailable()) {
          if (failures.fetch_add(1) < 5) {
            ADD_FAILURE() << "TopK: " << r.status().ToString();
          }
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the corrupted snapshot serve a little, then scrub: the pass must
  // detect the flip, poison, and recover by re-reading the artifact.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Status scrubbed = service.ScrubOnce();
  EXPECT_TRUE(scrubbed.ok()) << scrubbed.ToString();
  EXPECT_FALSE(service.poisoned());

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queries.load(), 0u);
  ServingSnapshot stats = service.Stats();
  EXPECT_GE(stats.scrub.cycles, 2u);
  EXPECT_EQ(stats.scrub.corruptions, 1u);
  EXPECT_EQ(stats.scrub.reloads_ok, 1u);
  EXPECT_EQ(stats.scrub.reloads_failed, 0u);
  EXPECT_FALSE(stats.scrub.poisoned);

  // The recovered snapshot is clean: another pass finds nothing.
  ASSERT_TRUE(service.ScrubOnce().ok());
  EXPECT_EQ(service.Stats().scrub.corruptions, 1u);
}

TEST(ServeHammerTest, BackgroundScrubberPoisonsAdoptedSnapshotWithoutDisk) {
  // An adopted (never-loaded-from-disk) snapshot has no artifact to recover
  // from: the background scrubber must poison it and the service must keep
  // answering pair-only — degraded, never crashed — until a clean snapshot
  // is adopted.
  auto corrupt_index =
      std::make_shared<AlignmentIndex>(GenerationIndex("adopt-corrupt", 0.9f));
  corrupt_index->target_name_emb.at(0, 0) += 1.0f;  // after Finalize's stamp

  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 16;
  options.scrub_interval_ms = 5;
  AlignmentService service(corrupt_index, options);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (!service.poisoned() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(service.poisoned()) << "background scrubber never fired";

  // Known source: answered pair-only. Unknown name: shed, not crashed.
  auto known = service.TopK("alpha one", 3);
  ASSERT_TRUE(known.ok()) << known.status().ToString();
  EXPECT_EQ(known->tier, ServiceTier::kPairOnly);
  EXPECT_TRUE(known->degraded);
  auto unknown = service.TopK("no such entity", 3);
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsUnavailable());

  ServingSnapshot stats = service.Stats();
  EXPECT_GE(stats.scrub.corruptions, 1u);
  EXPECT_EQ(stats.scrub.reloads_ok, 0u);  // nothing on disk to reload
  EXPECT_EQ(stats.scrub.reloads_failed, 0u);
  EXPECT_TRUE(stats.scrub.poisoned);

  // Adopting a clean snapshot lifts the poison and restores full scoring.
  // Polled: a scrub pass in flight during the swap may briefly re-poison
  // from the old snapshot; the next pass verifies clean and lifts it.
  service.AdoptIndex(std::make_shared<const AlignmentIndex>(
      GenerationIndex("adopt-clean", 0.5f)));
  bool restored = false;
  while (!restored && std::chrono::steady_clock::now() < deadline) {
    auto recovered = service.TopK("alpha one", 3);
    restored = !service.poisoned() && recovered.ok() && !recovered->degraded;
    if (!restored) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(restored) << "poison never lifted after adopting clean index";
}

TEST(ServeHammerTest, AdoptIndexRacesWithQueries) {
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 16;
  auto base = std::make_shared<const AlignmentIndex>(
      GenerationIndex("adopt-a", 0.9f));
  auto next = std::make_shared<const AlignmentIndex>(
      GenerationIndex("adopt-b", 0.5f));
  AlignmentService service(base, options);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = service.TopK("beta two", 2);
        if (!r.ok() || r->candidates.empty()) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    service.AdoptIndex(i % 2 == 0 ? next : base);
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ceaff::serve
