#include "ceaff/serve/router.h"

#include <gtest/gtest.h>
#include <signal.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/ann_build.h"
#include "ceaff/serve/ipc.h"
#include "ceaff/serve/topk_scan.h"
#include "serve/shard_test_util.h"
#include "testing/fault_injection.h"

namespace ceaff::serve {
namespace {

using ::ceaff::testing::ExpectCandidatesIdentical;
using ::ceaff::testing::RangeReference;
using ::ceaff::testing::ScratchDir;
using ::ceaff::testing::ShardEmbedder;
using ::ceaff::testing::ShardIndex;

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(IpcCodecTest, BinWriterReaderRoundTrip) {
  BinWriter w;
  w.U8(7);
  w.U32(0xDEADBEEF);
  w.U64(1ull << 40);
  w.I64(-12345);
  w.F32(0.1f);
  w.Str("hello shard");
  const std::string bytes = std::move(w).Take();

  BinReader r(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f = 0.0f;
  std::string s;
  ASSERT_TRUE(r.U8(&u8));
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.I64(&i64));
  ASSERT_TRUE(r.F32(&f));
  ASSERT_TRUE(r.Str(&s));
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(u8, 7u);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(f, 0.1f);
  EXPECT_EQ(s, "hello shard");

  // Truncated payloads fail the typed getters, not crash.
  const std::string truncated = bytes.substr(0, 3);
  BinReader short_r(truncated);
  uint32_t dummy = 0;
  EXPECT_TRUE(short_r.U8(&u8));
  EXPECT_FALSE(short_r.U32(&dummy));
  EXPECT_FALSE(short_r.Done());
}

TEST(IpcCodecTest, TopKResponseRoundTripIsBitExact) {
  TopKResult result;
  result.query = "some query";
  result.structural_used = true;
  result.degraded = false;
  result.ann_used = true;
  result.ann_probes = 3;
  result.ann_shortlist = 17;
  result.generation = 7;
  // Scores chosen to have non-trivial float bit patterns.
  result.candidates.push_back({3, "target a", 0.1f, 0.3f, 1.0f / 3.0f, 0.0f});
  result.candidates.push_back({9, "target b", -0.0f, 0.7f, 0.2f, 0.99999f});

  const std::string frame = EncodeTopKResponse(StatusOr<TopKResult>(result));
  auto decoded = DecodeTopKResponse(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->query, result.query);
  EXPECT_EQ(decoded->structural_used, result.structural_used);
  EXPECT_EQ(decoded->generation, result.generation);
  ASSERT_EQ(decoded->candidates.size(), result.candidates.size());
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    // Bit-pattern equality, not value equality: -0.0f must survive as
    // -0.0f for the merge to stay deterministic.
    EXPECT_EQ(std::memcmp(&decoded->candidates[i].combined,
                          &result.candidates[i].combined, sizeof(float)),
              0);
    EXPECT_EQ(decoded->candidates[i].target, result.candidates[i].target);
    EXPECT_EQ(decoded->candidates[i].target_name,
              result.candidates[i].target_name);
  }
}

TEST(IpcCodecTest, ErrorResponseCarriesStatusAcrossTheWire) {
  const std::string frame = EncodeTopKResponse(
      StatusOr<TopKResult>(Status::FailedPrecondition("no targets")));
  auto decoded = DecodeTopKResponse(frame);
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded.status().message(), "no targets");
}

TEST(IpcCodecTest, TrailingGarbageIsDataLoss) {
  std::string frame = EncodeTopKResponse(StatusOr<TopKResult>(TopKResult{}));
  frame.push_back('\0');
  EXPECT_EQ(DecodeTopKResponse(frame).status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// MessagePipe framing
// ---------------------------------------------------------------------------

TEST(MessagePipeTest, SendRecvAcrossPair) {
  MessagePipe a, b;
  ASSERT_TRUE(MessagePipe::CreatePair(&a, &b).ok());
  ASSERT_TRUE(a.Send(IpcType::kPing, "payload bytes").ok());
  auto msg = b.Recv(/*timeout_ms=*/1000);
  ASSERT_TRUE(msg.ok()) << msg.status().ToString();
  EXPECT_EQ(msg->type, IpcType::kPing);
  EXPECT_EQ(msg->payload, "payload bytes");
}

TEST(MessagePipeTest, PeerCloseIsUnavailable) {
  MessagePipe a, b;
  ASSERT_TRUE(MessagePipe::CreatePair(&a, &b).ok());
  b.Close();
  EXPECT_EQ(a.Recv(100).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(a.Send(IpcType::kPing, "x").code(), StatusCode::kUnavailable);
}

TEST(MessagePipeTest, RecvTimeoutIsDeadlineExceeded) {
  MessagePipe a, b;
  ASSERT_TRUE(MessagePipe::CreatePair(&a, &b).ok());
  EXPECT_EQ(a.Recv(/*timeout_ms=*/50).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(MessagePipeTest, CorruptFrameIsDataLoss) {
  MessagePipe a, b;
  ASSERT_TRUE(MessagePipe::CreatePair(&a, &b).ok());
  // The corrupt-reply failpoint flips the frame CRC at send time; the
  // receiver must refuse the frame rather than deliver corrupt bytes.
  ASSERT_TRUE(failpoint::Configure("shard.ipc.corrupt_reply=error").ok());
  ASSERT_TRUE(a.Send(IpcType::kPong, "soon to be corrupt").ok());
  failpoint::Clear();
  EXPECT_EQ(b.Recv(1000).status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Router scatter/gather
// ---------------------------------------------------------------------------

class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("shard_router");
    index_ = ShardIndex(24);
    index_path_ = dir_->File("shard.idx");
    ASSERT_TRUE(SaveAlignmentIndex(index_, index_path_).ok());
  }

  std::vector<std::pair<size_t, size_t>> AliveRanges(
      const ShardRouter& router) {
    std::vector<std::pair<size_t, size_t>> ranges;
    for (size_t i = 0; i < router.num_shards(); ++i) {
      if (router.shard_alive(i)) ranges.push_back(router.shard_range(i));
    }
    return ranges;
  }

  std::unique_ptr<ScratchDir> dir_;
  AlignmentIndex index_;
  std::string index_path_;
};

TEST_F(ShardRouterTest, StartRejectsMissingOrCorruptIndex) {
  EXPECT_FALSE(ShardRouter::Start("/nonexistent/index").ok());
}

TEST_F(ShardRouterTest, ShardRangesPartitionTheTargets) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_EQ((*router)->num_shards(), 3u);
  size_t covered = 0;
  for (size_t i = 0; i < 3; ++i) {
    const auto [begin, end] = (*router)->shard_range(i);
    EXPECT_EQ(begin, covered);
    EXPECT_GT(end, begin);
    covered = end;
  }
  EXPECT_EQ(covered, index_.num_targets());
}

TEST_F(ShardRouterTest, ClampsShardCountToTargets) {
  ShardRouterOptions options;
  options.num_shards = 100;  // far more than 24 targets
  auto router = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  EXPECT_LE((*router)->num_shards(), index_.num_targets());
}

TEST_F(ShardRouterTest, HealthyTopKIsBitIdenticalToSingleProcess) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  const auto store = ShardEmbedder(index_);
  const std::vector<std::string> queries = {
      "source entity 0", "target entity 7", "entirely unseen name",
      "source entity 23", "tergat entity 11"};
  for (const std::string& q : queries) {
    auto got = (*router)->TopK(q, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->degraded) << q;
    const TopKResult want = RangeReference(
        index_, store, q, 5, {{0, index_.num_targets()}});
    ExpectCandidatesIdentical(got->candidates, want.candidates);
  }
}

TEST_F(ShardRouterTest, AnnOnSmallRangesFallsBackAndStaysBitIdentical) {
  // 24 targets over 3 shards: every range is far below the shortlist, so
  // each worker's scan falls back to the exhaustive loop — ANN on must be
  // byte-for-byte the same as ANN off (and as single-process).
  AlignmentIndex ann_index = ShardIndex(24);
  ASSERT_TRUE(BuildAnnSections(&ann_index).ok());
  const std::string path = dir_->File("ann_small.idx");
  ASSERT_TRUE(SaveAlignmentIndex(ann_index, path).ok());

  ShardRouterOptions options;
  options.num_shards = 3;
  options.ann.enabled = true;
  auto router = ShardRouter::Start(path, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  const auto store = ShardEmbedder(ann_index);
  for (const std::string q :
       {"source entity 0", "entirely unseen name", "target entity 13"}) {
    auto got = (*router)->TopK(q, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->degraded);
    EXPECT_FALSE(got->ann_used) << q;  // every shard fell back
    const TopKResult want = RangeReference(
        ann_index, store, q, 5, {{0, ann_index.num_targets()}});
    ExpectCandidatesIdentical(got->candidates, want.candidates);
  }
}

TEST_F(ShardRouterTest, AnnEngagedShardsMatchTheRangeReference) {
  // Large enough that each of the 2 shard ranges exceeds the shortlist:
  // the workers genuinely take the ANN path, and the router's merge must
  // equal the reference merge of per-range ANN scans with the identical
  // config (the healthy-path bit-identity contract with ANN on).
  AlignmentIndex ann_index = ShardIndex(400);
  ASSERT_TRUE(BuildAnnSections(&ann_index).ok());
  const std::string path = dir_->File("ann_large.idx");
  ASSERT_TRUE(SaveAlignmentIndex(ann_index, path).ok());

  ShardRouterOptions options;
  options.num_shards = 2;
  options.ann.enabled = true;
  options.ann.nprobe = 4;
  options.ann.shortlist = 64;
  auto router = ShardRouter::Start(path, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  const auto store = ShardEmbedder(ann_index);
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t i = 0; i < (*router)->num_shards(); ++i) {
    ranges.push_back((*router)->shard_range(i));
  }
  bool any_ann = false;
  for (const std::string q :
       {"source entity 7", "source entity 399", "entirely unseen name"}) {
    auto got = (*router)->TopK(q, 10);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->degraded);
    any_ann = any_ann || got->ann_used;
    if (got->ann_used) {
      EXPECT_GT(got->ann_probes, 0u);
    }
    const TopKResult want =
        RangeReference(ann_index, store, q, 10, ranges, options.ann);
    ExpectCandidatesIdentical(got->candidates, want.candidates);
  }
  EXPECT_TRUE(any_ann);  // known-source queries must engage the ANN path
}

TEST_F(ShardRouterTest, DeadShardMidQueryDegradesToSurvivorMerge) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  ASSERT_TRUE(router.shard_alive(1));
  ASSERT_EQ(::kill(router.shard_pid(1), SIGKILL), 0);

  // The kill is asynchronous; the router discovers it on the next
  // scatter. The answer must come back degraded and exactly equal the
  // reference merge over the surviving ranges.
  auto got = router.TopK("source entity 3", 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->degraded);
  EXPECT_FALSE(router.shard_alive(1));

  const auto store = ShardEmbedder(index_);
  const TopKResult want =
      RangeReference(index_, store, "source entity 3", 5,
                     AliveRanges(router));
  ExpectCandidatesIdentical(got->candidates, want.candidates);
  EXPECT_GE(router.degraded_answers(), 1u);
}

TEST_F(ShardRouterTest, RecoversToFullFidelityAfterRespawn) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  ASSERT_EQ(::kill(router.shard_pid(2), SIGKILL), 0);
  auto degraded = router.TopK("source entity 9", 4);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);

  // First CheckHealth observes the degradation, then respawns; one kill of
  // a healthy shard never trips the breaker.
  auto report = router.CheckHealth();
  EXPECT_TRUE(report.degraded);
  report = router.CheckHealth();
  EXPECT_FALSE(report.degraded) << report.alive << "/" << report.total;

  const auto store = ShardEmbedder(index_);
  auto got = router.TopK("source entity 9", 4);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->degraded);
  const TopKResult want = RangeReference(
      index_, store, "source entity 9", 4, {{0, index_.num_targets()}});
  ExpectCandidatesIdentical(got->candidates, want.candidates);
}

TEST_F(ShardRouterTest, PairLookupFailsOverAndStaysExact) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  // Kill one shard; every name must still answer exactly from a survivor
  // (all workers hold the full pair maps).
  ASSERT_EQ(::kill(router.shard_pid(0), SIGKILL), 0);
  for (size_t i = 0; i < index_.num_sources(); ++i) {
    const std::string name = "source entity " + std::to_string(i);
    auto got = router.LookupPair(name);
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    auto want = LookupPairInIndex(index_, name);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->source, want->source);
    EXPECT_EQ(got->target, want->target);
    EXPECT_EQ(got->score, want->score);
    EXPECT_EQ(got->target_name, want->target_name);
  }
  // kNotFound stays authoritative from any shard.
  EXPECT_EQ(router.LookupPair("no such entity").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ShardRouterTest, ReloadSwapsFleetAndRefusesCorruptArtifact) {
  ShardRouterOptions options;
  options.num_shards = 2;
  auto router_or = ShardRouter::Start(index_path_, options);
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  // A corrupt replacement refuses the swap; the old fleet keeps serving.
  const std::string bad = dir_->File("bad.idx");
  ceaff::testing::WriteText(bad, "not an index");
  EXPECT_FALSE(router.Reload(bad).ok());
  EXPECT_TRUE(router.TopK("source entity 1", 3).ok());

  // A valid replacement (different size) swaps every worker.
  const AlignmentIndex bigger = ShardIndex(30);
  const std::string next = dir_->File("next.idx");
  ASSERT_TRUE(SaveAlignmentIndex(bigger, next).ok());
  ASSERT_TRUE(router.Reload(next).ok());
  size_t covered = 0;
  for (size_t i = 0; i < router.num_shards(); ++i) {
    covered = router.shard_range(i).second;
  }
  EXPECT_EQ(covered, bigger.num_targets());

  const auto store = ShardEmbedder(bigger);
  auto got = router.TopK("source entity 27", 5);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->degraded);
  const TopKResult want = RangeReference(
      bigger, store, "source entity 27", 5, {{0, bigger.num_targets()}});
  ExpectCandidatesIdentical(got->candidates, want.candidates);
}

}  // namespace
}  // namespace ceaff::serve
