// Kill-the-process recovery drills for the checkpoint durability layer
// (DESIGN.md §10). The fork-based harness discovers every failpoint site a
// checkpointed save crosses, crashes a child process at each one in turn,
// and asserts in the parent that recovery always loads consistent state:
// either the previous committed generation or the new one — never a torn
// file, never a regression past the last fsynced generation, never an
// unrecoverable store.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "ceaff/core/checkpoint.h"
#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/la/matrix.h"
#include "testing/crash_harness.h"
#include "testing/fault_injection.h"

namespace ceaff::core {
namespace {

namespace ft = ceaff::testing;

la::Matrix FilledMatrix(size_t rows, size_t cols, float value) {
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = value + 0.25f * i;
  return m;
}

bool SameMatrix(const la::Matrix& a, const la::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// A crash at any point while saving generation 2 must leave the store
// readable with EITHER generation 1 (crash before the manifest commit) or
// generation 2 (crash after the commit point) — and the mapping from site
// to surviving generation is exact, because the site order is the syscall
// order.
TEST(CrashRecoveryTest, CheckpointSaveNeverLosesTheCommittedGeneration) {
  ft::ScratchDir scratch("crash_ckpt");
  const std::string dir = scratch.File("store");
  const la::Matrix m1 = FilledMatrix(3, 4, 1.0f);
  const la::Matrix m2 = FilledMatrix(3, 4, 100.0f);

  auto prepare = [&] {
    std::filesystem::remove_all(dir);
    CheckpointStore store(dir);
    CEAFF_CHECK(store.Init().ok());
    CEAFF_CHECK(store.SaveMatrix("m", m1).ok());
  };
  auto operation = [&]() -> Status {
    CheckpointStore store(dir);
    CEAFF_RETURN_IF_ERROR(store.Init());
    return store.SaveMatrix("m", m2);
  };
  auto verify = [&](const std::string& site, bool crashed) {
    CheckpointStore store(dir);
    ASSERT_TRUE(store.Init().ok()) << "after crash at " << site;
    auto loaded = store.LoadMatrix("m");
    ASSERT_TRUE(loaded.ok())
        << "after crash at " << site << ": " << loaded.status().ToString();
    // The manifest rename is the commit point: every site before it must
    // recover generation 1, every site after it generation 2.
    const bool past_commit_point = site == "checkpoint.manifest.before_dir_fsync";
    const la::Matrix& expected = (!crashed || past_commit_point) ? m2 : m1;
    EXPECT_TRUE(SameMatrix(loaded.value(), expected))
        << "crash at " << site << " recovered the wrong generation";
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "checkpoint";
  options.iterations = ft::CrashIterationsFromEnv(5);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

// End-to-end: crash a checkpointed pipeline run at every durability step
// it crosses, then resume — the resumed run must complete and produce the
// same result an uninterrupted run does, whatever state the crash left.
TEST(CrashRecoveryTest, CrashedCheckpointedPipelineResumesConsistently) {
  data::SyntheticKgOptions kg;
  kg.name = "crash-drill";
  kg.num_entities = 60;
  kg.avg_degree = 5.0;
  kg.embedding_dim = 16;
  kg.seed = 13;
  const data::SyntheticBenchmark bench =
      data::GenerateBenchmark(kg).value();

  CeaffOptions fast;
  fast.gcn.dim = 16;
  fast.gcn.epochs = 10;

  const CeaffResult baseline = [&] {
    CeaffPipeline pipe(&bench.pair, &bench.store, fast);
    return pipe.Run().value();
  }();

  ft::ScratchDir scratch("crash_pipe");
  const std::string ckpt_dir = scratch.File("ckpt");

  auto prepare = [&] { std::filesystem::remove_all(ckpt_dir); };
  auto operation = [&]() -> Status {
    CeaffOptions options = fast;
    options.checkpoint_dir = ckpt_dir;
    options.resume = true;
    CeaffPipeline pipe(&bench.pair, &bench.store, options);
    return pipe.Run().status();
  };
  auto verify = [&](const std::string& site, bool) {
    CeaffOptions options = fast;
    options.checkpoint_dir = ckpt_dir;
    options.resume = true;
    CeaffPipeline pipe(&bench.pair, &bench.store, options);
    auto resumed = pipe.Run();
    ASSERT_TRUE(resumed.ok())
        << "resume after crash at " << site << ": "
        << resumed.status().ToString();
    EXPECT_EQ(resumed->match.target_of_source, baseline.match.target_of_source)
        << "resume after crash at " << site << " changed the matching";
    EXPECT_EQ(resumed->accuracy, baseline.accuracy);
    ASSERT_EQ(resumed->fused.rows(), baseline.fused.rows());
    ASSERT_EQ(resumed->fused.cols(), baseline.fused.cols());
    EXPECT_EQ(std::memcmp(resumed->fused.data(), baseline.fused.data(),
                          baseline.fused.size() * sizeof(float)),
              0)
        << "resume after crash at " << site
        << " perturbed the fused matrix";
  };

  ft::CrashDrillOptions options;
  options.site_prefix = "checkpoint";
  // Each drilled run re-runs pipeline stages, so the default round count
  // is low; run_checks.sh raises it for the soak drill.
  options.iterations = ft::CrashIterationsFromEnv(1);
  ft::RunCrashDrill(prepare, operation, verify, options);
}

}  // namespace
}  // namespace ceaff::core
