#include "ceaff/core/pipeline.h"

#include <gtest/gtest.h>

#include <cstring>

#include "ceaff/data/synthetic.h"

namespace ceaff::core {
namespace {

/// One small shared benchmark per test binary run (generation is cheap but
/// GCN training is the slow part — keep the graph tiny).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticKgOptions o;
    o.name = "pipeline-test";
    o.num_entities = 150;
    o.extra_entities = 10;
    o.avg_degree = 6.0;
    o.lang2.code = "fr";
    o.lang2.edit_fraction = 0.3;
    o.lang2.semantic_noise = 0.5;
    o.lang2.oov_rate = 0.08;
    o.embedding_dim = 32;
    o.seed = 99;
    bench_ = new data::SyntheticBenchmark(
        data::GenerateBenchmark(o).value());
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }

  static CeaffOptions FastOptions() {
    CeaffOptions o;
    o.gcn.dim = 32;
    o.gcn.epochs = 40;
    return o;
  }

  static data::SyntheticBenchmark* bench_;
};

data::SyntheticBenchmark* PipelineTest::bench_ = nullptr;

TEST_F(PipelineTest, RunProducesTestShapedMatrices) {
  CeaffPipeline pipe(&bench_->pair, &bench_->store, FastOptions());
  CeaffResult r = pipe.Run().value();
  size_t n_test = bench_->pair.test_alignment.size();
  EXPECT_EQ(r.fused.rows(), n_test);
  EXPECT_EQ(r.fused.cols(), n_test);
  EXPECT_EQ(r.structural.rows(), n_test);
  EXPECT_EQ(r.semantic.rows(), n_test);
  EXPECT_EQ(r.string_sim.rows(), n_test);
  EXPECT_EQ(r.match.target_of_source.size(), n_test);
  EXPECT_GT(r.accuracy, 0.5);  // features are informative on this config
  EXPECT_EQ(r.textual_weights.size(), 2u);
  EXPECT_EQ(r.final_weights.size(), 2u);
}

// The kernel determinism contract, end to end: the seed synthetic pipeline
// must produce bit-identical alignment results at any thread count, and the
// same matching/Hits@1 under a non-default block size (blocking may move
// GEMM-family floats within the documented tolerance, never the decisions).
TEST_F(PipelineTest, ThreadCountDoesNotChangeAlignmentResults) {
  CeaffOptions seq = FastOptions();
  CeaffOptions par = FastOptions();
  par.num_threads = 4;
  CeaffResult rs =
      CeaffPipeline(&bench_->pair, &bench_->store, seq).Run().value();
  CeaffResult rp =
      CeaffPipeline(&bench_->pair, &bench_->store, par).Run().value();
  EXPECT_EQ(rs.accuracy, rp.accuracy);
  EXPECT_EQ(rs.match.target_of_source, rp.match.target_of_source);
  EXPECT_EQ(rs.final_weights, rp.final_weights);
  ASSERT_EQ(rs.fused.rows(), rp.fused.rows());
  ASSERT_EQ(rs.fused.cols(), rp.fused.cols());
  EXPECT_EQ(std::memcmp(rs.fused.data(), rp.fused.data(),
                        rs.fused.size() * sizeof(float)),
            0);

  CeaffOptions blocked = FastOptions();
  blocked.num_threads = 4;
  blocked.block_size = 48;  // non-default, non-multiple-of-shape
  CeaffResult rb =
      CeaffPipeline(&bench_->pair, &bench_->store, blocked).Run().value();
  EXPECT_EQ(rs.accuracy, rb.accuracy);
  EXPECT_EQ(rs.match.target_of_source, rb.match.target_of_source);
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  CeaffPipeline a(&bench_->pair, &bench_->store, FastOptions());
  CeaffPipeline b(&bench_->pair, &bench_->store, FastOptions());
  CeaffResult ra = a.Run().value();
  CeaffResult rb = b.Run().value();
  EXPECT_EQ(ra.accuracy, rb.accuracy);
  EXPECT_EQ(ra.match.target_of_source, rb.match.target_of_source);
  EXPECT_EQ(ra.final_weights, rb.final_weights);
}

TEST_F(PipelineTest, FeatureAblationsRun) {
  for (int mask = 1; mask < 8; ++mask) {
    CeaffOptions o = FastOptions();
    o.use_structural = mask & 1;
    o.use_semantic = mask & 2;
    o.use_string = mask & 4;
    CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
    auto r = pipe.Run();
    ASSERT_TRUE(r.ok()) << "mask " << mask << ": " << r.status();
    EXPECT_GE(r.value().accuracy, 0.0);
    EXPECT_LE(r.value().accuracy, 1.0);
  }
}

TEST_F(PipelineTest, AllFeaturesDisabledIsInvalid) {
  CeaffOptions o = FastOptions();
  o.use_structural = o.use_semantic = o.use_string = false;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  EXPECT_TRUE(pipe.Run().status().IsInvalidArgument());
}

TEST_F(PipelineTest, SingleFeaturePassthroughWeightsAreOne) {
  CeaffOptions o = FastOptions();
  o.use_structural = false;
  o.use_semantic = false;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  ASSERT_EQ(r.final_weights.size(), 1u);
  EXPECT_EQ(r.final_weights[0], 1.0);
  EXPECT_TRUE(r.textual_weights.empty());
}

TEST_F(PipelineTest, DecisionModesAllProduceValidMatchings) {
  for (DecisionMode mode :
       {DecisionMode::kCollective, DecisionMode::kIndependent,
        DecisionMode::kHungarian, DecisionMode::kGreedyOneToOne}) {
    CeaffOptions o = FastOptions();
    o.decision_mode = mode;
    CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
    auto r = pipe.Run();
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.value().accuracy, 0.3);
  }
}

TEST_F(PipelineTest, FusionModesAllRun) {
  for (FusionMode mode :
       {FusionMode::kAdaptive, FusionMode::kFixed, FusionMode::kLearned}) {
    CeaffOptions o = FastOptions();
    o.fusion_mode = mode;
    CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
    auto r = pipe.Run();
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.value().accuracy, 0.3);
    double sum = 0.0;
    for (double w : r.value().final_weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST_F(PipelineTest, RankingMetricsConsistentWithFusedMatrix) {
  CeaffPipeline pipe(&bench_->pair, &bench_->store, FastOptions());
  CeaffResult r = pipe.Run().value();
  EXPECT_GE(r.ranking.hits_at_10, r.ranking.hits_at_1);
  EXPECT_GE(r.ranking.mrr, r.ranking.hits_at_1 * 0.99);
  EXPECT_LE(r.ranking.mrr, 1.0);
}

TEST_F(PipelineTest, EmptyTestAlignmentIsInvalid) {
  kg::KgPair pair = bench_->pair;
  pair.test_alignment.clear();
  CeaffPipeline pipe(&pair, &bench_->store, FastOptions());
  EXPECT_TRUE(pipe.Run().status().IsInvalidArgument());
}


TEST_F(PipelineTest, AttributeFeatureAsFourthSignal) {
  CeaffOptions o = FastOptions();
  o.use_attribute = true;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  // Final fusion stage covers {Ms, textual, Ma}.
  ASSERT_EQ(r.final_weights.size(), 3u);
  double sum = 0.0;
  for (double w : r.final_weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(r.accuracy, 0.5);
}

TEST_F(PipelineTest, AttributeOnlyRun) {
  CeaffOptions o = FastOptions();
  o.use_structural = o.use_semantic = o.use_string = false;
  o.use_attribute = true;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  // Attributes alone are a weak but real signal.
  EXPECT_GT(r.accuracy,
            3.0 / static_cast<double>(bench_->pair.test_alignment.size()));
}

TEST_F(PipelineTest, MissingRequiredFeatureIsFailedPrecondition) {
  CeaffOptions generate_opts = FastOptions();
  generate_opts.use_structural = false;
  CeaffPipeline generator(&bench_->pair, &bench_->store, generate_opts);
  CeaffFeatures features = generator.GenerateFeatures().value();
  CeaffOptions run_opts = FastOptions();  // wants structural
  CeaffPipeline runner(&bench_->pair, &bench_->store, run_opts);
  EXPECT_EQ(runner.RunOnFeatures(features).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, CslsRescaleKeepsPipelineSound) {
  CeaffOptions o = FastOptions();
  o.csls_k = 5;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  EXPECT_GT(r.accuracy, 0.5);
  // CSLS output is a rescaling, not a similarity: values may be negative.
  EXPECT_EQ(r.fused.rows(), bench_->pair.test_alignment.size());
}

TEST_F(PipelineTest, RelationFeatureAsExtraSignal) {
  CeaffOptions o = FastOptions();
  o.use_relation = true;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  ASSERT_EQ(r.final_weights.size(), 3u);  // {Ms, textual, Mr}
  EXPECT_GT(r.accuracy, 0.5);
}

TEST_F(PipelineTest, AllFiveFeaturesFuse) {
  CeaffOptions o = FastOptions();
  o.use_attribute = true;
  o.use_relation = true;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  ASSERT_EQ(r.final_weights.size(), 4u);  // {Ms, textual, Ma, Mr}
  double sum = 0.0;
  for (double w : r.final_weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(r.accuracy, 0.5);
}

TEST_F(PipelineTest, NgramStringMetricIsDropInReplacement) {
  CeaffOptions o = FastOptions();
  o.string_metric = CeaffOptions::StringMetric::kNgramDice;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  EXPECT_GT(r.accuracy, 0.5);
  // String matrix values are Dice scores in [0, 1].
  for (size_t i = 0; i < r.string_sim.size(); ++i) {
    EXPECT_GE(r.string_sim.data()[i], 0.0f);
    EXPECT_LE(r.string_sim.data()[i], 1.0f);
  }
}

TEST_F(PipelineTest, SinkhornDecisionModeRuns) {
  CeaffOptions o = FastOptions();
  o.decision_mode = DecisionMode::kSinkhorn;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, o);
  CeaffResult r = pipe.Run().value();
  EXPECT_GT(r.accuracy, 0.5);
}

TEST_F(PipelineTest, OutOfRangeAlignmentIdsRejected) {
  kg::KgPair broken = bench_->pair;
  broken.test_alignment.push_back({999999, 0});
  CeaffPipeline pipe(&broken, &bench_->store, FastOptions());
  EXPECT_TRUE(pipe.Run().status().IsInvalidArgument());
}

TEST(PipelineHelperTest, GatherRowsPreservesOrder) {
  la::Matrix m = la::Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  la::Matrix g = GatherRows(m, {2, 0});
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
}

TEST(PipelineHelperTest, TestIdsFollowAlignmentOrder) {
  kg::KgPair pair;
  pair.test_alignment = {{3, 1}, {0, 2}};
  std::vector<uint32_t> src, tgt;
  TestIds(pair, &src, &tgt);
  EXPECT_EQ(src, (std::vector<uint32_t>{3, 0}));
  EXPECT_EQ(tgt, (std::vector<uint32_t>{1, 2}));
}

}  // namespace
}  // namespace ceaff::core
