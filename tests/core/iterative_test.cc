#include "ceaff/core/iterative.h"

#include <gtest/gtest.h>

#include "ceaff/data/synthetic.h"

namespace ceaff::core {
namespace {

data::SyntheticBenchmark MakeBench() {
  data::SyntheticKgOptions o;
  o.name = "iterative-test";
  o.num_entities = 120;
  o.extra_entities = 0;
  o.avg_degree = 6.0;
  o.lang2.script = data::Script::kCjk;  // hard pair: structure matters
  o.lang2.semantic_noise = 1.2;
  o.lang2.oov_rate = 0.25;
  o.embedding_dim = 24;
  // Few seeds so bootstrapping has headroom.
  o.seed_fraction = 0.1;
  o.seed = 314;
  return data::GenerateBenchmark(o).value();
}

IterativeCeaffOptions FastOptions() {
  IterativeCeaffOptions o;
  o.base.gcn.dim = 32;
  o.base.gcn.epochs = 40;
  o.rounds = 2;
  return o;
}

TEST(IterativeCeaffTest, RunsAndRecordsRounds) {
  data::SyntheticBenchmark bench = MakeBench();
  auto r = RunIterativeCeaff(bench.pair, bench.store, FastOptions());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->accuracy_per_round.size(), 1u);
  EXPECT_LE(r->accuracy_per_round.size(), 3u);  // initial + <= 2 rounds
  EXPECT_EQ(r->final_result.accuracy, r->accuracy_per_round.back());
  for (size_t p : r->promoted_per_round) EXPECT_GT(p, 0u);
}

TEST(IterativeCeaffTest, DoesNotDegradeBelowInitialRun) {
  data::SyntheticBenchmark bench = MakeBench();
  auto r = RunIterativeCeaff(bench.pair, bench.store, FastOptions());
  ASSERT_TRUE(r.ok());
  // Self-training may fluctuate but must not collapse.
  EXPECT_GE(r->final_result.accuracy,
            r->accuracy_per_round.front() * 0.8);
}

TEST(IterativeCeaffTest, ZeroRoundsEqualsPlainCeaff) {
  data::SyntheticBenchmark bench = MakeBench();
  IterativeCeaffOptions opt = FastOptions();
  opt.rounds = 0;
  auto iter = RunIterativeCeaff(bench.pair, bench.store, opt);
  ASSERT_TRUE(iter.ok());
  CeaffPipeline plain(&bench.pair, &bench.store, opt.base);
  double plain_acc = plain.Run().value().accuracy;
  EXPECT_DOUBLE_EQ(iter->final_result.accuracy, plain_acc);
  EXPECT_EQ(iter->accuracy_per_round.size(), 1u);
}

TEST(IterativeCeaffTest, DeterministicAcrossRuns) {
  data::SyntheticBenchmark bench = MakeBench();
  auto a = RunIterativeCeaff(bench.pair, bench.store, FastOptions());
  auto b = RunIterativeCeaff(bench.pair, bench.store, FastOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->accuracy_per_round, b->accuracy_per_round);
  EXPECT_EQ(a->promoted_per_round, b->promoted_per_round);
}

}  // namespace
}  // namespace ceaff::core
