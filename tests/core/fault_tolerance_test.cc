// End-to-end fault-tolerance acceptance tests: cooperative cancellation,
// deadlines, checksummed checkpoints and resume. The scenarios mirror the
// failure model in DESIGN.md §7: a run cancelled after the structural
// stage must resume from its checkpoint and produce byte-identical
// results; a corrupted checkpoint must be detected by the CRC and
// recomputed, never trusted.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "ceaff/core/checkpoint.h"
#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/matching/matching.h"
#include "ceaff/matching/sinkhorn.h"
#include "testing/fault_injection.h"

namespace ceaff::core {
namespace {

namespace ft = ceaff::testing;

using StageEvents = std::vector<std::pair<std::string, bool>>;

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticKgOptions o;
    o.name = "fault-test";
    o.num_entities = 120;
    o.extra_entities = 8;
    o.avg_degree = 6.0;
    o.lang2.code = "fr";
    o.lang2.edit_fraction = 0.3;
    o.lang2.semantic_noise = 0.5;
    o.embedding_dim = 32;
    o.seed = 7;
    bench_ =
        new data::SyntheticBenchmark(data::GenerateBenchmark(o).value());
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }

  static CeaffOptions FastOptions() {
    CeaffOptions o;
    o.gcn.dim = 32;
    o.gcn.epochs = 40;
    return o;
  }

  static CeaffResult Baseline() {
    CeaffPipeline pipe(&bench_->pair, &bench_->store, FastOptions());
    return pipe.Run().value();
  }

  static void ExpectIdentical(const CeaffResult& a, const CeaffResult& b) {
    EXPECT_EQ(a.match.target_of_source, b.match.target_of_source);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.final_weights, b.final_weights);
    ASSERT_EQ(a.fused.rows(), b.fused.rows());
    ASSERT_EQ(a.fused.cols(), b.fused.cols());
    // Byte-identical, not approximately equal: resume must not perturb a
    // single bit of the fused similarity matrix.
    EXPECT_EQ(std::memcmp(a.fused.data(), b.fused.data(),
                          a.fused.size() * sizeof(float)),
              0);
    EXPECT_EQ(a.gcn_final_loss, b.gcn_final_loss);
  }

  static data::SyntheticBenchmark* bench_;
};

data::SyntheticBenchmark* FaultToleranceTest::bench_ = nullptr;

// ---------------------------------------------------------------------------
// CheckpointStore unit behaviour.

TEST(CheckpointStoreTest, ScalarRoundTripsExactly) {
  ft::ScratchDir dir("ckpt_scalar");
  CheckpointStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  const double value = 0.12345678901234567;  // needs full double precision
  ASSERT_TRUE(store.SaveScalar("loss", value).ok());
  auto loaded = store.LoadScalar("loss");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), value);  // bit-exact, not approximate
}

TEST(CheckpointStoreTest, HasAndRemove) {
  ft::ScratchDir dir("ckpt_has");
  CheckpointStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  EXPECT_FALSE(store.Has("x"));
  ASSERT_TRUE(store.SaveScalar("x", 1.0).ok());
  EXPECT_TRUE(store.Has("x"));
  ASSERT_TRUE(store.Remove("x").ok());
  EXPECT_FALSE(store.Has("x"));
}

TEST(CheckpointStoreTest, NonScalarArtifactIsRejectedAsScalar) {
  ft::ScratchDir dir("ckpt_shape");
  CheckpointStore store(dir.path());
  ASSERT_TRUE(store.Init().ok());
  la::Matrix m(3, 3);
  ASSERT_TRUE(store.SaveMatrix("m", m).ok());
  EXPECT_TRUE(store.LoadScalar("m").status().IsDataLoss());
}

// ---------------------------------------------------------------------------
// Kernel-level cancellation: the iterative loops poll the token.

TEST(KernelCancellationTest, SinkhornReturnsCancelled) {
  la::Matrix m(8, 8);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i % 7) / 7.0f;
  }
  CancellationToken token;
  token.RequestCancel();
  matching::SinkhornOptions options;
  options.cancel = &token;
  EXPECT_TRUE(
      matching::SinkhornMatchChecked(m, options).status().IsCancelled());
  EXPECT_TRUE(
      matching::SinkhornNormalizeChecked(m, options).status().IsCancelled());
}

TEST(KernelCancellationTest, DeferredAcceptanceReturnsCancelled) {
  la::Matrix m(6, 6);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>((i * 13) % 11) / 11.0f;
  }
  CancellationToken token;
  token.RequestCancel();
  EXPECT_TRUE(matching::DeferredAcceptanceChecked(m, &token)
                  .status()
                  .IsCancelled());
}

TEST(KernelCancellationTest, DeferredAcceptanceWithNullTokenMatchesLegacy) {
  la::Matrix m(6, 6);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>((i * 13) % 11) / 11.0f;
  }
  auto checked = matching::DeferredAcceptanceChecked(m, nullptr);
  ASSERT_TRUE(checked.ok());
  matching::MatchResult legacy = matching::DeferredAcceptance(m);
  EXPECT_EQ(checked->target_of_source, legacy.target_of_source);
}

// ---------------------------------------------------------------------------
// Pipeline-level run control.

TEST_F(FaultToleranceTest, PreCancelledRunReturnsCancelled) {
  CancellationToken token;
  token.RequestCancel();
  CeaffOptions options = FastOptions();
  options.cancel = &token;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, options);
  EXPECT_TRUE(pipe.Run().status().IsCancelled());
}

TEST_F(FaultToleranceTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  CancellationToken token;
  token.SetDeadlineAfterMillis(-1);
  CeaffOptions options = FastOptions();
  options.cancel = &token;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, options);
  EXPECT_TRUE(pipe.Run().status().IsDeadlineExceeded());
}

TEST_F(FaultToleranceTest, ShortDeadlineInterruptsTraining) {
  // The deadline expires mid-run (GCN training alone takes far longer than
  // 1ms on this benchmark); whichever poll sees it first — GCN epoch loop
  // or a stage boundary — the run must surface kDeadlineExceeded.
  CancellationToken token;
  CeaffOptions options = FastOptions();
  options.gcn.epochs = 5000;
  options.cancel = &token;
  CeaffPipeline pipe(&bench_->pair, &bench_->store, options);
  token.SetDeadlineAfterMillis(1);
  EXPECT_TRUE(pipe.Run().status().IsDeadlineExceeded());
}

// ---------------------------------------------------------------------------
// Acceptance scenario 1 (ISSUE): cancel after the structural stage, then
// resume — the structural stage is skipped (restored from checkpoint) and
// the final alignments are byte-identical to an uninterrupted run.

TEST_F(FaultToleranceTest, CancelAfterStructuralThenResumeIsByteIdentical) {
  ft::ScratchDir ckpt("resume");
  CancellationToken token;

  // First run: request cancellation as soon as the structural stage has
  // completed (and been persisted).
  CeaffOptions options = FastOptions();
  options.checkpoint_dir = ckpt.path();
  options.cancel = &token;
  options.stage_callback = [&token](const std::string& stage, bool) {
    if (stage == "structural") token.RequestCancel();
  };
  CeaffPipeline first(&bench_->pair, &bench_->store, options);
  Status st = first.Run().status();
  ASSERT_TRUE(st.IsCancelled()) << st.ToString();

  // The structural checkpoint survived the cancellation; later stages
  // never ran.
  CheckpointStore probe(ckpt.path());
  ASSERT_TRUE(probe.Init().ok());
  EXPECT_TRUE(probe.Has("structural"));
  EXPECT_FALSE(probe.Has("semantic"));

  // Second run: resume. The structural stage must come from the
  // checkpoint, the remaining stages must be computed.
  StageEvents events;
  CeaffOptions resume_options = FastOptions();
  resume_options.checkpoint_dir = ckpt.path();
  resume_options.resume = true;
  resume_options.stage_callback = [&events](const std::string& stage,
                                            bool from_checkpoint) {
    events.emplace_back(stage, from_checkpoint);
  };
  CeaffPipeline second(&bench_->pair, &bench_->store, resume_options);
  auto resumed = second.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(std::string("structural"), true));
  EXPECT_EQ(events[1], std::make_pair(std::string("semantic"), false));
  EXPECT_EQ(events[2], std::make_pair(std::string("string"), false));

  ExpectIdentical(resumed.value(), Baseline());
}

// Acceptance scenario 2 (ISSUE): a corrupted checkpoint is detected by the
// CRC and triggers a clean re-run of that stage, with identical results.

TEST_F(FaultToleranceTest, CorruptedCheckpointIsDetectedAndRecomputed) {
  ft::ScratchDir ckpt("corrupt");

  // Full checkpointed run to populate every stage artifact.
  CeaffOptions options = FastOptions();
  options.checkpoint_dir = ckpt.path();
  CeaffPipeline writer(&bench_->pair, &bench_->store, options);
  ASSERT_TRUE(writer.Run().ok());
  CheckpointStore probe(ckpt.path());
  ASSERT_TRUE(probe.Init().ok());
  auto structural_path = probe.CurrentPath("structural");
  ASSERT_TRUE(structural_path.ok()) << structural_path.status().ToString();

  // Silent corruption: flip one payload bit — the file size and header
  // stay plausible, only the CRC can notice. The run wrote a single
  // generation, so there is no older one to fall back to: the store
  // quarantines the damaged file and the stage is recomputed.
  ft::FlipBit(structural_path.value(), /*offset=*/32 + 17, /*bit=*/5);

  StageEvents events;
  CeaffOptions resume_options = FastOptions();
  resume_options.checkpoint_dir = ckpt.path();
  resume_options.resume = true;
  resume_options.stage_callback = [&events](const std::string& stage,
                                            bool from_checkpoint) {
    events.emplace_back(stage, from_checkpoint);
  };
  CeaffPipeline reader(&bench_->pair, &bench_->store, resume_options);
  auto resumed = reader.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  // The damaged structural stage was recomputed; the intact semantic and
  // string stages were restored.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(std::string("structural"), false));
  EXPECT_EQ(events[1], std::make_pair(std::string("semantic"), true));
  EXPECT_EQ(events[2], std::make_pair(std::string("string"), true));

  ExpectIdentical(resumed.value(), Baseline());
}

TEST_F(FaultToleranceTest, FullyCheckpointedResumeSkipsEveryStage) {
  ft::ScratchDir ckpt("full");
  CeaffOptions options = FastOptions();
  options.checkpoint_dir = ckpt.path();
  CeaffPipeline writer(&bench_->pair, &bench_->store, options);
  CeaffResult written = writer.Run().value();

  StageEvents events;
  options.resume = true;
  options.stage_callback = [&events](const std::string& stage,
                                     bool from_checkpoint) {
    events.emplace_back(stage, from_checkpoint);
  };
  CeaffPipeline reader(&bench_->pair, &bench_->store, options);
  auto resumed = reader.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(events.size(), 3u);
  for (const auto& [stage, from_checkpoint] : events) {
    EXPECT_TRUE(from_checkpoint) << stage << " was recomputed";
  }
  ExpectIdentical(resumed.value(), written);
}

TEST_F(FaultToleranceTest, CheckpointsWithoutResumeRecomputeEverything) {
  ft::ScratchDir ckpt("noresume");
  CeaffOptions options = FastOptions();
  options.checkpoint_dir = ckpt.path();
  CeaffPipeline writer(&bench_->pair, &bench_->store, options);
  ASSERT_TRUE(writer.Run().ok());

  // resume=false ignores existing checkpoints (fresh-run semantics).
  StageEvents events;
  options.stage_callback = [&events](const std::string& stage,
                                     bool from_checkpoint) {
    events.emplace_back(stage, from_checkpoint);
  };
  CeaffPipeline again(&bench_->pair, &bench_->store, options);
  ASSERT_TRUE(again.Run().ok());
  ASSERT_EQ(events.size(), 3u);
  for (const auto& [stage, from_checkpoint] : events) {
    EXPECT_FALSE(from_checkpoint) << stage << " came from checkpoint";
  }
}

TEST_F(FaultToleranceTest, TruncatedCheckpointIsAlsoACleanCacheMiss) {
  ft::ScratchDir ckpt("trunc");
  CeaffOptions options = FastOptions();
  options.checkpoint_dir = ckpt.path();
  CeaffPipeline writer(&bench_->pair, &bench_->store, options);
  ASSERT_TRUE(writer.Run().ok());

  CheckpointStore probe(ckpt.path());
  ASSERT_TRUE(probe.Init().ok());
  auto semantic_path = probe.CurrentPath("semantic");
  ASSERT_TRUE(semantic_path.ok()) << semantic_path.status().ToString();
  ft::TruncateTail(semantic_path.value(), 64);

  StageEvents events;
  options.resume = true;
  options.stage_callback = [&events](const std::string& stage,
                                     bool from_checkpoint) {
    events.emplace_back(stage, from_checkpoint);
  };
  CeaffPipeline reader(&bench_->pair, &bench_->store, options);
  auto resumed = reader.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].second);   // structural restored
  EXPECT_FALSE(events[1].second);  // semantic recomputed
  EXPECT_TRUE(events[2].second);   // string restored
  ExpectIdentical(resumed.value(), Baseline());
}

}  // namespace
}  // namespace ceaff::core
