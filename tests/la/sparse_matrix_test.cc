#include "ceaff/la/sparse_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/common/random.h"

namespace ceaff::la {
namespace {

SparseMatrix SmallSample() {
  // [[1, 0, 2],
  //  [0, 3, 0],
  //  [4, 0, 0]]
  return SparseMatrix::Build(
      3, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}, {2, 0, 4.0f}});
}

TEST(SparseMatrixTest, BuildAndAt) {
  SparseMatrix m = SmallSample();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 1), 0.0f);
  EXPECT_EQ(m.at(0, 2), 2.0f);
  EXPECT_EQ(m.at(2, 0), 4.0f);
}

TEST(SparseMatrixTest, DuplicateTripletsAreSummed) {
  SparseMatrix m = SparseMatrix::Build(
      2, 2, {{0, 1, 1.0f}, {0, 1, 2.5f}, {1, 0, -1.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.at(0, 1), 3.5f);
  EXPECT_EQ(m.at(1, 0), -1.0f);
}

TEST(SparseMatrixTest, UnsortedTripletsAreSorted) {
  SparseMatrix m = SparseMatrix::Build(
      2, 3, {{1, 2, 6.0f}, {0, 1, 2.0f}, {1, 0, 4.0f}, {0, 0, 1.0f}});
  Matrix d = m.ToDense();
  EXPECT_EQ(d.at(0, 0), 1.0f);
  EXPECT_EQ(d.at(0, 1), 2.0f);
  EXPECT_EQ(d.at(1, 0), 4.0f);
  EXPECT_EQ(d.at(1, 2), 6.0f);
}

TEST(SparseMatrixTest, IdentityActsAsIdentity) {
  SparseMatrix eye = SparseMatrix::Identity(4);
  Rng rng(3);
  Matrix x = Matrix::TruncatedNormal(4, 6, 1.0f, &rng);
  Matrix y = eye.Multiply(x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  SparseMatrix m = SmallSample();
  Rng rng(4);
  Matrix x = Matrix::TruncatedNormal(3, 5, 1.0f, &rng);
  Matrix got = m.Multiply(x);
  Matrix expected = MatMul(m.ToDense(), x);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-5);
  }
}

TEST(SparseMatrixTest, MultiplyTransposedMatchesDense) {
  SparseMatrix m = SparseMatrix::Build(
      2, 4, {{0, 0, 1.0f}, {0, 3, 2.0f}, {1, 1, -1.0f}});
  Rng rng(5);
  Matrix x = Matrix::TruncatedNormal(2, 3, 1.0f, &rng);
  Matrix got = m.MultiplyTransposed(x);
  Matrix expected = MatMul(m.ToDense().Transposed(), x);
  ASSERT_EQ(got.rows(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-5);
  }
}

TEST(SparseMatrixTest, RowNormalizedRowsSumToOne) {
  SparseMatrix m = SmallSample().RowNormalized();
  Matrix d = m.ToDense();
  for (size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) sum += d.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(SparseMatrixTest, RowNormalizedSkipsZeroRows) {
  SparseMatrix m =
      SparseMatrix::Build(3, 3, {{0, 1, 2.0f}}).RowNormalized();
  EXPECT_EQ(m.at(0, 1), 1.0f);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(SparseMatrixTest, SymNormalizedMatchesFormula) {
  // Symmetric adjacency of a path graph 0-1-2 with self-loops.
  SparseMatrix a = SparseMatrix::Build(
      3, 3,
      {{0, 0, 1.0f}, {1, 1, 1.0f}, {2, 2, 1.0f},
       {0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}});
  SparseMatrix norm = a.SymNormalized();
  // degree(0) = 2, degree(1) = 3, degree(2) = 2.
  EXPECT_NEAR(norm.at(0, 0), 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(norm.at(0, 1), 1.0 / std::sqrt(6.0), 1e-6);
  EXPECT_NEAR(norm.at(1, 1), 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(norm.at(1, 2), 1.0 / std::sqrt(6.0), 1e-6);
}

TEST(SparseMatrixTest, SymNormalizedPreservesSymmetry) {
  Rng rng(6);
  std::vector<Triplet> t;
  for (int i = 0; i < 30; ++i) {
    uint32_t r = static_cast<uint32_t>(rng.NextBounded(10));
    uint32_t c = static_cast<uint32_t>(rng.NextBounded(10));
    float v = rng.NextFloat() + 0.1f;
    t.push_back({r, c, v});
    t.push_back({c, r, v});
  }
  SparseMatrix norm = SparseMatrix::Build(10, 10, t).SymNormalized();
  Matrix d = norm.ToDense();
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_NEAR(d.at(r, c), d.at(c, r), 1e-6);
    }
  }
}

TEST(SparseMatrixTest, EmptyMatrixIsUsable) {
  SparseMatrix m = SparseMatrix::Build(3, 2, {});
  EXPECT_EQ(m.nnz(), 0u);
  Matrix x(2, 4);
  x.Fill(1.0f);
  Matrix y = m.Multiply(x);
  EXPECT_EQ(y.Sum(), 0.0);
}

}  // namespace
}  // namespace ceaff::la
