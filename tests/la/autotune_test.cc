// Tests for the kernel autotuner (la/autotune.h): mode parsing, shape
// bucketing, cache detection fallbacks, the Choose() fast paths, persisted
// tune_cache round-trips, corrupt-cache quarantine, a kill-at-every-site
// crash drill on Flush, and the load-bearing property of the whole
// subsystem — a tuned configuration is bit-identical to the default one,
// at any shape and any thread count, because blocking only ever
// partitions output elements.

#include "ceaff/la/autotune.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ceaff/common/durable_io.h"
#include "ceaff/common/random.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/la/kernels.h"
#include "ceaff/la/sparse_matrix.h"
#include "testing/crash_harness.h"
#include "testing/fault_injection.h"

namespace ceaff::la {
namespace {

namespace fs = std::filesystem;
using ::ceaff::testing::ScratchDir;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    }
  }
  return m;
}

SparseMatrix RandomSparse(size_t rows, size_t cols, size_t nnz,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.NextBounded(rows)),
                        static_cast<uint32_t>(rng.NextBounded(cols)),
                        static_cast<float>(rng.NextUniform(-1.0, 1.0))});
  }
  return SparseMatrix::Build(rows, cols, std::move(triplets));
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Small, fast tuner options for tests: tiny samples, two reps.
AutotuneOptions FastOptions(AutotuneMode mode, std::string cache_dir = "") {
  AutotuneOptions o;
  o.mode = mode;
  o.cache_dir = std::move(cache_dir);
  o.sample_reps = 2;
  o.max_sample_rows = 48;
  o.max_sample_cols = 48;
  return o;
}

// ---------------------------------------------------------------------------
// Plumbing: mode parsing, bucketing, cache detection
// ---------------------------------------------------------------------------

TEST(AutotuneModeTest, ParsesAllSpellingsAndRejectsGarbage) {
  ASSERT_TRUE(ParseAutotuneMode("on").ok());
  EXPECT_EQ(*ParseAutotuneMode("on"), AutotuneMode::kOn);
  EXPECT_EQ(*ParseAutotuneMode("off"), AutotuneMode::kOff);
  EXPECT_EQ(*ParseAutotuneMode("cache-only"), AutotuneMode::kCacheOnly);
  EXPECT_FALSE(ParseAutotuneMode("").ok());
  EXPECT_FALSE(ParseAutotuneMode("fast").ok());
  EXPECT_FALSE(ParseAutotuneMode("ON ").ok());
  EXPECT_STREQ(AutotuneModeName(AutotuneMode::kCacheOnly), "cache-only");
}

TEST(AutotuneBucketTest, NextPowerOfTwoWithFloorSixteen) {
  EXPECT_EQ(KernelAutotuner::Bucket(0), 16u);
  EXPECT_EQ(KernelAutotuner::Bucket(1), 16u);
  EXPECT_EQ(KernelAutotuner::Bucket(16), 16u);
  EXPECT_EQ(KernelAutotuner::Bucket(17), 32u);
  EXPECT_EQ(KernelAutotuner::Bucket(1000), 1024u);
  EXPECT_EQ(KernelAutotuner::Bucket(1024), 1024u);
  EXPECT_EQ(KernelAutotuner::Bucket(1025), 2048u);
}

TEST(AutotuneCacheDetectTest, AlwaysYieldsUsableSizes) {
  // Whether sysfs was readable or the fallbacks kicked in, the grid
  // derivation must get plausible nonzero sizes.
  const CpuCacheInfo info = DetectCpuCaches();
  EXPECT_GE(info.l1d_bytes, 8u * 1024);
  EXPECT_GE(info.l2_bytes, 128u * 1024);
  EXPECT_GE(info.l2_bytes, info.l1d_bytes);
}

// ---------------------------------------------------------------------------
// Choose() fast paths
// ---------------------------------------------------------------------------

TEST(AutotuneChooseTest, OffModeReturnsBaseUntouched) {
  KernelAutotuner tuner(FastOptions(AutotuneMode::kOff));
  ASSERT_TRUE(tuner.Init().ok());
  KernelOptions base;
  base.row_block = 7;
  base.col_block = 11;
  base.grain = 13;
  const KernelOptions got =
      tuner.Choose("matmul_bt", 128, 128, 64, nullptr, base);
  EXPECT_EQ(got.row_block, 7u);
  EXPECT_EQ(got.col_block, 11u);
  EXPECT_EQ(got.grain, 13u);
  EXPECT_EQ(tuner.entries(), 0u);
}

TEST(AutotuneChooseTest, UnknownKernelReturnsBase) {
  KernelAutotuner tuner(FastOptions(AutotuneMode::kOn));
  ASSERT_TRUE(tuner.Init().ok());
  KernelOptions base;
  base.row_block = 7;
  const KernelOptions got =
      tuner.Choose("sinkhorn", 128, 128, 64, nullptr, base);
  EXPECT_EQ(got.row_block, 7u);
  EXPECT_EQ(tuner.entries(), 0u);
  EXPECT_EQ(tuner.measured_count(), 0u);
}

TEST(AutotuneChooseTest, MeasuresOnceThenHitsForTheWholeBucket) {
  KernelAutotuner tuner(FastOptions(AutotuneMode::kOn));
  ASSERT_TRUE(tuner.Init().ok());
  KernelOptions base;
  (void)tuner.Choose("matmul_bt", 100, 90, 32, nullptr, base);
  EXPECT_EQ(tuner.measured_count(), 1u);
  EXPECT_EQ(tuner.entries(), 1u);
  // 100 and 120 both bucket to 128; 90 and 70 both bucket to 128/... —
  // nearby shapes share the measurement instead of re-timing.
  (void)tuner.Choose("matmul_bt", 120, 70, 30, nullptr, base);
  EXPECT_EQ(tuner.measured_count(), 1u);
  EXPECT_GE(tuner.cache_hits(), 1u);
}

TEST(AutotuneChooseTest, CacheOnlyMissKeepsStaticOptions) {
  KernelAutotuner tuner(FastOptions(AutotuneMode::kCacheOnly));
  ASSERT_TRUE(tuner.Init().ok());
  KernelOptions base;
  base.col_block = 37;
  const KernelOptions got = tuner.Choose("spmm", 500, 64, 10, nullptr, base);
  EXPECT_EQ(got.col_block, 37u);
  EXPECT_EQ(tuner.measured_count(), 0u);
}

// ---------------------------------------------------------------------------
// Persistence: round-trip determinism, corrupt-cache quarantine
// ---------------------------------------------------------------------------

TEST(AutotunePersistTest, CacheOnlyReloadMakesTheSameChoices) {
  ScratchDir dir("tune_roundtrip");
  const std::vector<TuneShape> shapes = {
      {"matmul_bt", 96, 96, 32}, {"matmul", 64, 64, 32}, {"spmm", 400, 32, 6}};

  KernelAutotuner writer(FastOptions(AutotuneMode::kOn, dir.path()));
  ASSERT_TRUE(writer.Init().ok());
  ASSERT_TRUE(writer.Warm(shapes, {1, 2}).ok());
  EXPECT_GT(writer.measured_count(), 0u);
  ASSERT_TRUE(writer.Flush().ok());

  KernelAutotuner reader(FastOptions(AutotuneMode::kCacheOnly, dir.path()));
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_EQ(reader.entries(), writer.entries());
  EXPECT_EQ(reader.measured_count(), 0u);

  // Same cache file => same choices, for every shape class and thread
  // count, without a single new measurement.
  ThreadPool pool(2);
  KernelOptions base;
  for (const TuneShape& s : shapes) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const KernelOptions a =
          writer.Choose(s.kernel.c_str(), s.m, s.n, s.d, p, base);
      const KernelOptions b =
          reader.Choose(s.kernel.c_str(), s.m, s.n, s.d, p, base);
      EXPECT_EQ(a.row_block, b.row_block) << s.kernel;
      EXPECT_EQ(a.col_block, b.col_block) << s.kernel;
      EXPECT_EQ(a.grain, b.grain) << s.kernel;
    }
  }
  EXPECT_EQ(reader.measured_count(), 0u);

  // The serialized table round-trips byte-for-byte (entry lines, host
  // line, CRC trailer): a third process would load exactly this state.
  EXPECT_EQ(writer.Serialize(), reader.Serialize());
}

TEST(AutotunePersistTest, CorruptCacheIsQuarantinedAndRebuilt) {
  ScratchDir dir("tune_corrupt");
  {
    KernelAutotuner writer(FastOptions(AutotuneMode::kOn, dir.path()));
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.Warm({{"matmul_bt", 64, 64, 32}}, {1}).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  // Flip a byte in the committed generation: the CRC trailer must reject
  // it on the next load.
  const std::string gen_path = dir.File("tune_cache.g1");
  ASSERT_TRUE(fs::exists(gen_path)) << gen_path;
  {
    std::fstream f(gen_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(32);
    f.put('#');
  }

  KernelAutotuner reborn(FastOptions(AutotuneMode::kOn, dir.path()));
  ASSERT_TRUE(reborn.Init().ok()) << "corrupt cache must not fail startup";
  EXPECT_EQ(reborn.entries(), 0u) << "garbled entries must not be loaded";
  EXPECT_TRUE(fs::exists(gen_path + ".corrupt"))
      << "failing generation should be quarantined, not deleted";

  // The tuner re-measures and the next flush publishes a fresh
  // generation over the quarantined one.
  KernelOptions base;
  (void)reborn.Choose("matmul_bt", 64, 64, 32, nullptr, base);
  EXPECT_EQ(reborn.measured_count(), 1u);
  ASSERT_TRUE(reborn.Flush().ok());

  KernelAutotuner reader(FastOptions(AutotuneMode::kCacheOnly, dir.path()));
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_EQ(reader.entries(), 1u);
}

TEST(AutotunePersistTest, TruncatedCacheIsRejected) {
  ScratchDir dir("tune_torn");
  {
    KernelAutotuner writer(FastOptions(AutotuneMode::kOn, dir.path()));
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.Warm({{"spmm", 200, 16, 4}}, {1}).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  const std::string gen_path = dir.File("tune_cache.g1");
  ASSERT_TRUE(fs::exists(gen_path));
  // Tear the tail off (CRC trailer gone entirely).
  fs::resize_file(gen_path, fs::file_size(gen_path) / 2);

  KernelAutotuner reborn(FastOptions(AutotuneMode::kCacheOnly, dir.path()));
  ASSERT_TRUE(reborn.Init().ok());
  EXPECT_EQ(reborn.entries(), 0u);
}

// Kill -9 at every durability site Flush crosses (the store runs with
// failpoint scope "tune"): after any torn write, a fresh tuner must start
// cleanly — either loading the previous consistent generation or empty,
// never crashing and never loading garbage.
TEST(AutotuneCrashTest, FlushSurvivesKillAtEverySite) {
  std::string dir;
  const auto prepare = [&] {
    char tmpl[] = "/tmp/ceaff_tune_crash_XXXXXX";
    const char* d = mkdtemp(tmpl);
    ASSERT_NE(d, nullptr);
    dir = d;
  };
  const auto operation = [&]() -> Status {
    KernelAutotuner tuner(FastOptions(AutotuneMode::kOn, dir));
    Status st = tuner.Init();
    if (!st.ok()) return st;
    st = tuner.Warm({{"matmul_bt", 48, 48, 16}}, {1});
    if (!st.ok()) return st;
    return tuner.Flush();
  };
  const auto verify = [&](const std::string& site, bool crashed) {
    KernelAutotuner tuner(FastOptions(AutotuneMode::kCacheOnly, dir));
    ASSERT_TRUE(tuner.Init().ok())
        << "recovery failed after crash at " << site
        << " (crashed=" << crashed << ")";
    // Whatever survived must be a consistent table: zero entries (nothing
    // committed) or the one warmed class.
    EXPECT_LE(tuner.entries(), 1u) << "site " << site;
    std::error_code ec;
    fs::remove_all(dir, ec);
  };
  ceaff::testing::RunCrashDrill(
      prepare, operation, verify,
      {.site_prefix = "tune",
       .iterations = ceaff::testing::CrashIterationsFromEnv(3)});
}

// ---------------------------------------------------------------------------
// The determinism contract: tuned == default, bit for bit
// ---------------------------------------------------------------------------

// Property test across random shapes and thread counts: for every kernel
// the tuner knows, the tuned configuration's output is byte-identical to
// the static default configuration's. This is what makes autotuning safe
// to enable anywhere — it can change when an element is computed, never
// its value.
TEST(AutotuneBitIdentityTest, TunedMatchesDefaultAcrossShapesAndThreads) {
  Rng rng(2026);
  KernelAutotuner tuner(FastOptions(AutotuneMode::kOn));
  ASSERT_TRUE(tuner.Init().ok());
  ThreadPool pool2(2);
  ThreadPool pool3(3);
  ThreadPool* pools[] = {nullptr, &pool2, &pool3};

  for (int trial = 0; trial < 6; ++trial) {
    const size_t m = 1 + rng.NextBounded(120);
    const size_t n = 1 + rng.NextBounded(120);
    const size_t d = 1 + rng.NextBounded(48);
    const Matrix a = RandomMatrix(m, d, 100 + trial);
    const Matrix bt = RandomMatrix(n, d, 200 + trial);
    const Matrix b = RandomMatrix(d, n, 300 + trial);
    const SparseMatrix sp = RandomSparse(m, m, m * 4, 400 + trial);
    const Matrix x = RandomMatrix(m, n, 500 + trial);

    for (ThreadPool* pool : pools) {
      KernelContext plain;
      plain.pool = pool;
      KernelContext tuned = plain;
      tuned.tuner = &tuner;

      EXPECT_TRUE(
          BitIdentical(MatMulBTK(plain, a, bt), MatMulBTK(tuned, a, bt)))
          << "matmul_bt " << m << "x" << n << "x" << d << " threads "
          << (pool ? pool->num_threads() : 1);
      EXPECT_TRUE(BitIdentical(MatMulK(plain, a, b), MatMulK(tuned, a, b)))
          << "matmul " << m << "x" << n << "x" << d;
      EXPECT_TRUE(BitIdentical(SpMMK(plain, sp, x), SpMMK(tuned, sp, x)))
          << "spmm " << m << "x" << n;
    }
  }
  EXPECT_GT(tuner.entries(), 0u);
}

}  // namespace
}  // namespace ceaff::la
