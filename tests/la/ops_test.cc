#include "ceaff/la/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/common/random.h"

namespace ceaff::la {
namespace {

TEST(CosineSimilarityTest, KnownVectors) {
  Matrix a = Matrix::FromRows({{1, 0}, {1, 1}});
  Matrix b = Matrix::FromRows({{0, 1}, {1, 0}, {-1, 0}});
  Matrix sim = CosineSimilarity(a, b);
  ASSERT_EQ(sim.rows(), 2u);
  ASSERT_EQ(sim.cols(), 3u);
  EXPECT_NEAR(sim.at(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(sim.at(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(sim.at(0, 2), -1.0f, 1e-6);
  EXPECT_NEAR(sim.at(1, 0), 1.0f / std::sqrt(2.0f), 1e-6);
}

TEST(CosineSimilarityTest, ZeroRowsYieldZeroSimilarity) {
  Matrix a = Matrix::FromRows({{0, 0}});
  Matrix b = Matrix::FromRows({{1, 2}});
  EXPECT_EQ(CosineSimilarity(a, b).at(0, 0), 0.0f);
}

// Property: cosine similarity of arbitrary vectors lies in [-1, 1] and the
// self-similarity of a non-zero vector is 1.
class CosinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CosinePropertyTest, BoundedAndReflexive) {
  Rng rng(GetParam());
  size_t n = 3 + rng.NextBounded(10);
  size_t d = 1 + rng.NextBounded(16);
  Matrix a = Matrix::TruncatedNormal(n, d, 1.0f, &rng);
  Matrix sim = CosineSimilarity(a, a);
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(a.row(i)[0]) + a.FrobeniusNorm() > 0) {
      EXPECT_NEAR(sim.at(i, i), 1.0f, 1e-4);
    }
    for (size_t j = 0; j < n; ++j) {
      EXPECT_GE(sim.at(i, j), -1.0f - 1e-4);
      EXPECT_LE(sim.at(i, j), 1.0f + 1e-4);
      EXPECT_NEAR(sim.at(i, j), sim.at(j, i), 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosinePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RowArgmaxTest, PicksMaxFirstOnTies) {
  Matrix m = Matrix::FromRows({{1, 3, 2}, {5, 5, 1}, {0, 0, 0}});
  std::vector<size_t> am = RowArgmax(m);
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);  // tie -> lower index
  EXPECT_EQ(am[2], 0u);
}

TEST(ColArgmaxTest, PicksMaxFirstOnTies) {
  Matrix m = Matrix::FromRows({{1, 5, 0}, {3, 5, 0}});
  std::vector<size_t> am = ColArgmax(m);
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);  // tie -> lower row
  EXPECT_EQ(am[2], 0u);
}

TEST(RowTopKTest, DescendingOrderAndClamping) {
  Matrix m = Matrix::FromRows({{0.1f, 0.9f, 0.5f, 0.7f}});
  EXPECT_EQ(RowTopK(m, 0, 2), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(RowTopK(m, 0, 99), (std::vector<size_t>{1, 3, 2, 0}));
}

TEST(RowRanksTest, OneBasedDenseRanks) {
  Matrix m = Matrix::FromRows({{0.2f, 0.8f, 0.5f}});
  std::vector<size_t> ranks = RowRanks(m, 0);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[2], 2u);
  EXPECT_EQ(ranks[0], 3u);
}

TEST(WeightedSumTest, CombinesWithWeights) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{10, 20}});
  Matrix f = WeightedSum({&a, &b}, {0.25, 0.75});
  EXPECT_NEAR(f.at(0, 0), 7.75f, 1e-6);
  EXPECT_NEAR(f.at(0, 1), 15.5f, 1e-6);
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  Matrix m = Matrix::FromRows({{-2, 0}, {2, 1}});
  MinMaxNormalize(&m);
  EXPECT_EQ(m.at(0, 0), 0.0f);
  EXPECT_EQ(m.at(1, 0), 1.0f);
  EXPECT_NEAR(m.at(0, 1), 0.5f, 1e-6);
}

TEST(MinMaxNormalizeTest, ConstantMatrixBecomesZero) {
  Matrix m = Matrix::FromRows({{3, 3}, {3, 3}});
  MinMaxNormalize(&m);
  EXPECT_EQ(m.Sum(), 0.0);
}

}  // namespace
}  // namespace ceaff::la
