// Parity and property tests for the blocked/parallel compute kernels
// (la/kernels.h) against their retained naive references. The determinism
// contract — bit-identical output at every thread count — and the
// documented agreement with the references (bit-identical for the
// Sinkhorn/CSLS/SpMM family, O(d·eps) relative for the float-accumulating
// GEMM family) are pinned here; a kernel change that silently reorders an
// accumulation breaks these tests, not an alignment benchmark three layers
// up.

#include "ceaff/la/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/random.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/la/csls.h"
#include "ceaff/la/ops.h"
#include "ceaff/la/sparse_matrix.h"
#include "ceaff/matching/sinkhorn.h"
#include "ceaff/text/levenshtein.h"

namespace ceaff::la {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    }
  }
  return m;
}

SparseMatrix RandomSparse(size_t rows, size_t cols, size_t nnz,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.NextBounded(rows)),
                        static_cast<uint32_t>(rng.NextBounded(cols)),
                        static_cast<float>(rng.NextUniform(-1.0, 1.0))});
  }
  return SparseMatrix::Build(rows, cols, std::move(triplets));
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void ExpectNear(const Matrix& got, const Matrix& want, double rel_tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t r = 0; r < got.rows(); ++r) {
    for (size_t c = 0; c < got.cols(); ++c) {
      const double w = want.at(r, c);
      const double tol = rel_tol * std::max(1.0, std::abs(w));
      EXPECT_NEAR(got.at(r, c), w, tol) << "at (" << r << ", " << c << ")";
    }
  }
}

// The GEMM-family kernels accumulate in float with lane splitting; the
// references accumulate sequentially in double. The per-element error is
// O(d · eps_f32); d <= 200 in these tests, so 1e-4 relative is generous
// while still catching any wrong-element bug outright.
constexpr double kGemmRelTol = 1e-4;

/// Runs `compute` under: no pool, a 4-thread pool (default blocks), and a
/// 4-thread pool with a tiny block override, asserting all three results
/// are bit-identical. Returns the sequential result for further checks.
template <typename Fn>
Matrix CheckDeterministic(Fn compute) {
  KernelContext seq;
  Matrix base = compute(seq);

  ThreadPool pool(4);
  KernelContext par;
  par.pool = &pool;
  EXPECT_TRUE(BitIdentical(base, compute(par)))
      << "4-thread result differs from sequential";

  KernelContext tiny;
  tiny.pool = &pool;
  tiny.opts.row_block = 3;
  tiny.opts.col_block = 5;
  EXPECT_TRUE(BitIdentical(base, compute(tiny)))
      << "tiny-block result differs from default blocks";
  return base;
}

// ---------------------------------------------------------------------------
// GEMM family
// ---------------------------------------------------------------------------

TEST(KernelGemmTest, MatMulBTMatchesNaiveWithinTolerance) {
  const Matrix a = RandomMatrix(33, 70, 1);
  const Matrix b = RandomMatrix(29, 70, 2);
  const Matrix naive = MatMulBT(a, b);
  const Matrix fast = CheckDeterministic(
      [&](const KernelContext& ctx) { return MatMulBTK(ctx, a, b); });
  ExpectNear(fast, naive, kGemmRelTol);
}

TEST(KernelGemmTest, MatMulMatchesNaiveBitwise) {
  const Matrix a = RandomMatrix(21, 34, 3);
  const Matrix b = RandomMatrix(34, 17, 4);
  const Matrix naive = MatMul(a, b);
  const Matrix fast = CheckDeterministic(
      [&](const KernelContext& ctx) { return MatMulK(ctx, a, b); });
  EXPECT_TRUE(BitIdentical(fast, naive));
}

TEST(KernelGemmTest, MatMulATMatchesNaiveBitwise) {
  const Matrix a = RandomMatrix(34, 21, 5);
  const Matrix b = RandomMatrix(34, 17, 6);
  const Matrix naive = MatMulAT(a, b);
  const Matrix fast = CheckDeterministic(
      [&](const KernelContext& ctx) { return MatMulATK(ctx, a, b); });
  EXPECT_TRUE(BitIdentical(fast, naive));
}

TEST(KernelGemmTest, CosineMatchesNaiveWithinTolerance) {
  const Matrix a = RandomMatrix(40, 64, 7);
  const Matrix b = RandomMatrix(35, 64, 8);
  const Matrix naive = CosineSimilarity(a, b);
  const Matrix fast = CheckDeterministic(
      [&](const KernelContext& ctx) { return CosineSimilarityK(ctx, a, b); });
  ExpectNear(fast, naive, kGemmRelTol);
  // Cosine values are bounded regardless of accumulation order.
  for (size_t r = 0; r < fast.rows(); ++r) {
    for (size_t c = 0; c < fast.cols(); ++c) {
      EXPECT_LE(std::abs(fast.at(r, c)), 1.0f + 1e-5f);
    }
  }
}

// Satellite regression: zero-norm rows must yield exactly 0 similarity —
// never NaN, never garbage from a 0/0 — in both the naive reference and
// the kernel. (The naive CosineSimilarity used to normalise copies of the
// inputs per call; the rewrite hoists inverse norms and pins this.)
TEST(KernelGemmTest, ZeroNormRowsYieldExactZeros) {
  Matrix a = RandomMatrix(4, 8, 9);
  Matrix b = RandomMatrix(3, 8, 10);
  for (size_t c = 0; c < a.cols(); ++c) a.at(2, c) = 0.0f;  // zero row in a
  for (size_t c = 0; c < b.cols(); ++c) b.at(0, c) = 0.0f;  // zero row in b

  const Matrix naive = CosineSimilarity(a, b);
  KernelContext ctx;
  const Matrix fast = CosineSimilarityK(ctx, a, b);
  for (size_t j = 0; j < naive.cols(); ++j) {
    EXPECT_EQ(naive.at(2, j), 0.0f);
    EXPECT_EQ(fast.at(2, j), 0.0f);
  }
  for (size_t i = 0; i < naive.rows(); ++i) {
    EXPECT_EQ(naive.at(i, 0), 0.0f);
    EXPECT_EQ(fast.at(i, 0), 0.0f);
  }
  for (size_t r = 0; r < naive.rows(); ++r) {
    for (size_t c = 0; c < naive.cols(); ++c) {
      EXPECT_FALSE(std::isnan(naive.at(r, c)));
      EXPECT_FALSE(std::isnan(fast.at(r, c)));
    }
  }
}

TEST(KernelGemmTest, OddShapesMatchNaive) {
  // 0x0, 1xN, Nx1, d=1, and shapes far from any block multiple.
  const struct {
    size_t m, n, d;
  } shapes[] = {{0, 0, 0}, {0, 5, 3}, {1, 7, 16}, {7, 1, 16},
                {5, 6, 1}, {65, 129, 33}, {1, 1, 1}};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s.m, s.d, 11 + s.m);
    const Matrix b = RandomMatrix(s.n, s.d, 12 + s.n);
    const Matrix naive = CosineSimilarity(a, b);
    const Matrix fast = CheckDeterministic(
        [&](const KernelContext& ctx) { return CosineSimilarityK(ctx, a, b); });
    ExpectNear(fast, naive, kGemmRelTol);
  }
}

TEST(KernelGemmTest, CheckedVariantHonoursCancellation) {
  const Matrix a = RandomMatrix(64, 16, 13);
  const Matrix b = RandomMatrix(64, 16, 14);
  CancellationToken token;
  token.RequestCancel();
  KernelContext ctx;
  ctx.cancel = &token;
  auto result = CosineSimilarityChecked(ctx, a, b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Sparse-dense
// ---------------------------------------------------------------------------

TEST(KernelSpmmTest, SpMMMatchesCsrReferenceBitwise) {
  const SparseMatrix a = RandomSparse(30, 40, 150, 15);
  const Matrix x = RandomMatrix(40, 9, 16);
  const Matrix naive = a.Multiply(x);
  const Matrix fast = CheckDeterministic(
      [&](const KernelContext& ctx) { return SpMMK(ctx, a, x); });
  EXPECT_TRUE(BitIdentical(fast, naive));
}

TEST(KernelSpmmTest, SpMMTransposedMatchesCsrReferenceBitwise) {
  const SparseMatrix a = RandomSparse(30, 40, 150, 17);
  const Matrix x = RandomMatrix(30, 9, 18);
  const Matrix naive = a.MultiplyTransposed(x);
  const Matrix fast = CheckDeterministic(
      [&](const KernelContext& ctx) { return SpMMTransposedK(ctx, a, x); });
  EXPECT_TRUE(BitIdentical(fast, naive));
}

// The fused single-sweep CSR path is the default for the parallel case
// too: pin bitwise parity against the CSR reference at every thread count
// a deployment plausibly runs, not just the 4 threads CheckDeterministic
// uses. Includes a shape big enough to cross the prefetch footprint gate
// in both directions (x below and above the 1 MiB threshold).
TEST(KernelSpmmTest, FusedSweepMatchesReferenceAtEveryThreadCount) {
  const struct {
    size_t rows, cols, nnz, d;
  } shapes[] = {{30, 40, 150, 9}, {257, 300, 2000, 33}, {1200, 4500, 9000, 64}};
  for (const auto& s : shapes) {
    const SparseMatrix a = RandomSparse(s.rows, s.cols, s.nnz, 19 + s.rows);
    const Matrix x = RandomMatrix(s.cols, s.d, 20 + s.rows);
    const Matrix naive = a.Multiply(x);
    for (const size_t threads : {1, 2, 3, 4, 8}) {
      ThreadPool pool(threads);
      KernelContext ctx;
      ctx.pool = &pool;
      EXPECT_TRUE(BitIdentical(SpMMK(ctx, a, x), naive))
          << s.rows << "x" << s.cols << " at " << threads << " threads";
    }
  }
}

// The tuner's serialize-grain candidate sets grain >= rows so the whole
// kernel runs as one inline panel without pool dispatch. That must be a
// pure scheduling change: bit-identical to the fanned-out result, for
// dense and sparse kernels alike.
TEST(KernelSpmmTest, SerializeGrainIsBitIdenticalToFanOut) {
  const SparseMatrix a = RandomSparse(90, 110, 700, 21);
  const Matrix x = RandomMatrix(110, 13, 22);
  const Matrix da = RandomMatrix(61, 35, 23);
  const Matrix db = RandomMatrix(47, 35, 24);

  ThreadPool pool(4);
  KernelContext fan;
  fan.pool = &pool;
  KernelContext serial = fan;
  serial.opts.grain = 1u << 20;  // >= rows: single inline panel

  EXPECT_TRUE(BitIdentical(SpMMK(fan, a, x), SpMMK(serial, a, x)));
  EXPECT_TRUE(BitIdentical(MatMulBTK(fan, da, db), MatMulBTK(serial, da, db)));

  KernelContext seq;  // and both equal the no-pool path
  EXPECT_TRUE(BitIdentical(SpMMK(seq, a, x), SpMMK(serial, a, x)));
  EXPECT_TRUE(BitIdentical(MatMulBTK(seq, da, db), MatMulBTK(serial, da, db)));
}

// ---------------------------------------------------------------------------
// Sinkhorn normalisation
// ---------------------------------------------------------------------------

TEST(KernelNormalizeTest, RowAndColNormalizeAreThreadCountInvariant) {
  const Matrix base = RandomMatrix(37, 23, 19);
  auto row_normalized = [&](const KernelContext& ctx) {
    // Shift into positive territory so every row/col has mass.
    Matrix m = base;
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) m.at(r, c) += 2.0f;
    }
    RowNormalizeK(ctx, &m);
    ColNormalizeK(ctx, &m, 37.0 / 23.0);
    return m;
  };
  const Matrix result = CheckDeterministic(row_normalized);
  // Columns were normalised last: each must sum to ~target.
  for (size_t c = 0; c < result.cols(); ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < result.rows(); ++r) sum += result.at(r, c);
    EXPECT_NEAR(sum, 37.0 / 23.0, 1e-4);
  }
}

TEST(KernelNormalizeTest, SinkhornPlanIsIdenticalWithAndWithoutKernels) {
  const Matrix sim = RandomMatrix(12, 15, 20);
  matching::SinkhornOptions plain;
  auto reference = matching::SinkhornNormalizeChecked(sim, plain);
  ASSERT_TRUE(reference.ok());

  ThreadPool pool(4);
  KernelContext ctx;
  ctx.pool = &pool;
  matching::SinkhornOptions with_kernel;
  with_kernel.kernel = &ctx;
  auto parallel = matching::SinkhornNormalizeChecked(sim, with_kernel);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(BitIdentical(*reference, *parallel));
}

// ---------------------------------------------------------------------------
// CSLS
// ---------------------------------------------------------------------------

TEST(KernelCslsTest, MatchesNaiveBitwiseIncludingEdgeK) {
  const Matrix m = RandomMatrix(26, 31, 21);
  for (size_t k : {size_t{0}, size_t{1}, size_t{5}, size_t{31}, size_t{99}}) {
    const Matrix naive = CslsRescale(m, k);
    const Matrix fast = CheckDeterministic(
        [&](const KernelContext& ctx) { return CslsRescaleK(ctx, m, k); });
    EXPECT_TRUE(BitIdentical(fast, naive)) << "k = " << k;
  }
}

// ---------------------------------------------------------------------------
// String kernels
// ---------------------------------------------------------------------------

std::string RandomName(Rng* rng, size_t max_len) {
  const std::string alphabet = "abcdefgh ";
  std::string s;
  const size_t len = rng->NextBounded(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s += alphabet[rng->NextBounded(alphabet.size())];
  }
  return s;
}

TEST(KernelStringTest, LevenshteinRatioFastIsExactlyTheNaiveRatio) {
  // Edge cases first: empties, identical, pure prefix/suffix overlap, and
  // strings longer than one 64-bit LCS word.
  const std::string long_a(150, 'a');
  std::string long_b = long_a;
  long_b[77] = 'b';
  const std::pair<std::string, std::string> cases[] = {
      {"", ""},         {"", "abc"},     {"abc", ""},
      {"same", "same"}, {"abcx", "abcy"}, {"xabc", "yabc"},
      {"a", "c"},       {"kitten", "sitting"}, {long_a, long_b},
  };
  for (const auto& [a, b] : cases) {
    EXPECT_DOUBLE_EQ(LevenshteinRatioFast(a, b), text::LevenshteinRatio(a, b))
        << '"' << a << "\" vs \"" << b << '"';
  }
  Rng rng(22);
  for (int i = 0; i < 500; ++i) {
    const std::string a = RandomName(&rng, 90);
    const std::string b = RandomName(&rng, 90);
    ASSERT_DOUBLE_EQ(LevenshteinRatioFast(a, b),
                     text::LevenshteinRatio(a, b))
        << '"' << a << "\" vs \"" << b << '"';
  }
}

TEST(KernelStringTest, BandedDistanceIsExactWithinTheLimit) {
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const std::string a = RandomName(&rng, 25);
    const std::string b = RandomName(&rng, 25);
    const size_t exact = text::LevenshteinDistance(a, b);
    for (size_t limit : {size_t{0}, size_t{2}, size_t{10}, size_t{60}}) {
      const size_t banded = LevenshteinDistanceBanded(a, b, limit);
      if (exact <= limit) {
        EXPECT_EQ(banded, exact) << '"' << a << "\" vs \"" << b << '"';
      } else {
        EXPECT_EQ(banded, limit + 1) << '"' << a << "\" vs \"" << b << '"';
      }
    }
    // Substitution cost 2 variant against the lev* reference.
    const size_t exact2 = text::LevenshteinDistanceSub2(a, b);
    const size_t banded2 = LevenshteinDistanceBanded(a, b, 60, 2);
    EXPECT_EQ(banded2, exact2 <= 60 ? exact2 : size_t{61});
  }
}

std::vector<std::string> RandomNames(size_t n, size_t max_len, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names(n);
  for (std::string& s : names) s = RandomName(&rng, max_len);
  return names;
}

TEST(KernelStringTest, SimilarityMatrixMatchesNaiveExactly) {
  const auto src = RandomNames(23, 20, 24);
  const auto tgt = RandomNames(17, 20, 25);
  const Matrix naive = text::StringSimilarityMatrix(src, tgt);
  const Matrix fast = CheckDeterministic([&](const KernelContext& ctx) {
    return StringSimilarityMatrixK(ctx, src, tgt);
  });
  EXPECT_TRUE(BitIdentical(fast, naive));
}

TEST(KernelStringTest, PrunedMatrixKeepsExactRowMaximaAndUpperBounds) {
  const auto src = RandomNames(20, 24, 26);
  const auto tgt = RandomNames(30, 24, 27);
  const Matrix exact = text::StringSimilarityMatrix(src, tgt);
  const Matrix pruned = CheckDeterministic([&](const KernelContext& ctx) {
    return StringSimilarityMatrixPruned(ctx, src, tgt);
  });
  ASSERT_EQ(pruned.rows(), exact.rows());
  ASSERT_EQ(pruned.cols(), exact.cols());
  for (size_t r = 0; r < exact.rows(); ++r) {
    float exact_max = 0.0f, pruned_max = 0.0f;
    for (size_t c = 0; c < exact.cols(); ++c) {
      // Pruned cells hold upper bounds — never less than the true ratio.
      EXPECT_GE(pruned.at(r, c), exact.at(r, c) - 1e-6f)
          << "(" << r << ", " << c << ")";
      exact_max = std::max(exact_max, exact.at(r, c));
      pruned_max = std::max(pruned_max, pruned.at(r, c));
    }
    // Row maxima are exact: the best candidate is never pruned below its
    // true score, and no upper bound exceeds the row's true maximum...
    EXPECT_EQ(pruned_max, exact_max) << "row " << r;
    // ...and the argmax set (ties included) is preserved.
    for (size_t c = 0; c < exact.cols(); ++c) {
      if (exact.at(r, c) == exact_max) {
        EXPECT_EQ(pruned.at(r, c), exact_max) << "(" << r << ", " << c << ")";
      }
    }
  }
}

TEST(KernelStringTest, ChooseStringKernelPicksExactForShortNames) {
  // Typical translated DBP15K names: short, one or two tokens.
  const std::vector<std::string> src = {"alpha", "beta two", "gamma"};
  const std::vector<std::string> tgt = {"uno", "dos", "tres"};
  const auto choice = ChooseStringKernel(src, tgt);
  EXPECT_FALSE(choice.pruned);
  EXPECT_LT(choice.mean_chars, 32.0);
}

TEST(KernelStringTest, ChooseStringKernelPicksPrunedForLongMultiWordNames) {
  std::vector<std::string> src(8), tgt(8);
  for (size_t i = 0; i < 8; ++i) {
    src[i] = "the quite long descriptive entity name number " +
             std::to_string(i);
    tgt[i] = "another rather long descriptive entity label number " +
             std::to_string(i);
  }
  const auto choice = ChooseStringKernel(src, tgt);
  EXPECT_TRUE(choice.pruned);
  EXPECT_GE(choice.mean_chars, 32.0);
  EXPECT_GE(choice.mean_tokens, 3.0);
}

TEST(KernelStringTest, ChooseStringKernelEmptyInputPicksExact) {
  EXPECT_FALSE(ChooseStringKernel({}, {}).pruned);
}

TEST(KernelStringTest, AutoDispatchIsBitIdenticalOnShortNames) {
  const auto src = RandomNames(15, 18, 30);
  const auto tgt = RandomNames(15, 18, 31);
  KernelContext ctx;
  StringKernelChoice choice;
  const Matrix autod = StringSimilarityMatrixAuto(ctx, src, tgt, &choice);
  ASSERT_FALSE(choice.pruned);
  EXPECT_TRUE(BitIdentical(autod, StringSimilarityMatrixK(ctx, src, tgt)));
}

TEST(KernelStringTest, AutoDispatchKeepsRowMaximaExactOnLongNames) {
  std::vector<std::string> src(10), tgt(14);
  Rng rng(32);
  for (std::string& s : src) {
    for (int w = 0; w < 6; ++w) s += RandomName(&rng, 10) + " ";
  }
  for (std::string& s : tgt) {
    for (int w = 0; w < 6; ++w) s += RandomName(&rng, 10) + " ";
  }
  KernelContext ctx;
  StringKernelChoice choice;
  const Matrix autod = StringSimilarityMatrixAuto(ctx, src, tgt, &choice);
  ASSERT_TRUE(choice.pruned);
  const Matrix exact = text::StringSimilarityMatrix(src, tgt);
  for (size_t r = 0; r < exact.rows(); ++r) {
    float exact_max = 0.0f, auto_max = 0.0f;
    for (size_t c = 0; c < exact.cols(); ++c) {
      EXPECT_GE(autod.at(r, c), exact.at(r, c) - 1e-6f);
      exact_max = std::max(exact_max, exact.at(r, c));
      auto_max = std::max(auto_max, autod.at(r, c));
    }
    EXPECT_EQ(auto_max, exact_max) << "row " << r;
  }
}

TEST(KernelStringTest, PrunedMatrixHonoursFloor) {
  const auto src = RandomNames(12, 18, 28);
  const auto tgt = RandomNames(12, 18, 29);
  const Matrix exact = text::StringSimilarityMatrix(src, tgt);
  KernelContext ctx;
  const double floor = 0.8;
  const Matrix pruned = StringSimilarityMatrixPruned(ctx, src, tgt, floor);
  // Entries above the floor are exact; the rest are upper bounds.
  for (size_t r = 0; r < exact.rows(); ++r) {
    for (size_t c = 0; c < exact.cols(); ++c) {
      if (exact.at(r, c) > floor) {
        EXPECT_EQ(pruned.at(r, c), exact.at(r, c))
            << "(" << r << ", " << c << ")";
      } else {
        EXPECT_GE(pruned.at(r, c), exact.at(r, c) - 1e-6f);
      }
    }
  }
}

}  // namespace
}  // namespace ceaff::la
