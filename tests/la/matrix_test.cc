#include "ceaff/la/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/common/random.h"

namespace ceaff::la {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m.at(r, c), 0.0f);
  }
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m(1, 2), 5.0f);
  EXPECT_EQ(m.row(1)[2], 5.0f);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(2, 1), 6.0f);
  EXPECT_TRUE(Matrix::FromRows({}).empty());
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_EQ(a.at(0, 0), 11.0f);
  a.Sub(b);
  EXPECT_EQ(a.at(1, 1), 4.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a.at(0, 1), 4.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(1, 0), 6.0f + 15.0f);
  a.Fill(7.0f);
  EXPECT_EQ(a.Sum(), 28.0);
  a.SetZero();
  EXPECT_EQ(a.Sum(), 0.0);
}

TEST(MatrixTest, ReluZeroesNegatives) {
  Matrix m = Matrix::FromRows({{-1, 0.5f}, {2, -3}});
  m.ReluInPlace();
  EXPECT_EQ(m.at(0, 0), 0.0f);
  EXPECT_EQ(m.at(0, 1), 0.5f);
  EXPECT_EQ(m.at(1, 0), 2.0f);
  EXPECT_EQ(m.at(1, 1), 0.0f);
}

TEST(MatrixTest, L2NormalizeRowsMakesUnitRows) {
  Matrix m = Matrix::FromRows({{3, 4}, {0, 0}, {5, 12}});
  m.L2NormalizeRows();
  EXPECT_NEAR(m.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(m.at(0, 1), 0.8f, 1e-6);
  // Zero rows stay zero (no NaN).
  EXPECT_EQ(m.at(1, 0), 0.0f);
  EXPECT_NEAR(std::hypot(m.at(2, 0), m.at(2, 1)), 1.0, 1e-6);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0f, 1e-6);
  EXPECT_EQ(Matrix().FrobeniusNorm(), 0.0f);
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.at(0, 0), 1.0f);
}

TEST(MatrixTest, TruncatedNormalInitBounded) {
  Rng rng(5);
  Matrix m = Matrix::TruncatedNormal(50, 20, 0.5f, &rng);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), 1.0f + 1e-6);
  }
  // Not all zero.
  EXPECT_GT(m.FrobeniusNorm(), 0.0f);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  Rng rng(6);
  Matrix m = Matrix::GlorotUniform(30, 40, &rng);
  float limit = std::sqrt(6.0f / (30 + 40));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit + 1e-6);
  }
}

TEST(MatMulTest, KnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(MatMulTest, RectangularShapes) {
  Matrix a(2, 3);
  Matrix b(3, 4);
  a.Fill(1.0f);
  b.Fill(2.0f);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_EQ(c.at(1, 3), 6.0f);
}

TEST(MatMulTest, VariantsAgreeWithExplicitTranspose) {
  Rng rng(9);
  Matrix a = Matrix::TruncatedNormal(7, 5, 1.0f, &rng);
  Matrix b = Matrix::TruncatedNormal(6, 5, 1.0f, &rng);
  Matrix expected = MatMul(a, b.Transposed());
  Matrix got = MatMulBT(a, b);
  ASSERT_TRUE(got.SameShape(expected));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-4);
  }

  Matrix c = Matrix::TruncatedNormal(5, 7, 1.0f, &rng);
  Matrix d = Matrix::TruncatedNormal(5, 4, 1.0f, &rng);
  Matrix expected2 = MatMul(c.Transposed(), d);
  Matrix got2 = MatMulAT(c, d);
  ASSERT_TRUE(got2.SameShape(expected2));
  for (size_t i = 0; i < got2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], expected2.data()[i], 1e-4);
  }
}

TEST(MatrixTest, ToStringRendersRows) {
  Matrix m = Matrix::FromRows({{1.5f, 2.0f}});
  EXPECT_EQ(m.ToString(1), "[1.5, 2.0]\n");
}

}  // namespace
}  // namespace ceaff::la
