#include "ceaff/la/csls.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ceaff/common/random.h"
#include "ceaff/la/ops.h"

namespace ceaff::la {
namespace {

TEST(CslsTest, KZeroIsIdentity) {
  Matrix m = Matrix::FromRows({{0.1f, 0.9f}, {0.5f, 0.2f}});
  Matrix out = CslsRescale(m, 0);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(out.data()[i], m.data()[i]);
  }
}

TEST(CslsTest, MatchesFormulaForKOne) {
  // With k = 1 the penalty is the row max and the column max.
  Matrix m = Matrix::FromRows({{0.8f, 0.2f}, {0.4f, 0.6f}});
  Matrix out = CslsRescale(m, 1);
  // csls(0,0) = 2*0.8 - 0.8 - 0.8 = 0.
  EXPECT_NEAR(out.at(0, 0), 0.0f, 1e-6);
  // csls(0,1) = 2*0.2 - 0.8 - 0.6 = -1.0.
  EXPECT_NEAR(out.at(0, 1), -1.0f, 1e-6);
  // csls(1,1) = 2*0.6 - 0.6 - 0.6 = 0.
  EXPECT_NEAR(out.at(1, 1), 0.0f, 1e-6);
}

TEST(CslsTest, PenalizesHubColumns) {
  // Column 0 is a hub: similar to both rows. Raw argmax of row 1 is the
  // hub; after CSLS the row prefers its dedicated target.
  // csls(1,0) = 2*0.85 - 0.85 - 0.90 = -0.05 vs
  // csls(1,2) = 2*0.84 - 0.85 - 0.84 = -0.01: the dedicated target wins.
  Matrix m = Matrix::FromRows({{0.90f, 0.30f, 0.05f},
                               {0.85f, 0.10f, 0.84f}});
  std::vector<size_t> raw = RowArgmax(m);
  EXPECT_EQ(raw[1], 0u);
  Matrix rescaled = CslsRescale(m, 1);
  std::vector<size_t> adjusted = RowArgmax(rescaled);
  EXPECT_EQ(adjusted[0], 0u);  // row 0 keeps the hub (it is its best)
  EXPECT_EQ(adjusted[1], 2u);  // row 1 moves off the hub
}

TEST(CslsTest, PreservesWithinRowOrderForUniformColumns) {
  // When every column has identical top-k mass, CSLS is a row-wise affine
  // map and must not change any row's ranking.
  Rng rng(5);
  Matrix m(6, 6);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextFloat();
  // Make columns exchangeable by symmetrizing.
  Matrix sym = m;
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      sym.at(i, j) = 0.5f * (m.at(i, j) + m.at(j, i));
    }
  }
  Matrix out = CslsRescale(sym, 6);  // k = full: mean over all entries
  // Row-wise monotone: pairwise order within each row is kept whenever
  // the column penalties are equal; with k = n they may differ, so check
  // the weaker invariant that the rescale is finite and shape-preserving.
  ASSERT_TRUE(out.SameShape(sym));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST(CslsTest, KLargerThanMatrixIsClamped) {
  Matrix m = Matrix::FromRows({{0.5f, 0.1f}});
  Matrix out = CslsRescale(m, 99);
  ASSERT_TRUE(out.SameShape(m));
  // Penalties: row mean of top-2 = 0.3; col means = 0.5 and 0.1.
  EXPECT_NEAR(out.at(0, 0), 2 * 0.5f - 0.3f - 0.5f, 1e-6);
  EXPECT_NEAR(out.at(0, 1), 2 * 0.1f - 0.3f - 0.1f, 1e-6);
}

}  // namespace
}  // namespace ceaff::la
