#include "ceaff/la/matrix_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ceaff/common/crc32.h"
#include "testing/fault_injection.h"

namespace ceaff::la {
namespace {

namespace ft = ceaff::testing;

Matrix TestMatrix(size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(r) * 3.25f - static_cast<float>(c) * 0.5f;
    }
  }
  return m;
}

TEST(Crc32Test, MatchesKnownVector) {
  // IEEE 802.3 CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32Of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32Of("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char data[] = "collective entity alignment";
  Crc32 crc;
  crc.Update(data, 10);
  crc.Update(data + 10, sizeof(data) - 1 - 10);
  EXPECT_EQ(crc.value(), Crc32Of(data, sizeof(data) - 1));
}

TEST(MatrixIoTest, RoundTripsExactly) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  Matrix m = TestMatrix(7, 5);
  ASSERT_TRUE(SaveMatrixArtifact(m, path).ok());

  auto loaded = LoadMatrixArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows(), 7u);
  ASSERT_EQ(loaded->cols(), 5u);
  // Byte-identical payload, not just approximately equal.
  EXPECT_EQ(std::memcmp(loaded->data(), m.data(), m.size() * sizeof(float)),
            0);
}

TEST(MatrixIoTest, RoundTripsEmptyMatrix) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("empty.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(Matrix(), path).ok());
  auto loaded = LoadMatrixArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows(), 0u);
  EXPECT_EQ(loaded->cols(), 0u);
}

TEST(MatrixIoTest, MissingFileIsIOErrorNotDataLoss) {
  ft::ScratchDir dir("matrix_io");
  auto loaded = LoadMatrixArtifact(dir.File("absent.ckpt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status().ToString();
}

TEST(MatrixIoTest, TruncationIsDetectedAsDataLoss) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(4, 4), path).ok());

  ft::TruncateTail(path, 5);  // drop the CRC footer and one payload byte
  auto loaded = LoadMatrixArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsDataLoss()) << loaded.status().ToString();
}

TEST(MatrixIoTest, TruncationToBelowHeaderIsDataLoss) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(4, 4), path).ok());
  ft::TruncateFile(path, 10);
  EXPECT_TRUE(LoadMatrixArtifact(path).status().IsDataLoss());
}

TEST(MatrixIoTest, ZeroByteFileIsDataLoss) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(2, 2), path).ok());
  ft::ZeroFile(path);
  EXPECT_TRUE(LoadMatrixArtifact(path).status().IsDataLoss());
}

TEST(MatrixIoTest, PayloadBitFlipFailsTheCrc) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(6, 3), path).ok());

  // Flip one bit in the middle of the float payload: size, magic and shape
  // all still look fine, only the CRC can catch this.
  ft::FlipBit(path, /*offset=*/32 + 9, /*bit=*/3);
  auto loaded = LoadMatrixArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsDataLoss()) << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos);
}

TEST(MatrixIoTest, MagicBitFlipIsRejectedBeforeTheCrc) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(2, 2), path).ok());
  ft::FlipBit(path, /*offset=*/0, /*bit=*/0);
  auto loaded = LoadMatrixArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsDataLoss());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST(MatrixIoTest, CorruptedShapeCannotTriggerHugeAllocation) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(2, 2), path).ok());
  // The row count lives at header offset 16 (little-endian u64). Flipping a
  // high bit claims an absurd shape; the loader must reject on the
  // size-vs-shape check instead of allocating petabytes.
  ft::FlipBit(path, /*offset=*/16 + 5, /*bit=*/7);
  auto loaded = LoadMatrixArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsDataLoss()) << loaded.status().ToString();
}

TEST(MatrixIoTest, SaveDoesNotLeaveTempFileBehind) {
  ft::ScratchDir dir("matrix_io");
  const std::string path = dir.File("m.ckpt");
  ASSERT_TRUE(SaveMatrixArtifact(TestMatrix(3, 3), path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Table-driven torn-write coverage: damage the serialized artifact at every
// section boundary of the CEAFFMAT layout and assert the parser never
// accepts it. A crash can tear a *temp* file at any byte; these are the
// bytes where a lazy parser is most likely to trust a partial structure.

struct SectionBoundary {
  const char* name;
  size_t offset;  // first byte of the section
};

std::vector<SectionBoundary> MatrixSectionBoundaries(const Matrix& m) {
  // Layout: 8B magic | u32 version | u32 reserved | u64 rows | u64 cols |
  // float payload | u32 CRC footer.
  const size_t payload = m.size() * sizeof(float);
  return {
      {"magic", 0},
      {"version", 8},
      {"reserved", 12},
      {"rows", 16},
      {"cols", 24},
      {"payload", 32},
      {"payload_mid", 32 + payload / 2},
      {"crc_footer", 32 + payload},
  };
}

TEST(MatrixIoTornWriteTest, TruncationAtEverySectionBoundaryIsDataLoss) {
  const Matrix m = TestMatrix(5, 3);
  const std::string bytes = SerializeMatrixArtifact(m);
  ASSERT_TRUE(ParseMatrixArtifact(bytes, "intact").ok());
  for (const SectionBoundary& b : MatrixSectionBoundaries(m)) {
    // Torn exactly AT the boundary (section entirely missing) and one byte
    // INTO it (section partially written).
    for (const size_t cut : {b.offset, b.offset + 1}) {
      if (cut >= bytes.size()) continue;
      auto parsed = ParseMatrixArtifact(bytes.substr(0, cut), b.name);
      ASSERT_FALSE(parsed.ok()) << b.name << " cut at " << cut;
      EXPECT_TRUE(parsed.status().IsDataLoss())
          << b.name << ": " << parsed.status().ToString();
    }
  }
}

TEST(MatrixIoTornWriteTest, BitFlipAtEverySectionBoundaryIsDataLoss) {
  const Matrix m = TestMatrix(5, 3);
  const std::string bytes = SerializeMatrixArtifact(m);
  for (const SectionBoundary& b : MatrixSectionBoundaries(m)) {
    for (int bit : {0, 7}) {
      std::string flipped = bytes;
      flipped[b.offset] = static_cast<char>(
          static_cast<unsigned char>(flipped[b.offset]) ^ (1u << bit));
      auto parsed = ParseMatrixArtifact(flipped, b.name);
      ASSERT_FALSE(parsed.ok()) << b.name << " bit " << bit;
      EXPECT_TRUE(parsed.status().IsDataLoss())
          << b.name << ": " << parsed.status().ToString();
    }
  }
}

TEST(MatrixIoTornWriteTest, EmptyMatrixBoundariesAreCoveredToo) {
  // Degenerate artifact (no payload): header and footer are adjacent, the
  // easiest place for an off-by-one in the size checks.
  const std::string bytes = SerializeMatrixArtifact(Matrix());
  ASSERT_TRUE(ParseMatrixArtifact(bytes, "empty").ok());
  for (size_t cut = 0; cut < bytes.size(); cut += 4) {
    EXPECT_TRUE(
        ParseMatrixArtifact(bytes.substr(0, cut), "empty").status().IsDataLoss())
        << "cut at " << cut;
  }
  std::string flipped = bytes;
  flipped.back() = static_cast<char>(flipped.back() ^ 1);
  EXPECT_TRUE(ParseMatrixArtifact(flipped, "empty").status().IsDataLoss());
}

}  // namespace
}  // namespace ceaff::la
