// End-to-end integration tests: the paper's headline qualitative claims
// must hold on the synthetic benchmarks (shape, not absolute numbers).

#include <gtest/gtest.h>

#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/common/random.h"
#include "ceaff/kg/io.h"

namespace ceaff {
namespace {

core::CeaffOptions BenchOptions() {
  core::CeaffOptions o;
  o.gcn.dim = 64;
  o.gcn.epochs = 100;
  return o;
}

double RunAccuracy(const data::SyntheticBenchmark& bench,
                   const core::CeaffOptions& options) {
  core::CeaffPipeline pipe(&bench.pair, &bench.store, options);
  return pipe.Run().value().accuracy;
}

TEST(IntegrationTest, MonoLingualReachesNearPerfectAccuracy) {
  // Table IV: CEAFF reaches accuracy 1.0 on mono-lingual benchmarks, where
  // the string feature is near-perfectly informative.
  auto cfg = data::BenchmarkConfigByName("SRPRS_DBP_WD", 0.2).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  EXPECT_GE(RunAccuracy(bench, BenchOptions()), 0.97);
}

TEST(IntegrationTest, CollectiveBeatsIndependentOnHardCrossLingual) {
  // Table V (ZH-EN): "w/o C" costs accuracy on distant language pairs.
  auto cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", 0.2).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions collective = BenchOptions();
  core::CeaffOptions independent = BenchOptions();
  independent.decision_mode = core::DecisionMode::kIndependent;
  double acc_c = RunAccuracy(bench, collective);
  double acc_i = RunAccuracy(bench, independent);
  EXPECT_GE(acc_c, acc_i - 1e-9);
  EXPECT_GT(acc_c, 0.55);
}

TEST(IntegrationTest, StringFeatureMattersMonoLingually) {
  // Table V: removing Ml hurts mono-lingual accuracy.
  auto cfg = data::BenchmarkConfigByName("SRPRS_DBP_YG", 0.2).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions with_ml = BenchOptions();
  core::CeaffOptions without_ml = BenchOptions();
  without_ml.use_string = false;
  EXPECT_GE(RunAccuracy(bench, with_ml),
            RunAccuracy(bench, without_ml) - 1e-9);
}

TEST(IntegrationTest, StringFeatureUselessOnDistantLanguages) {
  // Sec. VII-D: string similarity contributes nothing for ZH-EN; removing
  // it must not cost more than a whisker.
  auto cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", 0.2).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions without_ml = BenchOptions();
  without_ml.use_string = false;
  double with = RunAccuracy(bench, BenchOptions());
  double without = RunAccuracy(bench, without_ml);
  EXPECT_NEAR(with, without, 0.1);
}

TEST(IntegrationTest, AdaptiveFusionAtLeastMatchesFixedWeights) {
  // Table V: CEAFF vs CEAFF w/o AFF.
  auto cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", 0.2).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions fixed = BenchOptions();
  fixed.fusion_mode = core::FusionMode::kFixed;
  EXPECT_GE(RunAccuracy(bench, BenchOptions()),
            RunAccuracy(bench, fixed) - 0.02);
}

TEST(IntegrationTest, PipelineSurvivesKgPairRoundTrip) {
  // Generate -> save -> load -> run: the I/O layer preserves everything
  // the pipeline needs.
  auto cfg = data::BenchmarkConfigByName("SRPRS_EN_DE", 0.15).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  std::string dir = ::testing::TempDir() + "/ceaff_roundtrip";
  ASSERT_TRUE(kg::SaveKgPair(bench.pair, dir).ok());
  kg::KgPair loaded;
  ASSERT_TRUE(kg::LoadKgPair(dir, &loaded).ok());
  ASSERT_EQ(loaded.test_alignment.size(), bench.pair.test_alignment.size());

  data::SyntheticBenchmark reloaded;
  reloaded.pair = std::move(loaded);
  reloaded.store = bench.store;
  double acc_orig = RunAccuracy(bench, BenchOptions());
  double acc_loaded = RunAccuracy(reloaded, BenchOptions());
  // Entity ids are interned in file order, which matches creation order —
  // results must be identical.
  EXPECT_DOUBLE_EQ(acc_orig, acc_loaded);
}

TEST(IntegrationTest, CloseLanguagesEasierThanDistantOnes) {
  // Table III: FR-EN >> ZH-EN for text-aware methods.
  auto zh_cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", 0.15).value();
  auto fr_cfg = data::BenchmarkConfigByName("DBP15K_FR_EN", 0.15).value();
  auto zh = data::GenerateBenchmark(zh_cfg).value();
  auto fr = data::GenerateBenchmark(fr_cfg).value();
  EXPECT_GT(RunAccuracy(fr, BenchOptions()),
            RunAccuracy(zh, BenchOptions()));
}


TEST(IntegrationTest, AccuracyInvariantToTestOrderPermutation) {
  // Rows/columns of the decision space follow test_alignment order;
  // shuffling that order must not change accuracy (it permutes both
  // sides consistently).
  auto cfg = data::BenchmarkConfigByName("SRPRS_EN_FR", 0.15).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  double base = RunAccuracy(bench, BenchOptions());

  data::SyntheticBenchmark shuffled = bench;
  Rng rng(123);
  rng.Shuffle(&shuffled.pair.test_alignment);
  double permuted = RunAccuracy(shuffled, BenchOptions());
  EXPECT_DOUBLE_EQ(base, permuted);
}

TEST(IntegrationTest, HungarianAndDaaBothNearOptimalOnFusedMatrix) {
  // Sec. VI: stable matching is competitive with max-weight matching in
  // outcome while being cheaper; on real fused matrices their accuracies
  // should be close.
  auto cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", 0.15).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions daa = BenchOptions();
  core::CeaffOptions hung = BenchOptions();
  hung.decision_mode = core::DecisionMode::kHungarian;
  double daa_acc = RunAccuracy(bench, daa);
  double hung_acc = RunAccuracy(bench, hung);
  EXPECT_NEAR(daa_acc, hung_acc, 0.08);
}

TEST(IntegrationTest, AttributesHelpWhereTextIsWeak) {
  // Extension shape (ext_attributes bench): the 4th feature lifts the
  // hardest pair.
  auto cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", 0.15).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions with_attr = BenchOptions();
  with_attr.use_attribute = true;
  EXPECT_GE(RunAccuracy(bench, with_attr) + 0.03,
            RunAccuracy(bench, BenchOptions()));
}


// Every standard benchmark config must generate and align far above chance
// even at a tiny scale — the configuration sweep that protects the nine
// named dataset recipes.
class StandardConfigSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(StandardConfigSweep, PipelineBeatsChanceOnEveryConfig) {
  auto cfg = data::BenchmarkConfigByName(GetParam(), 0.1).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  core::CeaffOptions o;
  o.gcn.dim = 32;
  o.gcn.epochs = 40;
  core::CeaffPipeline pipe(&bench.pair, &bench.store, o);
  auto r = pipe.Run();
  ASSERT_TRUE(r.ok()) << r.status();
  double chance =
      1.0 / static_cast<double>(bench.pair.test_alignment.size());
  EXPECT_GT(r.value().accuracy, 10 * chance) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, StandardConfigSweep,
    ::testing::Values("DBP15K_ZH_EN", "DBP15K_JA_EN", "DBP15K_FR_EN",
                      "DBP100K_DBP_WD", "DBP100K_DBP_YG", "SRPRS_EN_FR",
                      "SRPRS_EN_DE", "SRPRS_DBP_WD", "SRPRS_DBP_YG"));

}  // namespace
}  // namespace ceaff
