// DeltaJournal: append/replay durability, segment rotation, torn-tail
// truncation, torn-header drop, corruption detection and watermark replay.

#include "ceaff/delta/delta_journal.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ceaff/common/crc32.h"
#include "ceaff/common/string_util.h"
#include "ceaff/delta/delta_patch.h"

namespace ceaff::delta {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/ceaff_wal_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

PatchRecord Rec(PatchOp op, uint8_t kg, const std::string& uri) {
  PatchRecord r;
  r.op = op;
  r.kg = kg;
  r.uri = uri;
  r.name = "name of " + uri;
  return r;
}

std::string SegPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + StrFormat("wal.%08llu", (unsigned long long)seq);
}

off_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return st.st_size;
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

TEST(DeltaJournalTest, AppendAssignsContiguousIdsAndReplays) {
  const std::string dir = TempDir();
  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ((*journal)->last_record_id(), 0u);

  std::vector<PatchRecord> written;
  for (int i = 0; i < 7; ++i) {
    PatchRecord r = Rec(PatchOp::kAddEntity, 1, StrFormat("kg1:e%d", i));
    auto id = (*journal)->Append(r);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, static_cast<uint64_t>(i + 1));
    r.id = *id;
    written.push_back(r);
  }
  auto records = (*journal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ((*records)[i], written[i]) << "record " << i;
  }
}

TEST(DeltaJournalTest, ReopenRecoversLastIdAndRecords) {
  const std::string dir = TempDir();
  {
    auto journal = DeltaJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 2,
                                         StrFormat("kg2:e%d", i)))
                      .ok());
    }
  }
  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->last_record_id(), 3u);
  auto id = (*journal)->Append(Rec(PatchOp::kServeEntity, 2, "kg2:e0"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 4u);  // ids keep counting across reopen
  auto records = (*journal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);
}

TEST(DeltaJournalTest, ReadAfterSkipsWatermarkedRecords) {
  const std::string dir = TempDir();
  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1,
                                       StrFormat("kg1:e%d", i)))
                    .ok());
  }
  auto records = (*journal)->ReadAfter(3);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id, 4u);
  EXPECT_EQ((*records)[1].id, 5u);
  records = (*journal)->ReadAfter(5);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(DeltaJournalTest, RotatesSegmentsAndReplaysAcrossThem) {
  const std::string dir = TempDir();
  DeltaJournal::Options options;
  options.max_segment_bytes = 128;  // force rotation every couple of records
  auto journal = DeltaJournal::Open(dir, options);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1,
                                       StrFormat("kg1:entity-%d", i)))
                    .ok());
  }
  EXPECT_GT((*journal)->SegmentSeqs().size(), 2u);

  // Reopen and replay across every segment.
  journal = DeltaJournal::Open(dir, options);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->last_record_id(), 20u);
  auto records = (*journal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 20u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].id, i + 1);
  }
}

TEST(DeltaJournalTest, TornTailIsTruncatedOnOpen) {
  const std::string dir = TempDir();
  uint64_t tail_seq = 0;
  {
    auto journal = DeltaJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1,
                                         StrFormat("kg1:e%d", i)))
                      .ok());
    }
    tail_seq = (*journal)->SegmentSeqs().back();
  }
  // Simulate a crash mid-append: a frame header promising more payload
  // than is on disk.
  const std::string tail = SegPath(dir, tail_seq);
  const off_t clean_size = FileSize(tail);
  std::string torn;
  const uint32_t fake_len = 1000;
  torn.append(reinterpret_cast<const char*>(&fake_len), 4);
  torn.append("\x01\x02\x03", 3);  // partial crc + nothing else
  AppendBytes(tail, torn);

  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ((*journal)->last_record_id(), 4u);  // committed records survive
  EXPECT_EQ(FileSize(tail), clean_size);        // tail physically repaired
  auto records = (*journal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);
}

TEST(DeltaJournalTest, CorruptTailRecordIsDroppedByTruncation) {
  const std::string dir = TempDir();
  uint64_t tail_seq = 0;
  off_t size_before_last = 0;
  {
    auto journal = DeltaJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1, "kg1:a")).ok());
    tail_seq = (*journal)->SegmentSeqs().back();
    size_before_last = FileSize(SegPath(dir, tail_seq));
    ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1, "kg1:b")).ok());
  }
  // Flip one payload byte of the LAST record: its CRC no longer matches,
  // so Open must truncate back to the first record.
  const std::string tail = SegPath(dir, tail_seq);
  {
    std::fstream f(tail, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(size_before_last + 9);  // past the 8-byte frame header
    char byte = 0;
    f.seekg(size_before_last + 9);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(size_before_last + 9);
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
  }
  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  auto records = (*journal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].uri, "kg1:a");
  EXPECT_EQ(FileSize(tail), size_before_last);
}

TEST(DeltaJournalTest, TornHeaderNewestSegmentIsDeleted) {
  const std::string dir = TempDir();
  {
    auto journal = DeltaJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1, "kg1:a")).ok());
  }
  // Simulate a crash mid-rotation: a newer segment whose 20-byte header is
  // incomplete.
  const std::string torn_seg = SegPath(dir, 2);
  AppendBytes(torn_seg, "CEAFFWAL\x01");  // 9 of 20 header bytes

  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_NE(::access(torn_seg.c_str(), F_OK), 0) << "torn segment not deleted";
  EXPECT_EQ((*journal)->last_record_id(), 1u);
}

TEST(DeltaJournalTest, CorruptMiddleSegmentIsDataLoss) {
  const std::string dir = TempDir();
  DeltaJournal::Options options;
  options.max_segment_bytes = 64;  // every record rotates
  uint64_t first_seq = 0;
  {
    auto journal = DeltaJournal::Open(dir, options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1,
                                         StrFormat("kg1:e%d", i)))
                      .ok());
    }
    ASSERT_GT((*journal)->SegmentSeqs().size(), 2u);
    first_seq = (*journal)->SegmentSeqs().front();
  }
  // Corrupting history (not the tail) is NOT repairable by truncation.
  const std::string first = SegPath(dir, first_seq);
  const off_t size = FileSize(first);
  ASSERT_EQ(::truncate(first.c_str(), size - 3), 0);

  auto journal = DeltaJournal::Open(dir, options);
  ASSERT_FALSE(journal.ok());
  EXPECT_TRUE(journal.status().IsDataLoss()) << journal.status().ToString();
}

TEST(DeltaJournalTest, DuplicateIdAfterManualSurgeryFirstWins) {
  const std::string dir = TempDir();
  uint64_t tail_seq = 0;
  std::string dup_frame;
  {
    auto journal = DeltaJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Rec(PatchOp::kAddEntity, 1, "kg1:a")).ok());
    tail_seq = (*journal)->SegmentSeqs().back();
    // Hand-craft a committed frame reusing id 1 with different content —
    // the kind of state manual journal splicing can produce.
    PatchRecord dup = Rec(PatchOp::kRenameEntity, 1, "kg1:a");
    dup.id = 1;
    const std::string payload = EncodePatchPayload(dup);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t crc = Crc32Of(payload.data(), payload.size());
    dup_frame.append(reinterpret_cast<const char*>(&len), 4);
    dup_frame.append(reinterpret_cast<const char*>(&crc), 4);
    dup_frame.append(payload);
  }
  AppendBytes(SegPath(dir, tail_seq), dup_frame);

  auto journal = DeltaJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  auto records = (*journal)->ReadAfter(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].op, PatchOp::kAddEntity);  // the FIRST id-1 record
}

TEST(DeltaPatchTest, TextRoundTrip) {
  const std::string text =
      "# comment\n"
      "add_entity\t1\thttp://a/e1\tEntity One\n"
      "\n"
      "add_triple\t2\thttp://b/e1\thttp://b/r\thttp://b/e2\n"
      "remove_triple\t2\thttp://b/e1\thttp://b/r\thttp://b/e2\n"
      "rename_entity\t1\thttp://a/e1\tNew Name\n"
      "serve_entity\t1\thttp://a/e1\n";
  auto records = ParsePatchText(text);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].op, PatchOp::kAddEntity);
  EXPECT_EQ((*records)[0].name, "Entity One");
  EXPECT_EQ((*records)[1].op, PatchOp::kAddTriple);
  EXPECT_EQ((*records)[4].op, PatchOp::kServeEntity);
  for (const PatchRecord& r : *records) {
    auto reparsed = ParsePatchText(PatchToText(r));
    ASSERT_TRUE(reparsed.ok());
    ASSERT_EQ(reparsed->size(), 1u);
    EXPECT_EQ((*reparsed)[0], r);
  }
  // Binary payload round trip too.
  for (PatchRecord r : *records) {
    r.id = 42;
    auto decoded = DecodePatchPayload(EncodePatchPayload(r));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, r);
  }
}

TEST(DeltaPatchTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParsePatchText("add_entity\t3\turi\n").ok());  // bad kg
  EXPECT_FALSE(ParsePatchText("frobnicate\t1\turi\n").ok());  // bad op
  EXPECT_FALSE(ParsePatchText("add_triple\t1\th\tr\n").ok());  // missing tail
}

}  // namespace
}  // namespace ceaff::delta
