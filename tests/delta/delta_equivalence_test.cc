// Delta bounded-repair equivalence: on random small KGs and random patch
// batches, ApplyPatchesToState must produce a state BIT-IDENTICAL to the
// from-scratch oracle (patch the graphs, then recompute everything
// exhaustively under the frozen model). Also covers the full on-disk
// cycle: journal → ApplyDelta → generational publish, empty-batch no-op,
// and the quarantine / RebuildDelta fallback.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/delta/delta_apply.h"
#include "ceaff/delta/delta_journal.h"
#include "ceaff/delta/delta_patch.h"
#include "ceaff/delta/delta_repair.h"
#include "ceaff/delta/delta_state.h"
#include "ceaff/delta/delta_verify.h"
#include "ceaff/la/kernels.h"

namespace ceaff::delta {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/ceaff_delta_eq_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

struct StateConfig {
  bool use_structural = true;
  bool use_semantic = true;
  bool use_string = true;
  uint8_t string_metric = 0;  // 0 = exact Levenshtein, 1 = trigram Dice
};

/// A random baseline "export": two small graphs, a serving split, frozen
/// inputs, with every derived field filled by the exhaustive oracle — the
/// same frozen-model state a real `ceaff align --export_delta_state` run
/// would publish.
DeltaState MakeBaseState(uint64_t seed, const StateConfig& config,
                         const la::KernelContext& ctx) {
  Rng rng(seed);
  DeltaState s;
  s.dataset = "delta-eq-test";
  s.semantic_dim = 8;
  s.semantic_seed = 17;
  s.gcn_dim = 8;
  s.gcn_seed = 2020;
  s.use_structural = config.use_structural;
  s.use_semantic = config.use_semantic;
  s.use_string = config.use_string;
  s.string_metric = config.string_metric;
  const int enabled = (config.use_structural ? 1 : 0) +
                      (config.use_semantic ? 1 : 0) +
                      (config.use_string ? 1 : 0);
  s.two_stage = enabled == 3;
  if (s.two_stage) {
    s.textual_weights = {0.45, 0.55};
    s.final_weights = {0.6, 0.4};
  } else if (enabled == 2) {
    s.final_weights = {0.35, 0.65};
  } else {
    s.final_weights = {1.0};
  }

  for (int g = 1; g <= 2; ++g) {
    kg::KnowledgeGraph& kg = g == 1 ? s.kg1 : s.kg2;
    const size_t n = 12 + rng.NextBounded(6);
    for (size_t e = 0; e < n; ++e) {
      // Cross-graph name overlap so the string/semantic features carry
      // real signal.
      kg.AddEntity(StrFormat("kg%d:e%zu", g, e),
                   StrFormat("entity %zu variant %d", e, g));
    }
    const size_t triples = 2 * n;
    for (size_t t = 0; t < triples; ++t) {
      kg.AddTriple(StrFormat("kg%d:e%llu", g,
                             (unsigned long long)rng.NextBounded(n)),
                   StrFormat("kg%d:r%llu", g,
                             (unsigned long long)rng.NextBounded(3)),
                   StrFormat("kg%d:e%llu", g,
                             (unsigned long long)rng.NextBounded(n)));
    }
  }
  // Serving split: a prefix subset of each side, shuffled.
  for (uint32_t e = 0; e < 9; ++e) s.source_ids.push_back(e);
  for (uint32_t e = 0; e < 10; ++e) s.target_ids.push_back(e);
  rng.Shuffle(&s.source_ids);
  rng.Shuffle(&s.target_ids);

  if (config.use_structural) {
    s.x1 = ExtendInputFeatures(la::Matrix(0, s.gcn_dim), s.kg1, s.gcn_seed);
    s.x2 = ExtendInputFeatures(la::Matrix(0, s.gcn_dim), s.kg2, s.gcn_seed);
  }
  if (config.use_semantic) {
    s.src_name_emb = RepairNameEmbeddings(la::Matrix(), 0, s.source_ids,
                                          s.kg1, {}, s.semantic_dim,
                                          s.semantic_seed);
    s.tgt_name_emb = RepairNameEmbeddings(la::Matrix(), 0, s.target_ids,
                                          s.kg2, {}, s.semantic_dim,
                                          s.semantic_seed);
  }
  Status st = RecomputeStateExhaustive(&s, ctx);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

/// A random valid patch batch touching every op kind, tracked against an
/// in-memory mirror so references always resolve.
std::vector<PatchRecord> MakeRandomBatch(const DeltaState& s, Rng* rng,
                                         size_t max_records = 12) {
  struct Mirror {
    std::vector<std::string> uris;
    std::vector<std::array<std::string, 3>> triples;
    std::set<std::string> serving;
  };
  Mirror m[2];
  for (int g = 0; g < 2; ++g) {
    const kg::KnowledgeGraph& kg = g == 0 ? s.kg1 : s.kg2;
    for (size_t e = 0; e < kg.num_entities(); ++e) {
      m[g].uris.push_back(kg.entity_uri(static_cast<uint32_t>(e)));
    }
    for (const auto& t : kg.triples()) {
      m[g].triples.push_back({kg.entity_uri(t.head),
                              kg.relation_uri(t.relation),
                              kg.entity_uri(t.tail)});
    }
    const auto& serving = g == 0 ? s.source_ids : s.target_ids;
    for (uint32_t id : serving) m[g].serving.insert(kg.entity_uri(id));
  }

  std::vector<PatchRecord> batch;
  const size_t count = 4 + rng->NextBounded(max_records - 3);
  int fresh = 0;
  for (size_t i = 0; i < count; ++i) {
    PatchRecord r;
    const int g = static_cast<int>(rng->NextBounded(2));
    r.kg = static_cast<uint8_t>(g + 1);
    switch (rng->NextBounded(6)) {
      case 0: {  // add_entity
        r.op = PatchOp::kAddEntity;
        r.uri = StrFormat("kg%d:new%d", g + 1, fresh++);
        r.name = StrFormat("fresh entity %d side %d", fresh, g + 1);
        m[g].uris.push_back(r.uri);
        break;
      }
      case 1: {  // add_triple (relation may be new — it gets interned)
        r.op = PatchOp::kAddTriple;
        r.head = m[g].uris[rng->NextBounded(m[g].uris.size())];
        r.tail = m[g].uris[rng->NextBounded(m[g].uris.size())];
        r.rel = StrFormat("kg%d:r%llu", g + 1,
                          (unsigned long long)rng->NextBounded(5));
        m[g].triples.push_back({r.head, r.rel, r.tail});
        break;
      }
      case 2: {  // remove_triple
        if (m[g].triples.empty()) {
          --i;
          continue;
        }
        r.op = PatchOp::kRemoveTriple;
        const size_t k = rng->NextBounded(m[g].triples.size());
        r.head = m[g].triples[k][0];
        r.rel = m[g].triples[k][1];
        r.tail = m[g].triples[k][2];
        m[g].triples.erase(m[g].triples.begin() +
                           static_cast<ptrdiff_t>(k));
        break;
      }
      case 3: {  // rename_entity
        r.op = PatchOp::kRenameEntity;
        r.uri = m[g].uris[rng->NextBounded(m[g].uris.size())];
        r.name = StrFormat("renamed %llu",
                           (unsigned long long)rng->NextBounded(100));
        break;
      }
      default: {  // serve_entity (weighted up: the most interesting op)
        std::vector<std::string> candidates;
        for (const std::string& uri : m[g].uris) {
          if (m[g].serving.count(uri) == 0) candidates.push_back(uri);
        }
        if (candidates.empty()) {
          --i;
          continue;
        }
        r.op = PatchOp::kServeEntity;
        r.uri = candidates[rng->NextBounded(candidates.size())];
        m[g].serving.insert(r.uri);
        break;
      }
    }
    r.id = s.watermark + batch.size() + 1;
    batch.push_back(r);
  }
  return batch;
}

/// The from-scratch reference: patch the graph layer exactly like the
/// rebuild path, then recompute every derived quantity exhaustively.
DeltaState Oracle(const DeltaState& old_state,
                  const std::vector<PatchRecord>& records,
                  const la::KernelContext& ctx) {
  DeltaState s = old_state;
  auto patched = ApplyGraphPatches(old_state, records);
  EXPECT_TRUE(patched.ok()) << patched.status().ToString();
  const size_t old_sr = old_state.source_ids.size();
  const size_t old_tc = old_state.target_ids.size();
  s.kg1 = std::move(patched->kg1);
  s.kg2 = std::move(patched->kg2);
  s.source_ids = std::move(patched->source_ids);
  s.target_ids = std::move(patched->target_ids);
  s.watermark = records.empty() ? old_state.watermark : records.back().id;
  if (s.use_structural) {
    s.x1 = ExtendInputFeatures(old_state.x1, s.kg1, s.gcn_seed);
    s.x2 = ExtendInputFeatures(old_state.x2, s.kg2, s.gcn_seed);
  }
  if (s.use_semantic) {
    s.src_name_emb =
        RepairNameEmbeddings(old_state.src_name_emb, old_sr, s.source_ids,
                             s.kg1, patched->renamed1, s.semantic_dim,
                             s.semantic_seed);
    s.tgt_name_emb =
        RepairNameEmbeddings(old_state.tgt_name_emb, old_tc, s.target_ids,
                             s.kg2, patched->renamed2, s.semantic_dim,
                             s.semantic_seed);
  }
  Status st = RecomputeStateExhaustive(&s, ctx);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

void ExpectBitIdentical(const DeltaState& repaired, const DeltaState& oracle,
                        const std::string& what) {
  const std::string a = SerializeDeltaState(repaired);
  const std::string b = SerializeDeltaState(oracle);
  EXPECT_EQ(a.size(), b.size()) << what;
  EXPECT_TRUE(a == b) << what
                      << ": repaired state diverges from from-scratch oracle";
}

class DeltaEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Clear(); }
  la::KernelContext ctx_;
};

TEST_F(DeltaEquivalenceTest, RandomBatchesMatchOracleBitwise) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    StateConfig config;
    config.string_metric = seed % 2;  // alternate lev* / trigram Dice
    const DeltaState base = MakeBaseState(seed * 1000, config, ctx_);
    Rng rng(seed * 7 + 3);
    const std::vector<PatchRecord> batch = MakeRandomBatch(base, &rng);
    auto outcome = ApplyPatchesToState(base, batch, ctx_);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const DeltaState oracle = Oracle(base, batch, ctx_);
    ExpectBitIdentical(outcome->state, oracle,
                       StrFormat("seed %llu", (unsigned long long)seed));
    // The repaired state must also clear its own verification gate.
    VerifyOptions verify;
    verify.audit_rows = 4;
    Status gate =
        VerifyDeltaState(outcome->state, outcome->dirty_rows, verify, ctx_);
    EXPECT_TRUE(gate.ok()) << gate.ToString();
    if (::testing::Test::HasFailure()) return;  // one seed is enough detail
  }
}

TEST_F(DeltaEquivalenceTest, SingleFeatureConfigsMatchOracle) {
  const StateConfig configs[] = {
      {true, false, false, 0},   // structural only
      {false, true, false, 0},   // semantic only
      {false, false, true, 1},   // string only (trigram)
      {true, false, true, 0},    // structural + string, flat fusion
  };
  uint64_t seed = 100;
  for (const StateConfig& config : configs) {
    const DeltaState base = MakeBaseState(++seed, config, ctx_);
    Rng rng(seed * 13);
    const std::vector<PatchRecord> batch = MakeRandomBatch(base, &rng, 8);
    auto outcome = ApplyPatchesToState(base, batch, ctx_);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const DeltaState oracle = Oracle(base, batch, ctx_);
    ExpectBitIdentical(outcome->state, oracle,
                       StrFormat("config %d%d%d", config.use_structural,
                                 config.use_semantic, config.use_string));
    if (::testing::Test::HasFailure()) return;
  }
}

TEST_F(DeltaEquivalenceTest, EmptyBatchIsIdentity) {
  const DeltaState base = MakeBaseState(5, StateConfig(), ctx_);
  auto outcome = ApplyPatchesToState(base, {}, ctx_);
  ASSERT_TRUE(outcome.ok());
  ExpectBitIdentical(outcome->state, base, "empty batch");
  EXPECT_EQ(outcome->stats.records_applied, 0u);
}

TEST_F(DeltaEquivalenceTest, RenameThenRenameBackIsClean) {
  const DeltaState base = MakeBaseState(9, StateConfig(), ctx_);
  const uint32_t victim = base.source_ids[0];
  PatchRecord fwd;
  fwd.op = PatchOp::kRenameEntity;
  fwd.kg = 1;
  fwd.uri = base.kg1.entity_uri(victim);
  fwd.name = "temporarily elsewhere";
  fwd.id = 1;
  PatchRecord back = fwd;
  back.name = base.kg1.entity_name(victim);
  back.id = 2;
  auto outcome = ApplyPatchesToState(base, {fwd, back}, ctx_);
  ASSERT_TRUE(outcome.ok());
  // Net rename set is empty, so nothing downstream of names is dirty.
  EXPECT_EQ(outcome->stats.entities_renamed, 0u);
  DeltaState expect = base;
  expect.watermark = 2;
  ExpectBitIdentical(outcome->state, expect, "rename round trip");
}

TEST_F(DeltaEquivalenceTest, BadBatchIsRejectedWhole) {
  const DeltaState base = MakeBaseState(11, StateConfig(), ctx_);
  PatchRecord good;
  good.op = PatchOp::kAddEntity;
  good.kg = 1;
  good.uri = "kg1:brand-new";
  good.id = 1;
  PatchRecord bad;  // adding an entity that already exists
  bad.op = PatchOp::kAddEntity;
  bad.kg = 1;
  bad.uri = base.kg1.entity_uri(0);
  bad.id = 2;
  auto outcome = ApplyPatchesToState(base, {good, bad}, ctx_);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsInvalidArgument())
      << outcome.status().ToString();
}

// ---------------------------------------------------------------------------
// Full on-disk cycle: journal → ApplyDelta → generational publish.

struct DiskFixture {
  std::string root, journal_dir, state_dir, index_dir;
  DeltaApplyOptions options;

  void Init(const DeltaState& base) {
    root = TempDir();
    journal_dir = root + "/wal";
    state_dir = root + "/state";
    index_dir = root + "/index";
    options.journal_dir = journal_dir;
    options.state_dir = state_dir;
    options.index_dir = index_dir;
    options.verify.audit_rows = 4;
    options.export_ann = false;  // tiny split; keep the cycle fast
    auto store = OpenDeltaStateStore(state_dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(SaveDeltaState(base, store->get()).ok());
    auto index = BuildIndexFromState(base, false, 0);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    ASSERT_TRUE(
        serve::SaveAlignmentIndexGenerational(*index, index_dir).ok());
  }

  void Append(const std::vector<PatchRecord>& batch) {
    auto journal = DeltaJournal::Open(journal_dir);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (const PatchRecord& r : batch) {
      ASSERT_TRUE((*journal)->Append(r).ok());
    }
  }
};

TEST_F(DeltaEquivalenceTest, OnDiskCycleMatchesOracleAndRepublishes) {
  const DeltaState base = MakeBaseState(21, StateConfig(), ctx_);
  DiskFixture fx;
  fx.Init(base);
  if (::testing::Test::HasFatalFailure()) return;
  Rng rng(77);
  const std::vector<PatchRecord> batch = MakeRandomBatch(base, &rng);
  fx.Append(batch);

  auto report = ApplyDelta(fx.options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->no_op);
  EXPECT_EQ(report->watermark_before, 0u);
  EXPECT_EQ(report->watermark_after, batch.back().id);
  EXPECT_GT(report->published_index_generation, 0u);

  auto store = OpenDeltaStateStore(fx.state_dir);
  ASSERT_TRUE(store.ok());
  auto loaded = LoadDeltaState(store->get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const DeltaState oracle = Oracle(base, batch, ctx_);
  ExpectBitIdentical(*loaded, oracle, "on-disk cycle");

  // The republished index must load and reflect the patched serving split.
  auto index = serve::LoadAlignmentIndex(fx.index_dir);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->source_names.size(), oracle.source_ids.size());
  EXPECT_EQ(index->target_names.size(), oracle.target_ids.size());

  // A second ApplyDelta over the same journal is a no-op: same watermark,
  // NO new generation published.
  auto state_gen = store->get()->CurrentGeneration("state");
  ASSERT_TRUE(state_gen.ok());
  auto index_gen = serve::AlignmentIndexDirGeneration(fx.index_dir);
  ASSERT_TRUE(index_gen.ok());
  auto again = ApplyDelta(fx.options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->no_op);
  auto state_gen2 = store->get()->CurrentGeneration("state");
  ASSERT_TRUE(state_gen2.ok());
  EXPECT_EQ(*state_gen2, *state_gen) << "no-op published a state generation";
  auto index_gen2 = serve::AlignmentIndexDirGeneration(fx.index_dir);
  ASSERT_TRUE(index_gen2.ok());
  EXPECT_EQ(*index_gen2, *index_gen) << "no-op published an index generation";
}

TEST_F(DeltaEquivalenceTest, GateFailureQuarantinesAndRebuildRecovers) {
  const DeltaState base = MakeBaseState(31, StateConfig(), ctx_);
  DiskFixture fx;
  fx.Init(base);
  if (::testing::Test::HasFatalFailure()) return;
  Rng rng(55);
  const std::vector<PatchRecord> batch = MakeRandomBatch(base, &rng, 6);
  fx.Append(batch);
  auto store = OpenDeltaStateStore(fx.state_dir);
  ASSERT_TRUE(store.ok());
  auto gen_before = store->get()->CurrentGeneration("state");
  ASSERT_TRUE(gen_before.ok());

  // Force a gate verdict: the batch is quarantined, the old generation
  // keeps serving.
  ASSERT_TRUE(failpoint::Configure("delta.verify.force_fail=error").ok());
  auto report = ApplyDelta(fx.options);
  failpoint::Clear();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsDataLoss()) << report.status().ToString();
  EXPECT_TRUE(IsQuarantined(fx.journal_dir));
  auto gen_after = store->get()->CurrentGeneration("state");
  ASSERT_TRUE(gen_after.ok());
  EXPECT_EQ(*gen_after, *gen_before) << "quarantined batch was published";

  // While quarantined, ApplyDelta refuses outright.
  auto refused = ApplyDelta(fx.options);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition())
      << refused.status().ToString();

  // RebuildDelta replays the journal exhaustively, clears the marker, and
  // publishes a state identical to the oracle.
  auto rebuilt = RebuildDelta(fx.options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(rebuilt->rebuilt);
  EXPECT_FALSE(IsQuarantined(fx.journal_dir));
  // Reopen: a store handle's manifest is loaded at Init and does not see
  // generations published through another instance.
  store = OpenDeltaStateStore(fx.state_dir);
  ASSERT_TRUE(store.ok());
  auto loaded = LoadDeltaState(store->get());
  ASSERT_TRUE(loaded.ok());
  ExpectBitIdentical(*loaded, Oracle(base, batch, ctx_), "rebuild");

  // And the journal is usable again: a follow-up batch applies normally.
  Rng rng2(56);
  const std::vector<PatchRecord> more = MakeRandomBatch(*loaded, &rng2, 5);
  std::vector<PatchRecord> renumbered = more;
  fx.Append(renumbered);
  auto follow = ApplyDelta(fx.options);
  ASSERT_TRUE(follow.ok()) << follow.status().ToString();
  EXPECT_FALSE(follow->no_op);
}

TEST_F(DeltaEquivalenceTest, VerifyGateCatchesTamperedState) {
  const DeltaState base = MakeBaseState(41, StateConfig(), ctx_);
  DeltaState tampered = base;
  // Corrupt one fused cell: the sampled divergence audit (which always
  // includes dirty rows) must flag it.
  ASSERT_GT(tampered.fused.rows(), 0u);
  tampered.fused.at(0, 0) += 0.25f;
  VerifyOptions verify;
  verify.audit_rows = static_cast<size_t>(tampered.fused.rows());
  Status st = VerifyDeltaState(tampered, {0}, verify, ctx_);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();

  // Broken weights fail the cheap structural checks.
  DeltaState bad_weights = base;
  bad_weights.final_weights = {0.9, 0.9};
  st = VerifyDeltaState(bad_weights, {}, verify, ctx_);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsDataLoss());
}

TEST_F(DeltaEquivalenceTest, StateSerializationRoundTripsAndDetectsRot) {
  const DeltaState base = MakeBaseState(51, StateConfig(), ctx_);
  std::string bytes = SerializeDeltaState(base);
  ASSERT_TRUE(ValidateDeltaStateBytes(bytes).ok());
  auto parsed = ParseDeltaState(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectBitIdentical(*parsed, base, "serialize round trip");
  bytes[bytes.size() / 2] ^= 0x10;
  EXPECT_FALSE(ValidateDeltaStateBytes(bytes).ok());
  EXPECT_FALSE(ParseDeltaState(bytes).ok());
}

}  // namespace
}  // namespace ceaff::delta
