// Kill-at-every-site crash drills for the delta ingestion path: SIGKILL
// (via the failpoint `crash` action) at every instrumented durability step
// of journal append and apply/publish must leave either the old generation
// or the fully-published new one serving — never a torn state — and a
// replay after recovery must converge to the same final state.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/string_util.h"
#include "ceaff/delta/delta_apply.h"
#include "ceaff/delta/delta_journal.h"
#include "ceaff/delta/delta_patch.h"
#include "ceaff/delta/delta_repair.h"
#include "ceaff/delta/delta_state.h"
#include "ceaff/la/kernels.h"
#include "ceaff/serve/alignment_index.h"
#include "testing/crash_harness.h"

namespace ceaff::delta {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/ceaff_delta_crash_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// Small deterministic baseline state (all three features, two-stage
/// fusion) with every derived field from the exhaustive oracle.
DeltaState MakeState(const la::KernelContext& ctx) {
  DeltaState s;
  s.dataset = "delta-crash";
  s.semantic_dim = 6;
  s.semantic_seed = 17;
  s.gcn_dim = 6;
  s.gcn_seed = 2020;
  s.two_stage = true;
  s.textual_weights = {0.5, 0.5};
  s.final_weights = {0.6, 0.4};
  for (int g = 1; g <= 2; ++g) {
    kg::KnowledgeGraph& kg = g == 1 ? s.kg1 : s.kg2;
    for (int e = 0; e < 8; ++e) {
      kg.AddEntity(StrFormat("kg%d:e%d", g, e),
                   StrFormat("entity %d flavour %d", e, g));
    }
    for (int e = 0; e < 8; ++e) {
      kg.AddTriple(StrFormat("kg%d:e%d", g, e), StrFormat("kg%d:r0", g),
                   StrFormat("kg%d:e%d", g, (e + 1) % 8));
      kg.AddTriple(StrFormat("kg%d:e%d", g, e), StrFormat("kg%d:r1", g),
                   StrFormat("kg%d:e%d", g, (e + 3) % 8));
    }
  }
  s.source_ids = {0, 1, 2, 3, 4, 5};
  s.target_ids = {0, 1, 2, 3, 4, 5, 6};
  s.x1 = ExtendInputFeatures(la::Matrix(0, s.gcn_dim), s.kg1, s.gcn_seed);
  s.x2 = ExtendInputFeatures(la::Matrix(0, s.gcn_dim), s.kg2, s.gcn_seed);
  s.src_name_emb = RepairNameEmbeddings(la::Matrix(), 0, s.source_ids, s.kg1,
                                        {}, s.semantic_dim, s.semantic_seed);
  s.tgt_name_emb = RepairNameEmbeddings(la::Matrix(), 0, s.target_ids, s.kg2,
                                        {}, s.semantic_dim, s.semantic_seed);
  Status st = RecomputeStateExhaustive(&s, ctx);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

/// One batch exercising every patch op.
std::vector<PatchRecord> MakeBatch() {
  auto records = ParsePatchText(
      "add_entity\t1\tkg1:new0\tnewcomer zero\n"
      "add_triple\t1\tkg1:new0\tkg1:r0\tkg1:e2\n"
      "remove_triple\t2\tkg2:e0\tkg2:r0\tkg2:e1\n"
      "rename_entity\t2\tkg2:e3\tentity three renamed\n"
      "serve_entity\t1\tkg1:new0\n"
      "serve_entity\t2\tkg2:e7\n");
  EXPECT_TRUE(records.ok());
  return *records;
}

/// The rebuild-path reference over the same batch.
DeltaState Oracle(const DeltaState& base,
                  const std::vector<PatchRecord>& records, uint64_t watermark,
                  const la::KernelContext& ctx) {
  DeltaState s = base;
  auto patched = ApplyGraphPatches(base, records);
  EXPECT_TRUE(patched.ok()) << patched.status().ToString();
  const size_t old_sr = base.source_ids.size();
  const size_t old_tc = base.target_ids.size();
  s.kg1 = std::move(patched->kg1);
  s.kg2 = std::move(patched->kg2);
  s.source_ids = std::move(patched->source_ids);
  s.target_ids = std::move(patched->target_ids);
  s.watermark = watermark;
  s.x1 = ExtendInputFeatures(base.x1, s.kg1, s.gcn_seed);
  s.x2 = ExtendInputFeatures(base.x2, s.kg2, s.gcn_seed);
  s.src_name_emb =
      RepairNameEmbeddings(base.src_name_emb, old_sr, s.source_ids, s.kg1,
                           patched->renamed1, s.semantic_dim, s.semantic_seed);
  s.tgt_name_emb =
      RepairNameEmbeddings(base.tgt_name_emb, old_tc, s.target_ids, s.kg2,
                           patched->renamed2, s.semantic_dim, s.semantic_seed);
  Status st = RecomputeStateExhaustive(&s, ctx);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return s;
}

/// SIGKILL at every site of the apply/verify/publish path: afterwards the
/// state store must serve either the old or the fully-new generation, the
/// crash must not quarantine, and a replay must converge to the oracle.
TEST(DeltaCrashTest, ApplyDeltaSurvivesKillAtEverySite) {
  la::KernelContext ctx;
  const DeltaState base = MakeState(ctx);
  const std::vector<PatchRecord> batch = MakeBatch();
  const DeltaState oracle =
      Oracle(base, batch, static_cast<uint64_t>(batch.size()), ctx);
  const std::string oracle_bytes = SerializeDeltaState(oracle);

  std::string root;
  DeltaApplyOptions options;
  options.verify.audit_rows = 2;
  options.export_ann = false;

  const auto prepare = [&] {
    root = TempDir();
    options.journal_dir = root + "/wal";
    options.state_dir = root + "/state";
    options.index_dir = root + "/index";
    auto store = OpenDeltaStateStore(options.state_dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(SaveDeltaState(base, store->get()).ok());
    auto index = BuildIndexFromState(base, false, 0);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    ASSERT_TRUE(
        serve::SaveAlignmentIndexGenerational(*index, options.index_dir)
            .ok());
    auto journal = DeltaJournal::Open(options.journal_dir);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (const PatchRecord& r : batch) {
      ASSERT_TRUE((*journal)->Append(r).ok());
    }
  };

  const auto operation = [&]() -> Status {
    auto report = ApplyDelta(options);
    return report.status();
  };

  const auto verify = [&](const std::string& site, bool crashed) {
    SCOPED_TRACE("site " + site + (crashed ? " (crashed)" : " (completed)"));
    // A crash is not a bad batch: it must never quarantine.
    EXPECT_FALSE(IsQuarantined(options.journal_dir));

    // Old-or-new invariant: the store must load a valid state that is
    // either the untouched baseline or the complete new generation.
    auto store = OpenDeltaStateStore(options.state_dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto loaded = LoadDeltaState(store->get());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const bool is_new = loaded->watermark == oracle.watermark;
    EXPECT_TRUE(is_new || loaded->watermark == base.watermark)
        << "torn state: watermark " << loaded->watermark;
    if (is_new) {
      EXPECT_EQ(SerializeDeltaState(*loaded), oracle_bytes)
          << "published state is not the oracle";
    }
    // The serving index must load too (old or new — publish order is
    // index first, so a published state implies a published index).
    auto index = serve::LoadAlignmentIndex(options.index_dir);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    if (is_new) {
      EXPECT_EQ(index->source_names.size(), oracle.source_ids.size());
    } else {
      EXPECT_TRUE(index->source_names.size() == base.source_ids.size() ||
                  index->source_names.size() == oracle.source_ids.size())
          << "torn index";
    }

    // Replay converges: the journal is intact, so a clean ApplyDelta must
    // land exactly on the oracle (idempotently if already published).
    auto report = ApplyDelta(options);
    ASSERT_TRUE(report.ok()) << "replay after crash at " << site << ": "
                             << report.status().ToString();
    // Reopen: a store handle's manifest is loaded at Init and does not
    // see generations published through another instance.
    store = OpenDeltaStateStore(options.state_dir);
    ASSERT_TRUE(store.ok());
    auto replayed = LoadDeltaState(store->get());
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(SerializeDeltaState(*replayed), oracle_bytes)
        << "replay diverged after crash at " << site;
    auto final_index = serve::LoadAlignmentIndex(options.index_dir);
    ASSERT_TRUE(final_index.ok());
    EXPECT_EQ(final_index->source_names.size(), oracle.source_ids.size());
  };

  testing::CrashDrillOptions drill;
  drill.site_prefix = "delta";
  drill.iterations = testing::CrashIterationsFromEnv(2);
  testing::RunCrashDrill(prepare, operation, verify, drill);
}

/// SIGKILL at every journal durability site: reopen must recover a clean
/// prefix of the appended batch and keep assigning ids after it.
TEST(DeltaCrashTest, JournalAppendSurvivesKillAtEverySite) {
  std::string dir;
  DeltaJournal::Options journal_options;
  journal_options.max_segment_bytes = 96;  // cross the rotate site too
  const std::vector<PatchRecord> batch = MakeBatch();

  const auto prepare = [&] { dir = TempDir(); };

  const auto operation = [&]() -> Status {
    auto journal = DeltaJournal::Open(dir, journal_options);
    if (!journal.ok()) return journal.status();
    for (const PatchRecord& r : batch) {
      auto id = (*journal)->Append(r);
      if (!id.ok()) return id.status();
    }
    return Status::OK();
  };

  const auto verify = [&](const std::string& site, bool crashed) {
    SCOPED_TRACE("site " + site + (crashed ? " (crashed)" : " (completed)"));
    auto journal = DeltaJournal::Open(dir, journal_options);
    ASSERT_TRUE(journal.ok())
        << "journal unrecoverable: " << journal.status().ToString();
    auto records = (*journal)->ReadAfter(0);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    // Committed records are a prefix of the batch, in order, with
    // contiguous ids from 1.
    ASSERT_LE(records->size(), batch.size());
    for (size_t i = 0; i < records->size(); ++i) {
      EXPECT_EQ((*records)[i].id, i + 1);
      EXPECT_EQ((*records)[i].op, batch[i].op) << "record " << i;
      EXPECT_EQ((*records)[i].uri, batch[i].uri) << "record " << i;
    }
    EXPECT_GE((*journal)->last_record_id(), records->size());
    // The journal stays writable and ids keep counting.
    auto id = (*journal)->Append(batch[0]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_GT(*id, records->size());
  };

  testing::CrashDrillOptions drill;
  drill.site_prefix = "delta.journal";
  drill.iterations = testing::CrashIterationsFromEnv(2);
  testing::RunCrashDrill(prepare, operation, verify, drill);
}

}  // namespace
}  // namespace ceaff::delta
