# Empty compiler generated dependencies file for ceaff.
# This may be replaced when dependencies are built.
