# Empty dependencies file for ceaff.
# This may be replaced when dependencies are built.
