file(REMOVE_RECURSE
  "CMakeFiles/ceaff.dir/ceaff_cli.cc.o"
  "CMakeFiles/ceaff.dir/ceaff_cli.cc.o.d"
  "ceaff"
  "ceaff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
