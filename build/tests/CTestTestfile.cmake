# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/kg_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
