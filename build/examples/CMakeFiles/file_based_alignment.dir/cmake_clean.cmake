file(REMOVE_RECURSE
  "CMakeFiles/file_based_alignment.dir/file_based_alignment.cpp.o"
  "CMakeFiles/file_based_alignment.dir/file_based_alignment.cpp.o.d"
  "file_based_alignment"
  "file_based_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_based_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
