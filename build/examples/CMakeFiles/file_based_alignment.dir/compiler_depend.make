# Empty compiler generated dependencies file for file_based_alignment.
# This may be replaced when dependencies are built.
