file(REMOVE_RECURSE
  "CMakeFiles/pretrained_embeddings.dir/pretrained_embeddings.cpp.o"
  "CMakeFiles/pretrained_embeddings.dir/pretrained_embeddings.cpp.o.d"
  "pretrained_embeddings"
  "pretrained_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrained_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
