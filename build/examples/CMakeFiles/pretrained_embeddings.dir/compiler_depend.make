# Empty compiler generated dependencies file for pretrained_embeddings.
# This may be replaced when dependencies are built.
