# Empty compiler generated dependencies file for custom_features.
# This may be replaced when dependencies are built.
