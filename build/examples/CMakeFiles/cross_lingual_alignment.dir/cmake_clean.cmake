file(REMOVE_RECURSE
  "CMakeFiles/cross_lingual_alignment.dir/cross_lingual_alignment.cpp.o"
  "CMakeFiles/cross_lingual_alignment.dir/cross_lingual_alignment.cpp.o.d"
  "cross_lingual_alignment"
  "cross_lingual_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_lingual_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
