# Empty compiler generated dependencies file for table4_mono_lingual.
# This may be replaced when dependencies are built.
