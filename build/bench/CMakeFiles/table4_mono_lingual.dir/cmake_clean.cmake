file(REMOVE_RECURSE
  "CMakeFiles/table4_mono_lingual.dir/table4_mono_lingual.cc.o"
  "CMakeFiles/table4_mono_lingual.dir/table4_mono_lingual.cc.o.d"
  "table4_mono_lingual"
  "table4_mono_lingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mono_lingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
