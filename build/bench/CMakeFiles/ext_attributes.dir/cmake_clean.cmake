file(REMOVE_RECURSE
  "CMakeFiles/ext_attributes.dir/ext_attributes.cc.o"
  "CMakeFiles/ext_attributes.dir/ext_attributes.cc.o.d"
  "ext_attributes"
  "ext_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
