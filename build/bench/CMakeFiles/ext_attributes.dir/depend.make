# Empty dependencies file for ext_attributes.
# This may be replaced when dependencies are built.
