file(REMOVE_RECURSE
  "CMakeFiles/sweep_theta.dir/sweep_theta.cc.o"
  "CMakeFiles/sweep_theta.dir/sweep_theta.cc.o.d"
  "sweep_theta"
  "sweep_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
