# Empty dependencies file for sweep_theta.
# This may be replaced when dependencies are built.
