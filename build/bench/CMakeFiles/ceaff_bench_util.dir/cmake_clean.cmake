file(REMOVE_RECURSE
  "CMakeFiles/ceaff_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ceaff_bench_util.dir/bench_util.cc.o.d"
  "libceaff_bench_util.a"
  "libceaff_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
