# Empty dependencies file for ceaff_bench_util.
# This may be replaced when dependencies are built.
