file(REMOVE_RECURSE
  "libceaff_bench_util.a"
)
