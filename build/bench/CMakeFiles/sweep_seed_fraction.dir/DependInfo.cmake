
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sweep_seed_fraction.cc" "bench/CMakeFiles/sweep_seed_fraction.dir/sweep_seed_fraction.cc.o" "gcc" "bench/CMakeFiles/sweep_seed_fraction.dir/sweep_seed_fraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ceaff_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/data/CMakeFiles/ceaff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/baselines/CMakeFiles/ceaff_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/core/CMakeFiles/ceaff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/fusion/CMakeFiles/ceaff_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/embed/CMakeFiles/ceaff_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/eval/CMakeFiles/ceaff_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/matching/CMakeFiles/ceaff_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/kg/CMakeFiles/ceaff_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/text/CMakeFiles/ceaff_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/la/CMakeFiles/ceaff_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/common/CMakeFiles/ceaff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
