file(REMOVE_RECURSE
  "CMakeFiles/sweep_seed_fraction.dir/sweep_seed_fraction.cc.o"
  "CMakeFiles/sweep_seed_fraction.dir/sweep_seed_fraction.cc.o.d"
  "sweep_seed_fraction"
  "sweep_seed_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_seed_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
