# Empty dependencies file for sweep_seed_fraction.
# This may be replaced when dependencies are built.
