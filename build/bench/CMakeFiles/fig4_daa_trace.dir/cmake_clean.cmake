file(REMOVE_RECURSE
  "CMakeFiles/fig4_daa_trace.dir/fig4_daa_trace.cc.o"
  "CMakeFiles/fig4_daa_trace.dir/fig4_daa_trace.cc.o.d"
  "fig4_daa_trace"
  "fig4_daa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_daa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
