# Empty compiler generated dependencies file for fig4_daa_trace.
# This may be replaced when dependencies are built.
