file(REMOVE_RECURSE
  "CMakeFiles/table3_cross_lingual.dir/table3_cross_lingual.cc.o"
  "CMakeFiles/table3_cross_lingual.dir/table3_cross_lingual.cc.o.d"
  "table3_cross_lingual"
  "table3_cross_lingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cross_lingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
