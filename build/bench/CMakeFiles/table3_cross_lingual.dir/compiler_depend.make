# Empty compiler generated dependencies file for table3_cross_lingual.
# This may be replaced when dependencies are built.
