file(REMOVE_RECURSE
  "CMakeFiles/ext_collective_methods.dir/ext_collective_methods.cc.o"
  "CMakeFiles/ext_collective_methods.dir/ext_collective_methods.cc.o.d"
  "ext_collective_methods"
  "ext_collective_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_collective_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
