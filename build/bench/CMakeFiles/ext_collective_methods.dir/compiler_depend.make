# Empty compiler generated dependencies file for ext_collective_methods.
# This may be replaced when dependencies are built.
