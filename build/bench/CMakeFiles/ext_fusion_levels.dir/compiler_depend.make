# Empty compiler generated dependencies file for ext_fusion_levels.
# This may be replaced when dependencies are built.
