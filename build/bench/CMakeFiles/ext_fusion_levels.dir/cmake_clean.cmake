file(REMOVE_RECURSE
  "CMakeFiles/ext_fusion_levels.dir/ext_fusion_levels.cc.o"
  "CMakeFiles/ext_fusion_levels.dir/ext_fusion_levels.cc.o.d"
  "ext_fusion_levels"
  "ext_fusion_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fusion_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
