file(REMOVE_RECURSE
  "CMakeFiles/micro_matching.dir/micro_matching.cc.o"
  "CMakeFiles/micro_matching.dir/micro_matching.cc.o.d"
  "micro_matching"
  "micro_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
