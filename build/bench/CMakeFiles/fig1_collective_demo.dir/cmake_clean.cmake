file(REMOVE_RECURSE
  "CMakeFiles/fig1_collective_demo.dir/fig1_collective_demo.cc.o"
  "CMakeFiles/fig1_collective_demo.dir/fig1_collective_demo.cc.o.d"
  "fig1_collective_demo"
  "fig1_collective_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_collective_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
