# Empty compiler generated dependencies file for fig1_collective_demo.
# This may be replaced when dependencies are built.
