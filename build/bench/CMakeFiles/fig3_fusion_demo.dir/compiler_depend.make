# Empty compiler generated dependencies file for fig3_fusion_demo.
# This may be replaced when dependencies are built.
