file(REMOVE_RECURSE
  "CMakeFiles/fig3_fusion_demo.dir/fig3_fusion_demo.cc.o"
  "CMakeFiles/fig3_fusion_demo.dir/fig3_fusion_demo.cc.o.d"
  "fig3_fusion_demo"
  "fig3_fusion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fusion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
