# Empty dependencies file for table6_ranking.
# This may be replaced when dependencies are built.
