file(REMOVE_RECURSE
  "CMakeFiles/table6_ranking.dir/table6_ranking.cc.o"
  "CMakeFiles/table6_ranking.dir/table6_ranking.cc.o.d"
  "table6_ranking"
  "table6_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
