file(REMOVE_RECURSE
  "CMakeFiles/fig_degree_analysis.dir/fig_degree_analysis.cc.o"
  "CMakeFiles/fig_degree_analysis.dir/fig_degree_analysis.cc.o.d"
  "fig_degree_analysis"
  "fig_degree_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_degree_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
