# Empty compiler generated dependencies file for fig_degree_analysis.
# This may be replaced when dependencies are built.
