file(REMOVE_RECURSE
  "CMakeFiles/variance_check.dir/variance_check.cc.o"
  "CMakeFiles/variance_check.dir/variance_check.cc.o.d"
  "variance_check"
  "variance_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
