# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ceaff/common")
subdirs("ceaff/la")
subdirs("ceaff/kg")
subdirs("ceaff/text")
subdirs("ceaff/embed")
subdirs("ceaff/fusion")
subdirs("ceaff/matching")
subdirs("ceaff/eval")
subdirs("ceaff/data")
subdirs("ceaff/baselines")
subdirs("ceaff/core")
