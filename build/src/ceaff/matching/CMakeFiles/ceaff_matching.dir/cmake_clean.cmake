file(REMOVE_RECURSE
  "CMakeFiles/ceaff_matching.dir/matching.cc.o"
  "CMakeFiles/ceaff_matching.dir/matching.cc.o.d"
  "CMakeFiles/ceaff_matching.dir/sinkhorn.cc.o"
  "CMakeFiles/ceaff_matching.dir/sinkhorn.cc.o.d"
  "libceaff_matching.a"
  "libceaff_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
