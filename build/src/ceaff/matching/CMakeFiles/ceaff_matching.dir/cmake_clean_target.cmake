file(REMOVE_RECURSE
  "libceaff_matching.a"
)
