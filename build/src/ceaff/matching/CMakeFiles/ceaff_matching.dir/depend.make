# Empty dependencies file for ceaff_matching.
# This may be replaced when dependencies are built.
