# Empty dependencies file for ceaff_kg.
# This may be replaced when dependencies are built.
