file(REMOVE_RECURSE
  "CMakeFiles/ceaff_kg.dir/adjacency.cc.o"
  "CMakeFiles/ceaff_kg.dir/adjacency.cc.o.d"
  "CMakeFiles/ceaff_kg.dir/attribute_similarity.cc.o"
  "CMakeFiles/ceaff_kg.dir/attribute_similarity.cc.o.d"
  "CMakeFiles/ceaff_kg.dir/io.cc.o"
  "CMakeFiles/ceaff_kg.dir/io.cc.o.d"
  "CMakeFiles/ceaff_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/ceaff_kg.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/ceaff_kg.dir/relation_similarity.cc.o"
  "CMakeFiles/ceaff_kg.dir/relation_similarity.cc.o.d"
  "libceaff_kg.a"
  "libceaff_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
