file(REMOVE_RECURSE
  "libceaff_kg.a"
)
