file(REMOVE_RECURSE
  "CMakeFiles/ceaff_core.dir/iterative.cc.o"
  "CMakeFiles/ceaff_core.dir/iterative.cc.o.d"
  "CMakeFiles/ceaff_core.dir/pipeline.cc.o"
  "CMakeFiles/ceaff_core.dir/pipeline.cc.o.d"
  "libceaff_core.a"
  "libceaff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
