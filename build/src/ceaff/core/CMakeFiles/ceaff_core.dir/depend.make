# Empty dependencies file for ceaff_core.
# This may be replaced when dependencies are built.
