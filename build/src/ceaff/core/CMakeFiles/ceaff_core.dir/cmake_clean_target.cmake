file(REMOVE_RECURSE
  "libceaff_core.a"
)
