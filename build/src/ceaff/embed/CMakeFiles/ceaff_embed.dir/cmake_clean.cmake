file(REMOVE_RECURSE
  "CMakeFiles/ceaff_embed.dir/bootstrap.cc.o"
  "CMakeFiles/ceaff_embed.dir/bootstrap.cc.o.d"
  "CMakeFiles/ceaff_embed.dir/gcn.cc.o"
  "CMakeFiles/ceaff_embed.dir/gcn.cc.o.d"
  "CMakeFiles/ceaff_embed.dir/random_walk.cc.o"
  "CMakeFiles/ceaff_embed.dir/random_walk.cc.o.d"
  "CMakeFiles/ceaff_embed.dir/transe.cc.o"
  "CMakeFiles/ceaff_embed.dir/transe.cc.o.d"
  "libceaff_embed.a"
  "libceaff_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
