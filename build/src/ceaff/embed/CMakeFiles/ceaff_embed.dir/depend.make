# Empty dependencies file for ceaff_embed.
# This may be replaced when dependencies are built.
