file(REMOVE_RECURSE
  "libceaff_embed.a"
)
