file(REMOVE_RECURSE
  "libceaff_la.a"
)
