# Empty dependencies file for ceaff_la.
# This may be replaced when dependencies are built.
