
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ceaff/la/csls.cc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/csls.cc.o" "gcc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/csls.cc.o.d"
  "/root/repo/src/ceaff/la/matrix.cc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/matrix.cc.o" "gcc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/matrix.cc.o.d"
  "/root/repo/src/ceaff/la/ops.cc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/ops.cc.o" "gcc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/ops.cc.o.d"
  "/root/repo/src/ceaff/la/sparse_matrix.cc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/sparse_matrix.cc.o" "gcc" "src/ceaff/la/CMakeFiles/ceaff_la.dir/sparse_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ceaff/common/CMakeFiles/ceaff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
