file(REMOVE_RECURSE
  "CMakeFiles/ceaff_la.dir/csls.cc.o"
  "CMakeFiles/ceaff_la.dir/csls.cc.o.d"
  "CMakeFiles/ceaff_la.dir/matrix.cc.o"
  "CMakeFiles/ceaff_la.dir/matrix.cc.o.d"
  "CMakeFiles/ceaff_la.dir/ops.cc.o"
  "CMakeFiles/ceaff_la.dir/ops.cc.o.d"
  "CMakeFiles/ceaff_la.dir/sparse_matrix.cc.o"
  "CMakeFiles/ceaff_la.dir/sparse_matrix.cc.o.d"
  "libceaff_la.a"
  "libceaff_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
