# Empty dependencies file for ceaff_text.
# This may be replaced when dependencies are built.
