
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ceaff/text/embedding_io.cc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/embedding_io.cc.o" "gcc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/embedding_io.cc.o.d"
  "/root/repo/src/ceaff/text/levenshtein.cc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/levenshtein.cc.o" "gcc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/levenshtein.cc.o.d"
  "/root/repo/src/ceaff/text/name_embedding.cc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/name_embedding.cc.o" "gcc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/name_embedding.cc.o.d"
  "/root/repo/src/ceaff/text/ngram_similarity.cc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/ngram_similarity.cc.o" "gcc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/ngram_similarity.cc.o.d"
  "/root/repo/src/ceaff/text/tokenizer.cc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/tokenizer.cc.o" "gcc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/ceaff/text/word_embedding.cc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/word_embedding.cc.o" "gcc" "src/ceaff/text/CMakeFiles/ceaff_text.dir/word_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ceaff/common/CMakeFiles/ceaff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/la/CMakeFiles/ceaff_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
