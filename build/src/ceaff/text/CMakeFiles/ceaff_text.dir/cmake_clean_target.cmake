file(REMOVE_RECURSE
  "libceaff_text.a"
)
