file(REMOVE_RECURSE
  "CMakeFiles/ceaff_text.dir/embedding_io.cc.o"
  "CMakeFiles/ceaff_text.dir/embedding_io.cc.o.d"
  "CMakeFiles/ceaff_text.dir/levenshtein.cc.o"
  "CMakeFiles/ceaff_text.dir/levenshtein.cc.o.d"
  "CMakeFiles/ceaff_text.dir/name_embedding.cc.o"
  "CMakeFiles/ceaff_text.dir/name_embedding.cc.o.d"
  "CMakeFiles/ceaff_text.dir/ngram_similarity.cc.o"
  "CMakeFiles/ceaff_text.dir/ngram_similarity.cc.o.d"
  "CMakeFiles/ceaff_text.dir/tokenizer.cc.o"
  "CMakeFiles/ceaff_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/ceaff_text.dir/word_embedding.cc.o"
  "CMakeFiles/ceaff_text.dir/word_embedding.cc.o.d"
  "libceaff_text.a"
  "libceaff_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
