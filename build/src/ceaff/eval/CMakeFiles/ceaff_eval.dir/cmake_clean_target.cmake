file(REMOVE_RECURSE
  "libceaff_eval.a"
)
