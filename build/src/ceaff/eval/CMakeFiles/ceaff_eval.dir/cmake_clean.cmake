file(REMOVE_RECURSE
  "CMakeFiles/ceaff_eval.dir/analysis.cc.o"
  "CMakeFiles/ceaff_eval.dir/analysis.cc.o.d"
  "CMakeFiles/ceaff_eval.dir/metrics.cc.o"
  "CMakeFiles/ceaff_eval.dir/metrics.cc.o.d"
  "libceaff_eval.a"
  "libceaff_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
