
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ceaff/eval/analysis.cc" "src/ceaff/eval/CMakeFiles/ceaff_eval.dir/analysis.cc.o" "gcc" "src/ceaff/eval/CMakeFiles/ceaff_eval.dir/analysis.cc.o.d"
  "/root/repo/src/ceaff/eval/metrics.cc" "src/ceaff/eval/CMakeFiles/ceaff_eval.dir/metrics.cc.o" "gcc" "src/ceaff/eval/CMakeFiles/ceaff_eval.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ceaff/common/CMakeFiles/ceaff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/la/CMakeFiles/ceaff_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/kg/CMakeFiles/ceaff_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/matching/CMakeFiles/ceaff_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/text/CMakeFiles/ceaff_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
