# Empty dependencies file for ceaff_eval.
# This may be replaced when dependencies are built.
