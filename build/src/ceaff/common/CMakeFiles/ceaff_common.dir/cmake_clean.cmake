file(REMOVE_RECURSE
  "CMakeFiles/ceaff_common.dir/flags.cc.o"
  "CMakeFiles/ceaff_common.dir/flags.cc.o.d"
  "CMakeFiles/ceaff_common.dir/logging.cc.o"
  "CMakeFiles/ceaff_common.dir/logging.cc.o.d"
  "CMakeFiles/ceaff_common.dir/random.cc.o"
  "CMakeFiles/ceaff_common.dir/random.cc.o.d"
  "CMakeFiles/ceaff_common.dir/status.cc.o"
  "CMakeFiles/ceaff_common.dir/status.cc.o.d"
  "CMakeFiles/ceaff_common.dir/string_util.cc.o"
  "CMakeFiles/ceaff_common.dir/string_util.cc.o.d"
  "libceaff_common.a"
  "libceaff_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
