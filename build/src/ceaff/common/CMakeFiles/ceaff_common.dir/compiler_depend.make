# Empty compiler generated dependencies file for ceaff_common.
# This may be replaced when dependencies are built.
