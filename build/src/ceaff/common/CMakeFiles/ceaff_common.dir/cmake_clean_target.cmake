file(REMOVE_RECURSE
  "libceaff_common.a"
)
