file(REMOVE_RECURSE
  "CMakeFiles/ceaff_baselines.dir/baselines.cc.o"
  "CMakeFiles/ceaff_baselines.dir/baselines.cc.o.d"
  "libceaff_baselines.a"
  "libceaff_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
