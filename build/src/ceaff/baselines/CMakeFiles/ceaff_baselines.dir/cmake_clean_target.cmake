file(REMOVE_RECURSE
  "libceaff_baselines.a"
)
