# Empty dependencies file for ceaff_baselines.
# This may be replaced when dependencies are built.
