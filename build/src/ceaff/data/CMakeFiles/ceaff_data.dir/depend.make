# Empty dependencies file for ceaff_data.
# This may be replaced when dependencies are built.
