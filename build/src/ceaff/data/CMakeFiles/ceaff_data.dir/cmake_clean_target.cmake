file(REMOVE_RECURSE
  "libceaff_data.a"
)
