file(REMOVE_RECURSE
  "CMakeFiles/ceaff_data.dir/name_generator.cc.o"
  "CMakeFiles/ceaff_data.dir/name_generator.cc.o.d"
  "CMakeFiles/ceaff_data.dir/synthetic.cc.o"
  "CMakeFiles/ceaff_data.dir/synthetic.cc.o.d"
  "libceaff_data.a"
  "libceaff_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
