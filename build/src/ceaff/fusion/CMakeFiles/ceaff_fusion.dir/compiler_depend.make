# Empty compiler generated dependencies file for ceaff_fusion.
# This may be replaced when dependencies are built.
