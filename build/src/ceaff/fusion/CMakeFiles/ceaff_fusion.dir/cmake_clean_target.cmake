file(REMOVE_RECURSE
  "libceaff_fusion.a"
)
