
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ceaff/fusion/adaptive_fusion.cc" "src/ceaff/fusion/CMakeFiles/ceaff_fusion.dir/adaptive_fusion.cc.o" "gcc" "src/ceaff/fusion/CMakeFiles/ceaff_fusion.dir/adaptive_fusion.cc.o.d"
  "/root/repo/src/ceaff/fusion/logistic_regression.cc" "src/ceaff/fusion/CMakeFiles/ceaff_fusion.dir/logistic_regression.cc.o" "gcc" "src/ceaff/fusion/CMakeFiles/ceaff_fusion.dir/logistic_regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ceaff/common/CMakeFiles/ceaff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/la/CMakeFiles/ceaff_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/kg/CMakeFiles/ceaff_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/ceaff/text/CMakeFiles/ceaff_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
