file(REMOVE_RECURSE
  "CMakeFiles/ceaff_fusion.dir/adaptive_fusion.cc.o"
  "CMakeFiles/ceaff_fusion.dir/adaptive_fusion.cc.o.d"
  "CMakeFiles/ceaff_fusion.dir/logistic_regression.cc.o"
  "CMakeFiles/ceaff_fusion.dir/logistic_regression.cc.o.d"
  "libceaff_fusion.a"
  "libceaff_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceaff_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
